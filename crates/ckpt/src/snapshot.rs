//! The on-disk snapshot format.
//!
//! ```text
//! offset  size            field
//! 0       4               magic "TGTS"
//! 4       4               format version, u32 LE (currently 2)
//! 8       8               manifest length N, u64 LE
//! 16      4               CRC-32 of the manifest bytes, u32 LE
//! 20      N               manifest: compact JSON (torchgt-compat::json)
//! 20+N    payload_len     payload: packed f32 LE tensor data
//! ```
//!
//! The manifest records the trainer state ([`TrainerState`]), the shape of
//! every tensor, and the payload's length and CRC-32. The payload holds,
//! for each parameter in order, its `value`, `m`, and `v` buffers
//! back-to-back. Readers verify both checksums, every declared length, and
//! that the file ends exactly at the payload's last byte — a flipped bit,
//! a truncation, or trailing garbage all fail cleanly *before* any model
//! state is touched.
//!
//! Snapshots are **world-size-independent**: tensors are always stored in
//! canonical (unsharded) order, so a snapshot taken at P=4 restores
//! bit-faithfully at P=3. Format version 2 additionally records the
//! [`PartitionLayout`] in effect at capture time; version 3 adds the
//! identity hash of the dataset the run trained on (a `torchgt-data`
//! manifest hash), letting restore refuse a snapshot taken against a
//! different dataset. Version-1 and version-2 files, which predate those
//! fields, remain readable — the missing fields decode as `None`.

use crate::checksum::crc32;
use crate::state::{ParamState, PartitionLayout, TensorShape, TrainerState};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;
use torchgt_tensor::checkpoint::{expect_eof, read_f32s, write_f32s};
use torchgt_tensor::param::Param;

/// Current snapshot format version (3 added the dataset identity hash).
pub const FORMAT_VERSION: u32 = 3;

/// The pre-dataset-identity revision (2 added the partition layout), still
/// accepted by the reader.
pub const FORMAT_VERSION_V2: u32 = 2;

/// The pre-elastic format revision, still accepted by the reader.
pub const FORMAT_VERSION_V1: u32 = 1;

const MAGIC: &[u8; 4] = b"TGTS";

/// Hard cap on the declared manifest length — a corrupted length field must
/// not trigger a huge allocation.
const MAX_MANIFEST_LEN: u64 = 64 << 20;

torchgt_compat::json_struct! {
    /// The version-3 JSON manifest (private — [`Snapshot`] is the public
    /// surface).
    #[derive(Clone, Debug, PartialEq)]
    struct Manifest {
        format_version: u32,
        state: TrainerState,
        shapes: Vec<TensorShape>,
        payload_len: u64,
        payload_crc: u32,
        layout: Option<PartitionLayout>,
        dataset_id: Option<String>,
    }
}

torchgt_compat::json_struct! {
    /// The version-2 manifest: identical except the dataset identity field
    /// does not exist (the JSON decoder errors on missing fields, so
    /// back-compat is a separate struct rather than an optional field).
    #[derive(Clone, Debug, PartialEq)]
    struct ManifestV2 {
        format_version: u32,
        state: TrainerState,
        shapes: Vec<TensorShape>,
        payload_len: u64,
        payload_crc: u32,
        layout: Option<PartitionLayout>,
    }
}

torchgt_compat::json_struct! {
    /// The version-1 manifest: identical except the layout field does not
    /// exist (the JSON decoder errors on missing fields, so back-compat is
    /// a separate struct rather than an optional field).
    #[derive(Clone, Debug, PartialEq)]
    struct ManifestV1 {
        format_version: u32,
        state: TrainerState,
        shapes: Vec<TensorShape>,
        payload_len: u64,
        payload_crc: u32,
    }
}

/// A full training-state snapshot: trainer bookkeeping plus every
/// parameter's value and Adam moment buffers (canonical order — never
/// sharded by rank).
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Trainer bookkeeping (epoch, optimizer steps, RNG streams, tuner…).
    pub state: TrainerState,
    /// Per-parameter tensors, in model traversal order.
    pub params: Vec<ParamState>,
    /// Partition layout in effect at capture time (`None` for
    /// single-device trainers and version-1 files).
    pub layout: Option<PartitionLayout>,
    /// Identity hash of the dataset the run trained on (a `torchgt-data`
    /// manifest hash; `None` for in-memory datasets and pre-v3 files).
    /// Restore paths refuse a snapshot whose hash disagrees with the live
    /// dataset unless explicitly overridden.
    pub dataset_id: Option<String>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Snapshot {
    /// Assemble a snapshot from live parameters plus trainer state.
    pub fn capture(state: TrainerState, params: &[&Param]) -> Self {
        Self {
            state,
            params: params.iter().map(|p| ParamState::capture(p)).collect(),
            layout: None,
            dataset_id: None,
        }
    }

    /// Attach the partition layout in effect at capture time.
    pub fn with_layout(mut self, layout: PartitionLayout) -> Self {
        self.layout = Some(layout);
        self
    }

    /// Attach the identity hash of the dataset the run trained on.
    pub fn with_dataset_id(mut self, id: impl Into<String>) -> Self {
        self.dataset_id = Some(id.into());
        self
    }

    /// Restore every parameter (values + moments). All-or-nothing: counts
    /// and shapes are validated for the whole set before the first tensor
    /// is overwritten.
    pub fn apply_params(&self, params: &mut [&mut Param]) -> io::Result<()> {
        if params.len() != self.params.len() {
            return Err(bad(format!(
                "snapshot has {} tensors, model has {}",
                self.params.len(),
                params.len()
            )));
        }
        for (st, p) in self.params.iter().zip(params.iter()) {
            if p.value.shape() != (st.rows, st.cols) {
                return Err(bad(format!(
                    "snapshot tensor is {}x{}, model expects {:?}",
                    st.rows,
                    st.cols,
                    p.value.shape()
                )));
            }
        }
        for (st, p) in self.params.iter().zip(params.iter_mut()) {
            st.apply(p)?;
        }
        Ok(())
    }

    /// Serialise to a writer (header + manifest + payload, per the module
    /// docs).
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut payload = Vec::new();
        for p in &self.params {
            write_f32s(&mut payload, &p.value)?;
            write_f32s(&mut payload, &p.m)?;
            write_f32s(&mut payload, &p.v)?;
        }
        let manifest = Manifest {
            format_version: FORMAT_VERSION,
            state: self.state.clone(),
            shapes: self.params.iter().map(ParamState::shape).collect(),
            payload_len: payload.len() as u64,
            payload_crc: crc32(&payload),
            layout: self.layout.clone(),
            dataset_id: self.dataset_id.clone(),
        };
        let manifest_bytes = torchgt_compat::json::to_string(&manifest)
            .map_err(|e| bad(format!("manifest encode: {e}")))?
            .into_bytes();
        w.write_all(MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(manifest_bytes.len() as u64).to_le_bytes())?;
        w.write_all(&crc32(&manifest_bytes).to_le_bytes())?;
        w.write_all(&manifest_bytes)?;
        w.write_all(&payload)?;
        Ok(())
    }

    /// Deserialise from a reader, verifying magic, version, both checksums,
    /// all declared lengths, and exact EOF.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("bad snapshot magic"));
        }
        let mut buf4 = [0u8; 4];
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf4)?;
        let version = u32::from_le_bytes(buf4);
        if version != FORMAT_VERSION && version != FORMAT_VERSION_V2 && version != FORMAT_VERSION_V1
        {
            return Err(bad(format!(
                "unsupported snapshot format version {version} (expected {FORMAT_VERSION_V1}..{FORMAT_VERSION})"
            )));
        }
        r.read_exact(&mut buf8)?;
        let manifest_len = u64::from_le_bytes(buf8);
        if manifest_len > MAX_MANIFEST_LEN {
            return Err(bad(format!("implausible manifest length {manifest_len}")));
        }
        r.read_exact(&mut buf4)?;
        let manifest_crc = u32::from_le_bytes(buf4);
        let mut manifest_bytes = vec![0u8; manifest_len as usize];
        r.read_exact(&mut manifest_bytes)?;
        if crc32(&manifest_bytes) != manifest_crc {
            return Err(bad("manifest checksum mismatch (corrupt snapshot)"));
        }
        let manifest_text = std::str::from_utf8(&manifest_bytes)
            .map_err(|_| bad("manifest is not valid UTF-8"))?;
        // The layout field arrived in version 2 and the dataset identity in
        // version 3; an older manifest would fail the newer decoder's
        // missing-field check, so each revision gets its own decode path.
        let manifest: Manifest = match version {
            FORMAT_VERSION_V1 => {
                let v1: ManifestV1 = torchgt_compat::json::from_str_as(manifest_text)
                    .map_err(|e| bad(format!("manifest decode: {e}")))?;
                Manifest {
                    format_version: v1.format_version,
                    state: v1.state,
                    shapes: v1.shapes,
                    payload_len: v1.payload_len,
                    payload_crc: v1.payload_crc,
                    layout: None,
                    dataset_id: None,
                }
            }
            FORMAT_VERSION_V2 => {
                let v2: ManifestV2 = torchgt_compat::json::from_str_as(manifest_text)
                    .map_err(|e| bad(format!("manifest decode: {e}")))?;
                Manifest {
                    format_version: v2.format_version,
                    state: v2.state,
                    shapes: v2.shapes,
                    payload_len: v2.payload_len,
                    payload_crc: v2.payload_crc,
                    layout: v2.layout,
                    dataset_id: None,
                }
            }
            _ => torchgt_compat::json::from_str_as(manifest_text)
                .map_err(|e| bad(format!("manifest decode: {e}")))?,
        };
        if manifest.format_version != version {
            return Err(bad("manifest/header version disagreement"));
        }
        let expected: u64 =
            manifest.shapes.iter().map(|s| 3 * (s.rows * s.cols) as u64 * 4).sum();
        if expected != manifest.payload_len {
            return Err(bad(format!(
                "manifest shapes require {expected} payload bytes, manifest declares {}",
                manifest.payload_len
            )));
        }
        let mut payload = vec![0u8; manifest.payload_len as usize];
        r.read_exact(&mut payload)?;
        if crc32(&payload) != manifest.payload_crc {
            return Err(bad("payload checksum mismatch (corrupt snapshot)"));
        }
        expect_eof(&mut r)?;
        let mut cursor: &[u8] = &payload;
        let mut params = Vec::with_capacity(manifest.shapes.len());
        for s in &manifest.shapes {
            let n = s.rows * s.cols;
            params.push(ParamState {
                rows: s.rows,
                cols: s.cols,
                value: read_f32s(&mut cursor, n)?,
                m: read_f32s(&mut cursor, n)?,
                v: read_f32s(&mut cursor, n)?,
            });
        }
        Ok(Self {
            state: manifest.state,
            params,
            layout: manifest.layout,
            dataset_id: manifest.dataset_id,
        })
    }

    /// Write to a file (non-atomic; [`crate::CheckpointStore`] wraps this
    /// with write-then-rename publication).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Read from a file. Routed through the shared fault plane
    /// ([`torchgt_faults::read_file`]) so `TGTS` reads are injectable; with
    /// no plan installed this is a plain whole-file read.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::read_from(torchgt_faults::read_file(path)?.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::TunerState;
    use torchgt_compat::proptest::prelude::*;
    use torchgt_tensor::init;
    use torchgt_tensor::tensor::Tensor;

    fn sample() -> Snapshot {
        let mut p0 = Param::new(init::normal(3, 4, 0.0, 1.0, 11));
        p0.m = init::normal(3, 4, 0.0, 0.1, 12);
        p0.v = init::normal(3, 4, 0.5, 0.1, 13);
        let p1 = Param::new(init::normal(2, 2, 0.0, 1.0, 14));
        let state = TrainerState {
            epoch: 5,
            opt_steps: 120,
            rng_streams: vec![5, 5, 6],
            beta_thre: Some(0.25),
            tuner: Some(TunerState {
                index: 1,
                f_history: vec![2.0, 1.5],
                ldr_history: vec![0.1, 0.2],
            }),
            scheduler: None,
            epoch_losses: vec![1.5, 1.0],
        };
        Snapshot::capture(state, &[&p0, &p1])
    }

    fn to_bytes(s: &Snapshot) -> Vec<u8> {
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        buf
    }

    #[test]
    fn byte_round_trip() {
        let s = sample();
        let back = Snapshot::read_from(to_bytes(&s).as_slice()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn apply_restores_values_and_moments() {
        let s = sample();
        let mut a = Param::new(Tensor::zeros(3, 4));
        let mut b = Param::new(Tensor::zeros(2, 2));
        s.apply_params(&mut [&mut a, &mut b]).unwrap();
        assert_eq!(a.value.data(), &s.params[0].value[..]);
        assert_eq!(a.m.data(), &s.params[0].m[..]);
        assert_eq!(a.v.data(), &s.params[0].v[..]);
    }

    #[test]
    fn apply_is_all_or_nothing() {
        let s = sample();
        let mut a = Param::new(Tensor::full(3, 4, 7.0));
        let mut b = Param::new(Tensor::full(5, 5, 7.0)); // wrong shape
        assert!(s.apply_params(&mut [&mut a, &mut b]).is_err());
        assert!(a.value.data().iter().all(|&v| v == 7.0), "first param untouched");
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let s = sample();
        let bytes = to_bytes(&s);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                Snapshot::read_from(corrupt.as_slice()).is_err(),
                "bit flip at byte {i}/{} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let s = sample();
        let bytes = to_bytes(&s);
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(Snapshot::read_from(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Snapshot::read_from(extended.as_slice()).is_err(), "trailing byte accepted");
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[4] = 0xFF; // bump the version field
        let err = Snapshot::read_from(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn layout_round_trips_through_v2() {
        let layout = PartitionLayout { world: 4, generation: 1, assignment: vec![0, 1, 2, 3, 0] };
        let s = sample().with_layout(layout.clone());
        let back = Snapshot::read_from(to_bytes(&s).as_slice()).unwrap();
        assert_eq!(back.layout.as_ref(), Some(&layout));
        assert_eq!(back, s);
    }

    #[test]
    fn dataset_id_round_trips_through_v3() {
        let s = sample().with_dataset_id("tgds-00deadbeef001234");
        let back = Snapshot::read_from(to_bytes(&s).as_slice()).unwrap();
        assert_eq!(back.dataset_id.as_deref(), Some("tgds-00deadbeef001234"));
        assert_eq!(back, s);
    }

    /// Build the byte stream a pre-dataset-identity (version 2) writer
    /// produced: same framing, manifest without the dataset_id field.
    fn to_v2_bytes(s: &Snapshot) -> Vec<u8> {
        let mut payload = Vec::new();
        for p in &s.params {
            write_f32s(&mut payload, &p.value).unwrap();
            write_f32s(&mut payload, &p.m).unwrap();
            write_f32s(&mut payload, &p.v).unwrap();
        }
        let manifest = ManifestV2 {
            format_version: FORMAT_VERSION_V2,
            state: s.state.clone(),
            shapes: s.params.iter().map(ParamState::shape).collect(),
            payload_len: payload.len() as u64,
            payload_crc: crc32(&payload),
            layout: s.layout.clone(),
        };
        let manifest_bytes =
            torchgt_compat::json::to_string(&manifest).unwrap().into_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION_V2.to_le_bytes());
        out.extend_from_slice(&(manifest_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&manifest_bytes).to_le_bytes());
        out.extend_from_slice(&manifest_bytes);
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn version_2_files_remain_readable() {
        let layout = PartitionLayout { world: 2, generation: 3, assignment: vec![0, 1, 1] };
        let s = sample().with_layout(layout.clone());
        let bytes = to_v2_bytes(&s);
        let back = Snapshot::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.state, s.state);
        assert_eq!(back.params, s.params);
        assert_eq!(back.layout.as_ref(), Some(&layout), "v2 layout survives");
        assert!(back.dataset_id.is_none(), "v2 files predate the dataset identity");
        // Re-saving upgrades the file to the current revision.
        let rewritten = to_bytes(&back);
        assert_eq!(rewritten[4], FORMAT_VERSION as u8);
        assert_eq!(Snapshot::read_from(rewritten.as_slice()).unwrap(), back);
    }

    #[test]
    fn v2_corruption_is_still_detected() {
        let bytes = to_v2_bytes(&sample());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                Snapshot::read_from(corrupt.as_slice()).is_err(),
                "v2 bit flip at byte {i} went undetected"
            );
        }
    }

    /// Build the byte stream a pre-elastic (version 1) writer produced:
    /// same framing, manifest without the layout field.
    fn to_v1_bytes(s: &Snapshot) -> Vec<u8> {
        let mut payload = Vec::new();
        for p in &s.params {
            write_f32s(&mut payload, &p.value).unwrap();
            write_f32s(&mut payload, &p.m).unwrap();
            write_f32s(&mut payload, &p.v).unwrap();
        }
        let manifest = ManifestV1 {
            format_version: FORMAT_VERSION_V1,
            state: s.state.clone(),
            shapes: s.params.iter().map(ParamState::shape).collect(),
            payload_len: payload.len() as u64,
            payload_crc: crc32(&payload),
        };
        let manifest_bytes =
            torchgt_compat::json::to_string(&manifest).unwrap().into_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION_V1.to_le_bytes());
        out.extend_from_slice(&(manifest_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&manifest_bytes).to_le_bytes());
        out.extend_from_slice(&manifest_bytes);
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn version_1_files_remain_readable() {
        let s = sample();
        let bytes = to_v1_bytes(&s);
        let back = Snapshot::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.state, s.state);
        assert_eq!(back.params, s.params);
        assert!(back.layout.is_none(), "v1 files predate the layout field");
        // Re-saving upgrades the file to the current revision.
        let rewritten = to_bytes(&back);
        assert_eq!(rewritten[4], FORMAT_VERSION as u8);
        assert_eq!(Snapshot::read_from(rewritten.as_slice()).unwrap(), back);
    }

    #[test]
    fn v1_corruption_is_still_detected() {
        let bytes = to_v1_bytes(&sample());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                Snapshot::read_from(corrupt.as_slice()).is_err(),
                "v1 bit flip at byte {i} went undetected"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Round-trip over random shapes and values, including moments.
        #[test]
        fn round_trip_random_snapshots(
            rows in 1usize..6,
            cols in 1usize..6,
            vals in torchgt_compat::proptest::collection::vec(-1e6f32..1e6, 1..36),
            epoch in 0usize..1000,
            steps in 0u64..100_000,
        ) {
            let n = rows * cols;
            let take = |off: usize| -> Vec<f32> {
                (0..n).map(|i| vals[(off + i) % vals.len()]).collect()
            };
            let ps = ParamState { rows, cols, value: take(0), m: take(1), v: take(2) };
            let snap = Snapshot {
                state: TrainerState::basic(epoch, steps),
                params: vec![ps],
                layout: None,
                dataset_id: None,
            };
            let mut buf = Vec::new();
            snap.write_to(&mut buf).unwrap();
            let back = Snapshot::read_from(buf.as_slice()).unwrap();
            prop_assert_eq!(back, snap);
        }

        /// A random bit flip anywhere in the file must be detected, and a
        /// failed load must leave target params unmutated.
        #[test]
        fn random_bit_flip_rejected_without_partial_mutation(
            byte_frac in 0.0f64..1.0,
            bit in 0u32..8,
        ) {
            let s = sample();
            let mut bytes = to_bytes(&s);
            let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
            bytes[idx] ^= 1 << bit;
            let res = Snapshot::read_from(bytes.as_slice());
            prop_assert!(res.is_err(), "flip at byte {} bit {} accepted", idx, bit);
        }
    }
}
