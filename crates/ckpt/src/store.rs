//! Snapshot directory management: atomic publication and retention.
//!
//! Snapshots are published write-then-rename: the bytes go to a hidden
//! temporary file in the same directory, are flushed to disk, and only then
//! renamed to their final `snapshot-NNNNNN.tgtck` name. A crash mid-write
//! therefore never leaves a half-written file under a name the resume path
//! would pick up — `latest()` only ever sees fully-published snapshots.

use crate::snapshot::Snapshot;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// File extension for published snapshots.
pub const SNAPSHOT_EXT: &str = "tgtck";

/// Manages a directory of epoch-numbered snapshots with a keep-last-K
/// retention policy.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep_last: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) a snapshot directory. `keep_last` bounds
    /// how many snapshots survive pruning; it is clamped to at least 1.
    pub fn new(dir: impl Into<PathBuf>, keep_last: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, keep_last: keep_last.max(1) })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Published path for a given epoch.
    pub fn path_for(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("snapshot-{epoch:06}.{SNAPSHOT_EXT}"))
    }

    /// Atomically publish a snapshot (named by `snapshot.state.epoch`),
    /// then prune to the retention limit. Returns the published path.
    pub fn save(&self, snapshot: &Snapshot) -> io::Result<PathBuf> {
        let epoch = snapshot.state.epoch;
        let final_path = self.path_for(epoch);
        let tmp_path = self.dir.join(format!(".snapshot-{epoch:06}.tmp"));
        {
            let file = File::create(&tmp_path)?;
            let mut w = BufWriter::new(file);
            snapshot.write_to(&mut w)?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.prune()?;
        Ok(final_path)
    }

    /// Epochs with a published snapshot, ascending.
    pub fn epochs(&self) -> io::Result<Vec<usize>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(&format!(".{SNAPSHOT_EXT}")) else { continue };
            let Some(num) = stem.strip_prefix("snapshot-") else { continue };
            if let Ok(epoch) = num.parse::<usize>() {
                out.push(epoch);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The newest published epoch, if any.
    pub fn latest(&self) -> io::Result<Option<usize>> {
        Ok(self.epochs()?.pop())
    }

    /// Load the snapshot for a specific epoch.
    pub fn load(&self, epoch: usize) -> io::Result<Snapshot> {
        Snapshot::load(&self.path_for(epoch))
    }

    /// Load the newest snapshot, if any.
    pub fn load_latest(&self) -> io::Result<Option<Snapshot>> {
        match self.latest()? {
            Some(epoch) => Ok(Some(self.load(epoch)?)),
            None => Ok(None),
        }
    }

    /// Delete all but the newest `keep_last` snapshots.
    fn prune(&self) -> io::Result<()> {
        let epochs = self.epochs()?;
        if epochs.len() > self.keep_last {
            for &old in &epochs[..epochs.len() - self.keep_last] {
                fs::remove_file(self.path_for(old))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::TrainerState;
    use crate::ParamState;

    fn snap(epoch: usize) -> Snapshot {
        Snapshot {
            state: TrainerState::basic(epoch, epoch as u64 * 10),
            params: vec![ParamState {
                rows: 1,
                cols: 2,
                value: vec![epoch as f32, 1.0],
                m: vec![0.0, 0.0],
                v: vec![0.0, 0.0],
            }],
            layout: None,
            dataset_id: None,
        }
    }

    fn temp_store(tag: &str, keep: usize) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("torchgt_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::new(dir, keep).unwrap()
    }

    #[test]
    fn save_load_latest() {
        let store = temp_store("basic", 3);
        assert!(store.load_latest().unwrap().is_none());
        store.save(&snap(0)).unwrap();
        store.save(&snap(1)).unwrap();
        let latest = store.load_latest().unwrap().unwrap();
        assert_eq!(latest.state.epoch, 1);
        assert_eq!(latest.params[0].value[0], 1.0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn retention_keeps_last_k() {
        let store = temp_store("retention", 2);
        for e in 0..5 {
            store.save(&snap(e)).unwrap();
        }
        assert_eq!(store.epochs().unwrap(), vec![3, 4]);
        assert!(store.load(4).is_ok());
        assert!(store.load(0).is_err(), "pruned snapshot should be gone");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_temp_files_left_behind() {
        let store = temp_store("tmpfiles", 2);
        store.save(&snap(7)).unwrap();
        let stray: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(stray.is_empty(), "temp files not cleaned up: {stray:?}");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn half_written_temp_is_invisible_to_latest() {
        let store = temp_store("halfwrite", 3);
        store.save(&snap(2)).unwrap();
        // Simulate a crash mid-write: a stray temp file with garbage bytes.
        fs::write(store.dir().join(".snapshot-000009.tmp"), b"garbage").unwrap();
        assert_eq!(store.latest().unwrap(), Some(2));
        let _ = fs::remove_dir_all(store.dir());
    }
}
