//! Snapshot directory management: atomic publication, retention, and the
//! corrupt-snapshot fallback ladder.
//!
//! Snapshots are published write-then-rename: the bytes go to a hidden
//! temporary file in the same directory, are flushed to disk, and only then
//! renamed to their final `snapshot-NNNNNN.tgtck` name. A crash mid-write
//! therefore never leaves a half-written file under a name the resume path
//! would pick up — `latest()` only ever sees fully-published snapshots.
//!
//! Reads are self-healing: transient errors retry with seeded jittered
//! backoff and a corrupt buffer is re-read once (injected faults never
//! touch the file on disk, so the re-read recovers). When the newest
//! snapshot is *genuinely* corrupt, [`CheckpointStore::load_latest`] renames
//! it to `*.quarantined` and walks back through the keep-last-K set,
//! emitting a `SNAPSHOT_FALLBACK` event — resume degrades to losing at most
//! K−1 epochs of progress instead of failing hard.

use crate::snapshot::Snapshot;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use torchgt_obs::RecorderHandle;

/// File extension for published snapshots.
pub const SNAPSHOT_EXT: &str = "tgtck";

/// Suffix appended to a corrupt snapshot when `load_latest` quarantines it
/// (the file keeps its original name underneath, for post-mortems).
pub const QUARANTINE_SUFFIX: &str = "quarantined";

/// Transient-read retry budget per snapshot load (beyond the first try).
const MAX_TRANSIENT_RETRIES: usize = 4;
/// Backoff base for snapshot-read retries, seconds.
const READ_BACKOFF_BASE_S: f64 = 0.002;

/// Manages a directory of epoch-numbered snapshots with a keep-last-K
/// retention policy.
#[derive(Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep_last: usize,
    recorder: RecorderHandle,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("keep_last", &self.keep_last)
            .finish_non_exhaustive()
    }
}

impl CheckpointStore {
    /// Open (creating if needed) a snapshot directory. `keep_last` bounds
    /// how many snapshots survive pruning; it is clamped to at least 1.
    pub fn new(dir: impl Into<PathBuf>, keep_last: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, keep_last: keep_last.max(1), recorder: torchgt_obs::noop() })
    }

    /// Emit recovery events (`IO_RETRY`, `SNAPSHOT_FALLBACK`) through
    /// `recorder`.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Published path for a given epoch.
    pub fn path_for(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("snapshot-{epoch:06}.{SNAPSHOT_EXT}"))
    }

    /// Atomically publish a snapshot (named by `snapshot.state.epoch`),
    /// then prune to the retention limit. Returns the published path.
    pub fn save(&self, snapshot: &Snapshot) -> io::Result<PathBuf> {
        let epoch = snapshot.state.epoch;
        let final_path = self.path_for(epoch);
        let tmp_path = self.dir.join(format!(".snapshot-{epoch:06}.tmp"));
        {
            let file = File::create(&tmp_path)?;
            let mut w = BufWriter::new(file);
            snapshot.write_to(&mut w)?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.prune()?;
        Ok(final_path)
    }

    /// Epochs with a published snapshot, ascending.
    pub fn epochs(&self) -> io::Result<Vec<usize>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(&format!(".{SNAPSHOT_EXT}")) else { continue };
            let Some(num) = stem.strip_prefix("snapshot-") else { continue };
            if let Ok(epoch) = num.parse::<usize>() {
                out.push(epoch);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The newest published epoch, if any.
    pub fn latest(&self) -> io::Result<Option<usize>> {
        Ok(self.epochs()?.pop())
    }

    /// Load the snapshot for a specific epoch. Self-healing: transient
    /// read errors retry with seeded jittered backoff (each retry emits an
    /// `IO_RETRY` event), and a corrupt buffer is re-read once — an
    /// injected torn read or bit flip heals because the bytes on disk were
    /// never touched, while genuine on-disk corruption fails again.
    pub fn load(&self, epoch: usize) -> io::Result<Snapshot> {
        let path = self.path_for(epoch);
        let seed = torchgt_faults::installed().map(|s| s.seed).unwrap_or(0);
        let backoff_seed = seed ^ torchgt_faults::path_key(&path);
        let mut transient_attempts = 0usize;
        let mut crc_reread_used = false;
        loop {
            match Snapshot::load(&path) {
                Ok(snapshot) => return Ok(snapshot),
                Err(e)
                    if torchgt_faults::is_transient(&e)
                        && transient_attempts < MAX_TRANSIENT_RETRIES =>
                {
                    transient_attempts += 1;
                    let wait = torchgt_faults::backoff_s(
                        backoff_seed,
                        READ_BACKOFF_BASE_S,
                        transient_attempts,
                    );
                    if self.recorder.enabled() {
                        self.recorder.event(torchgt_obs::Event::io_retry(
                            &path.display().to_string(),
                            transient_attempts,
                            wait,
                            &e.to_string(),
                        ));
                        self.recorder.counter_add("io_retries", 1);
                    }
                    if wait > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(wait));
                    }
                }
                Err(e) if torchgt_faults::is_corruption(&e) && !crc_reread_used => {
                    crc_reread_used = true;
                    if self.recorder.enabled() {
                        self.recorder.event(torchgt_obs::Event::io_retry(
                            &path.display().to_string(),
                            transient_attempts + 1,
                            0.0,
                            &e.to_string(),
                        ));
                        self.recorder.counter_add("io_retries", 1);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Load the newest loadable snapshot, if any. When the newest snapshot
    /// is corrupt (after the healing retries in [`CheckpointStore::load`]),
    /// it is renamed to `*.quarantined` and the walk continues backwards
    /// through the keep-last-K set, emitting a `SNAPSHOT_FALLBACK` event on
    /// success. Returns `Ok(None)` for an empty store and an error only
    /// when snapshots exist but none survive.
    pub fn load_latest(&self) -> io::Result<Option<Snapshot>> {
        let mut epochs = self.epochs()?;
        if epochs.is_empty() {
            return Ok(None);
        }
        let newest = *epochs.last().expect("non-empty");
        let mut last_reason = String::new();
        while let Some(epoch) = epochs.pop() {
            match self.load(epoch) {
                Ok(snapshot) => {
                    if epoch != newest && self.recorder.enabled() {
                        self.recorder.event(torchgt_obs::Event::snapshot_fallback(
                            newest,
                            epoch,
                            &last_reason,
                        ));
                        self.recorder.counter_add("snapshot_fallbacks", 1);
                    }
                    return Ok(Some(snapshot));
                }
                Err(e) if torchgt_faults::is_corruption(&e) => {
                    last_reason = e.to_string();
                    self.quarantine(epoch)?;
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "every snapshot in {} is corrupt (all quarantined); last failure: {last_reason}",
                self.dir.display()
            ),
        ))
    }

    /// Rename a corrupt snapshot out of the resume path, keeping the bytes
    /// for post-mortems: `snapshot-NNNNNN.tgtck` →
    /// `snapshot-NNNNNN.tgtck.quarantined`.
    fn quarantine(&self, epoch: usize) -> io::Result<()> {
        let path = self.path_for(epoch);
        let mut target = path.clone().into_os_string();
        target.push(format!(".{QUARANTINE_SUFFIX}"));
        fs::rename(&path, PathBuf::from(target))
    }

    /// Delete all but the newest `keep_last` snapshots.
    fn prune(&self) -> io::Result<()> {
        let epochs = self.epochs()?;
        if epochs.len() > self.keep_last {
            for &old in &epochs[..epochs.len() - self.keep_last] {
                fs::remove_file(self.path_for(old))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::TrainerState;
    use crate::ParamState;

    fn snap(epoch: usize) -> Snapshot {
        Snapshot {
            state: TrainerState::basic(epoch, epoch as u64 * 10),
            params: vec![ParamState {
                rows: 1,
                cols: 2,
                value: vec![epoch as f32, 1.0],
                m: vec![0.0, 0.0],
                v: vec![0.0, 0.0],
            }],
            layout: None,
            dataset_id: None,
        }
    }

    fn temp_store(tag: &str, keep: usize) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("torchgt_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::new(dir, keep).unwrap()
    }

    #[test]
    fn save_load_latest() {
        let store = temp_store("basic", 3);
        assert!(store.load_latest().unwrap().is_none());
        store.save(&snap(0)).unwrap();
        store.save(&snap(1)).unwrap();
        let latest = store.load_latest().unwrap().unwrap();
        assert_eq!(latest.state.epoch, 1);
        assert_eq!(latest.params[0].value[0], 1.0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn retention_keeps_last_k() {
        let store = temp_store("retention", 2);
        for e in 0..5 {
            store.save(&snap(e)).unwrap();
        }
        assert_eq!(store.epochs().unwrap(), vec![3, 4]);
        assert!(store.load(4).is_ok());
        assert!(store.load(0).is_err(), "pruned snapshot should be gone");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_temp_files_left_behind() {
        let store = temp_store("tmpfiles", 2);
        store.save(&snap(7)).unwrap();
        let stray: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(stray.is_empty(), "temp files not cleaned up: {stray:?}");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn half_written_temp_is_invisible_to_latest() {
        let store = temp_store("halfwrite", 3);
        store.save(&snap(2)).unwrap();
        // Simulate a crash mid-write: a stray temp file with garbage bytes.
        fs::write(store.dir().join(".snapshot-000009.tmp"), b"garbage").unwrap();
        assert_eq!(store.latest().unwrap(), Some(2));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_and_quarantines() {
        let store = temp_store("fallback", 3);
        for e in 0..3 {
            store.save(&snap(e)).unwrap();
        }
        // Corrupt the newest snapshot on disk (flip a payload byte).
        let newest = store.path_for(2);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();

        let recorder = std::sync::Arc::new(torchgt_obs::MemoryRecorder::default());
        let store = store.with_recorder(recorder.clone());
        let restored = store.load_latest().unwrap().unwrap();
        assert_eq!(restored.state.epoch, 1, "must fall back to the previous epoch");
        // The bad file was renamed out of the resume path, not deleted.
        assert!(!newest.exists(), "corrupt snapshot must leave the resume path");
        let mut q = newest.into_os_string();
        q.push(format!(".{QUARANTINE_SUFFIX}"));
        assert!(PathBuf::from(q).exists(), "quarantined bytes must survive");
        assert_eq!(store.epochs().unwrap(), vec![0, 1]);
        // The fallback surfaced as an event.
        let report = recorder.report();
        let falls = report.events_of(torchgt_obs::Event::SNAPSHOT_FALLBACK);
        assert_eq!(falls.len(), 1);
        assert_eq!(falls[0].num("from_epoch"), Some(2.0));
        assert_eq!(falls[0].num("to_epoch"), Some(1.0));
        // A second load_latest sees a clean store: no further fallback.
        assert_eq!(store.load_latest().unwrap().unwrap().state.epoch, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn all_snapshots_corrupt_is_an_error_and_empty_store_is_none() {
        let store = temp_store("allbad", 2);
        assert!(store.load_latest().unwrap().is_none(), "empty store stays None");
        for e in 0..2 {
            store.save(&snap(e)).unwrap();
            let p = store.path_for(e);
            let mut bytes = fs::read(&p).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            fs::write(&p, &bytes).unwrap();
        }
        let err = store.load_latest().unwrap_err();
        assert!(
            err.to_string().contains("all quarantined"),
            "exhausted walk-back must say so, got: {err}"
        );
        assert!(store.epochs().unwrap().is_empty(), "every bad file quarantined");
        let _ = fs::remove_dir_all(store.dir());
    }
}
