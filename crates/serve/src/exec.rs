//! Forward-only execution of a frozen model.
//!
//! [`FrozenExecutor`] rebuilds the architecture from the artifact's
//! [`crate::ModelSpec`], dequantizes every parameter into it (all-or-nothing:
//! counts and shapes are validated for the whole set before the first tensor
//! is overwritten, mirroring `Snapshot::apply_params`), and serves forwards
//! out of one owned [`Workspace`] arena — so steady-state inference reuses
//! the training path's allocation-free kernels and SIMD backend dispatch.
//!
//! For int8 artifacts the classifier head additionally runs as an **integer
//! matmul**: the head weight is re-quantized transposed (`[out, hidden]`,
//! per-output-row scales), the pre-head hidden state is quantized against
//! the freeze-time static activation scale, and each logit is one
//! [`crate::quant::dot_i8`] (AVX2 when available) rescaled by
//! `act_scale * w_scale[o]`. The trunk still computes in dequantized f32 —
//! attention and LayerNorm are where int8 would cost accuracy; the head is
//! where a packed micro-batch spends its final dense GEMM.

use crate::frozen::FrozenModel;
use crate::quant::{dot_i8, quantize_row_i8, QuantData, QuantScheme, QuantTensor};
use std::io;
use torchgt_model::{Pattern, SequenceBatch, SequenceModel};
use torchgt_tensor::{Tensor, Workspace};

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Int8 classifier head: transposed weight, per-output scales.
struct QuantHead {
    /// `[out, hidden]` int8 rows.
    w_t: Vec<i8>,
    hidden: usize,
    out_dim: usize,
    /// Per-output-row weight scales.
    w_scales: Vec<f32>,
    /// f32 bias row.
    bias: Vec<f32>,
    /// Static activation scale (0 = dynamic per-row).
    act_scale: f32,
    /// Scratch for the quantized activation row.
    qrow: Vec<i8>,
}

impl QuantHead {
    /// Build from the dequantized head weight `[hidden, out]` + bias.
    fn new(w: &[f32], hidden: usize, out_dim: usize, bias: Vec<f32>, act_scale: f32) -> Self {
        // Transpose to [out, hidden] so each output channel is contiguous,
        // then quantize per output row (per-channel scales).
        let mut t = vec![0.0f32; hidden * out_dim];
        for h in 0..hidden {
            for o in 0..out_dim {
                t[o * hidden + h] = w[h * out_dim + o];
            }
        }
        let q = QuantTensor::quantize(&t, out_dim, hidden, QuantScheme::Int8);
        let w_t = match q.data {
            QuantData::I8(v) => v,
            QuantData::I16(_) => unreachable!("head requantized as int8"),
        };
        Self { w_t, hidden, out_dim, w_scales: q.scales, bias, act_scale, qrow: Vec::new() }
    }

    /// `logits[r] = dequant(dot_i8(q(h[r]), w_t[o])) + bias` for every row.
    fn forward(&mut self, h: &Tensor, out: &mut Tensor) {
        for r in 0..h.rows() {
            let row = h.row(r);
            let a_scale = if self.act_scale > 0.0 {
                self.act_scale
            } else {
                // Dynamic fallback: per-row maxabs (uncalibrated artifact).
                let maxabs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                if maxabs > 0.0 {
                    maxabs / 127.0
                } else {
                    1.0
                }
            };
            let mut qrow = std::mem::take(&mut self.qrow);
            quantize_row_i8(row, a_scale, &mut qrow);
            let orow = out.row_mut(r);
            for o in 0..self.out_dim {
                let w = &self.w_t[o * self.hidden..(o + 1) * self.hidden];
                let acc = dot_i8(&qrow, w);
                orow[o] = acc as f32 * (a_scale * self.w_scales[o]) + self.bias[o];
            }
            self.qrow = qrow;
        }
    }
}

/// A forward-only engine over a frozen quantized model.
pub struct FrozenExecutor {
    model: Box<dyn SequenceModel>,
    head: Option<QuantHead>,
    ws: Workspace,
    out_dim: usize,
}

impl FrozenExecutor {
    /// Rebuild the architecture and load the quantized parameters into it.
    pub fn new(frozen: &FrozenModel) -> io::Result<Self> {
        let mut model = frozen.spec.build()?;
        {
            let mut params = model.params_mut();
            if params.len() != frozen.tensors.len() {
                return Err(bad(format!(
                    "artifact has {} tensors, model has {} parameters",
                    frozen.tensors.len(),
                    params.len()
                )));
            }
            for (t, p) in frozen.tensors.iter().zip(params.iter()) {
                if p.value.shape() != (t.rows, t.cols) {
                    return Err(bad(format!(
                        "artifact tensor is {}x{}, model expects {:?}",
                        t.rows,
                        t.cols,
                        p.value.shape()
                    )));
                }
            }
            for (t, p) in frozen.tensors.iter().zip(params.iter_mut()) {
                t.dequantize_into(p.value.data_mut());
            }
        }
        model.set_training(false);
        // Int8 artifacts run the head as an integer matmul. Params are
        // head-last for both families: [w: hidden x out, b: 1 x out].
        let head = if frozen.scheme == QuantScheme::Int8 && frozen.tensors.len() >= 2 {
            let w = &frozen.tensors[frozen.tensors.len() - 2];
            let b = &frozen.tensors[frozen.tensors.len() - 1];
            if w.cols == frozen.spec.out_dim && b.rows == 1 && b.cols == frozen.spec.out_dim {
                let mut w_f32 = vec![0.0f32; w.rows * w.cols];
                w.dequantize_into(&mut w_f32);
                let mut bias = vec![0.0f32; b.cols];
                b.dequantize_into(&mut bias);
                Some(QuantHead::new(&w_f32, w.rows, w.cols, bias, frozen.act_scale))
            } else {
                None
            }
        } else {
            None
        };
        Ok(Self { model, head, ws: Workspace::new(), out_dim: frozen.spec.out_dim })
    }

    /// Whether the int8 head fast path is active.
    pub fn int8_head(&self) -> bool {
        self.head.is_some()
    }

    /// Per-token logits `[s, out_dim]`.
    pub fn forward(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>) -> Tensor {
        if self.head.is_some() {
            if let Some(h) = self.model.forward_hidden_ws(batch, pattern, &mut self.ws) {
                let mut out = self.ws.take(h.rows(), self.out_dim);
                self.head.as_mut().expect("checked above").forward(&h, &mut out);
                self.ws.give(h);
                let owned = Tensor::from_vec(
                    out.rows(),
                    out.cols(),
                    out.data().to_vec(),
                );
                self.ws.give(out);
                return owned;
            }
        }
        let logits = self.model.forward_ws(batch, pattern, &mut self.ws);
        let owned =
            Tensor::from_vec(logits.rows(), logits.cols(), logits.data().to_vec());
        self.ws.give(logits);
        owned
    }

    /// Per-token argmax class, with [`torchgt_model::loss::accuracy`]'s
    /// tie-breaking (first maximum wins).
    pub fn forward_argmax(&mut self, batch: &SequenceBatch<'_>, pattern: Pattern<'_>) -> Vec<u32> {
        let logits = self.forward(batch, pattern);
        (0..logits.rows())
            .map(|r| {
                let row = logits.row(r);
                let mut best = 0usize;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best as u32
            })
            .collect()
    }

    /// Workspace pool statistics (for gauges).
    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }
}
