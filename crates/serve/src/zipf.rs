//! Seeded Zipf sampler for the load generator.
//!
//! Real query traffic is heavy-tailed — a few hub nodes absorb most
//! requests. The bench drives the serve loop with rank-frequency
//! `p(k) ∝ 1/k^s` samples so the micro-batcher is exercised on the skewed
//! arrival mix it would see in production (repeat queries pack together;
//! the cold tail arrives alone).

use torchgt_compat::rng::{Rng, SeedableRng, SmallRng};

/// A Zipf distribution over `0..n` with exponent `s`, sampled by inverse
/// CDF lookup (binary search over the precomputed cumulative weights).
pub struct Zipf {
    cdf: Vec<f64>,
    rng: SmallRng,
}

impl Zipf {
    /// Build for `n` items with exponent `s` (`s = 0` is uniform; `s ≈ 1`
    /// is classic web-traffic skew).
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        Self { cdf, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Draw one item index in `0..n`.
    pub fn sample(&mut self) -> usize {
        let u = self.rng.gen::<f64>();
        // First index whose cumulative weight reaches u.
        match self.cdf.binary_search_by(|w| w.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_samples_favor_the_head() {
        let mut z = Zipf::new(100, 1.1, 7);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample()] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        assert!(head > 5_000, "head-10 got {head}/10000 — not Zipf-skewed");
        assert!(counts[0] > counts[50], "rank 0 must beat rank 50");
    }

    #[test]
    fn uniform_exponent_is_roughly_flat() {
        let mut z = Zipf::new(10, 0.0, 3);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "uniform draw too lumpy: {counts:?}");
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a: Vec<usize> = {
            let mut z = Zipf::new(50, 1.0, 42);
            (0..20).map(|_| z.sample()).collect()
        };
        let b: Vec<usize> = {
            let mut z = Zipf::new(50, 1.0, 42);
            (0..20).map(|_| z.sample()).collect()
        };
        assert_eq!(a, b);
    }
}
