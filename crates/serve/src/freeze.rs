//! The freeze pass: calibrate, quantize, gate.
//!
//! Freezing is where quantization error is *measured, not assumed*: the
//! candidate artifact is executed through the real [`FrozenExecutor`] on a
//! held-out calibration set, and the freeze is **rejected** if its top-1
//! accuracy drops more than the configured tolerance below the f32
//! reference (default 1%). The same pass records the static activation
//! scale the int8 head runs against.

use crate::batch::ego_subgraph;
use crate::exec::FrozenExecutor;
use crate::frozen::{DatasetRef, FrozenModel, ModelSpec};
use crate::quant::{QuantScheme, QuantTensor};
use std::fmt;
use torchgt_ckpt::Snapshot;
use torchgt_graph::{CsrGraph, NodeDataset};
use torchgt_model::{Pattern, SequenceBatch, SequenceModel};
use torchgt_runtime::NodeTrainer;
use torchgt_tensor::{Tensor, Workspace};

/// Why a freeze was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum FreezeError {
    /// The calibration set has no evaluable queries.
    EmptyCalib,
    /// The quantized model lost more top-1 accuracy than allowed.
    AccuracyDrop { f32_acc: f64, frozen_acc: f64, max_drop: f64 },
    /// The model family cannot be reconstructed from hyper-parameters
    /// (no [`torchgt_model::ArchDescriptor`]) or failed to rebuild.
    Unsupported(String),
}

impl fmt::Display for FreezeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreezeError::EmptyCalib => write!(f, "calibration set has no queries"),
            FreezeError::AccuracyDrop { f32_acc, frozen_acc, max_drop } => write!(
                f,
                "quantized accuracy {frozen_acc:.4} drops more than {max_drop:.4} below f32 reference {f32_acc:.4}"
            ),
            FreezeError::Unsupported(m) => write!(f, "model not freezable: {m}"),
        }
    }
}

impl std::error::Error for FreezeError {}

/// Freeze-time knobs.
#[derive(Clone, Copy, Debug)]
pub struct FreezeOptions {
    /// Integer width to quantize to.
    pub scheme: QuantScheme,
    /// Maximum tolerated top-1 accuracy drop vs the f32 reference.
    pub max_acc_drop: f64,
}

impl Default for FreezeOptions {
    fn default() -> Self {
        Self { scheme: QuantScheme::Int8, max_acc_drop: 0.01 }
    }
}

/// Held-out tokens the calibration pass and accuracy gate run over.
///
/// Holds the full graph in dataset node order plus the indices of the
/// held-out nodes to score — the same data a live query's ego subgraph is
/// cut from, so freeze-time accuracy is measured on the serving
/// distribution.
pub struct CalibSet {
    /// `[num_nodes, feat_dim]` features in node order.
    pub features: Tensor,
    /// The raw topology.
    pub graph: CsrGraph,
    /// Attention mask: topology plus self-loops.
    pub mask: CsrGraph,
    /// Per-node labels.
    pub labels: Vec<u32>,
    /// Held-out node indices the gate scores.
    pub eval: Vec<u32>,
}

impl CalibSet {
    /// Build from a generated dataset's held-out (test) split, capped at
    /// `max_queries` nodes picked by a seeded shuffle.
    pub fn from_dataset(ds: &NodeDataset, max_queries: usize, seed: u64) -> Self {
        use torchgt_compat::rng::{RngCore, SeedableRng, SmallRng};
        let mut eval = ds.split.test.clone();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xCA11B);
        // Fisher–Yates, then truncate.
        for i in (1..eval.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            eval.swap(i, j);
        }
        eval.truncate(max_queries.max(1));
        Self {
            features: Tensor::from_vec(
                ds.graph.num_nodes(),
                ds.feat_dim,
                ds.features.clone(),
            ),
            graph: ds.graph.clone(),
            mask: ds.graph.with_self_loops(),
            labels: ds.labels.clone(),
            eval,
        }
    }

    /// The full-graph batch the calibration forward runs on. `spd` is
    /// `None`: serving never materialises the dense SPD matrix, so the
    /// reference must not either.
    pub fn batch(&self) -> SequenceBatch<'_> {
        SequenceBatch { features: &self.features, graph: &self.graph, spd: None }
    }

    /// Sparse attention over the self-looped topology — the same pattern
    /// the serve loop uses on packed micro-batches.
    pub fn pattern(&self) -> Pattern<'_> {
        Pattern::Sparse(&self.mask)
    }

    /// Fraction of `eval` nodes where `preds` (full per-node argmax)
    /// matches the labels.
    pub fn accuracy_of(&self, preds: &[u32]) -> f64 {
        if self.eval.is_empty() {
            return 0.0;
        }
        let hits = self
            .eval
            .iter()
            .filter(|&&n| preds[n as usize] == self.labels[n as usize])
            .count();
        hits as f64 / self.eval.len() as f64
    }
}

/// Anything that can be frozen into a deployable quantized artifact with
/// the same typed-error discipline as the `build_*` constructors.
pub trait Freezable {
    /// Freeze with default options (int8, ≤1% top-1 drop).
    fn freeze(&mut self, calib: &CalibSet) -> Result<FrozenModel, FreezeError> {
        self.freeze_with(calib, FreezeOptions::default())
    }
    /// Freeze with explicit scheme and tolerance.
    fn freeze_with(
        &mut self,
        calib: &CalibSet,
        opts: FreezeOptions,
    ) -> Result<FrozenModel, FreezeError>;
}

impl Freezable for NodeTrainer {
    fn freeze_with(
        &mut self,
        calib: &CalibSet,
        opts: FreezeOptions,
    ) -> Result<FrozenModel, FreezeError> {
        let seed = self.cfg.seed;
        freeze_model(self.model_mut(), calib, opts, seed)
    }
}

/// Core freeze pass over any live [`SequenceModel`]:
/// 1. run the f32 reference on the calibration set (accuracy + the static
///    activation scale for the int8 head),
/// 2. quantize every parameter per-row,
/// 3. execute the candidate artifact through the real [`FrozenExecutor`]
///    and gate on the measured accuracy drop.
///
/// The model's training mode is restored on every exit path.
pub fn freeze_model(
    model: &mut dyn SequenceModel,
    calib: &CalibSet,
    opts: FreezeOptions,
    seed: u64,
) -> Result<FrozenModel, FreezeError> {
    if calib.eval.is_empty() {
        return Err(FreezeError::EmptyCalib);
    }
    let desc = model
        .describe()
        .ok_or_else(|| FreezeError::Unsupported(format!("{} has no ArchDescriptor", model.name())))?;
    let spec = ModelSpec {
        kind: desc.kind.to_string(),
        feat_dim: desc.feat_dim,
        hidden: desc.hidden,
        layers: desc.layers,
        heads: desc.heads,
        ffn_mult: desc.ffn_mult,
        out_dim: desc.out_dim,
        pe_dim: desc.pe_dim,
        max_degree: desc.max_degree,
        max_spd: desc.max_spd,
        seed,
    };

    model.set_training(false);
    let result = freeze_inner(model, &spec, calib, opts);
    model.set_training(true);
    result
}

fn freeze_inner(
    model: &mut dyn SequenceModel,
    spec: &ModelSpec,
    calib: &CalibSet,
    opts: FreezeOptions,
) -> Result<FrozenModel, FreezeError> {
    let mut ws = Workspace::new();
    let batch = calib.batch();

    // f32 reference accuracy + static activation scale from the same pass.
    let (f32_preds, act_scale) = match model.forward_hidden_ws(&batch, calib.pattern(), &mut ws)
    {
        Some(h) => {
            let maxabs = h.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            ws.give(h);
            // The head fast path needs logits too — run the full forward.
            let logits = model.forward_ws(&batch, calib.pattern(), &mut ws);
            let preds = argmax_rows(&logits);
            ws.give(logits);
            (preds, if maxabs > 0.0 { maxabs / 127.0 } else { 0.0 })
        }
        None => {
            let logits = model.forward_ws(&batch, calib.pattern(), &mut ws);
            let preds = argmax_rows(&logits);
            ws.give(logits);
            (preds, 0.0)
        }
    };
    let f32_acc = calib.accuracy_of(&f32_preds);

    let tensors: Vec<QuantTensor> = model
        .params_mut()
        .iter()
        .map(|p| {
            let (rows, cols) = p.value.shape();
            QuantTensor::quantize(p.value.data(), rows, cols, opts.scheme)
        })
        .collect();

    let mut frozen = FrozenModel {
        spec: spec.clone(),
        scheme: opts.scheme,
        tensors,
        act_scale,
        f32_acc,
        frozen_acc: 0.0,
        dataset: None,
        dataset_manifest_hash: None,
    };
    let mut exec = FrozenExecutor::new(&frozen)
        .map_err(|e| FreezeError::Unsupported(format!("candidate executor: {e}")))?;
    let frozen_preds = exec.forward_argmax(&batch, calib.pattern());
    let frozen_acc = calib.accuracy_of(&frozen_preds);
    if f32_acc - frozen_acc > opts.max_acc_drop {
        return Err(FreezeError::AccuracyDrop {
            f32_acc,
            frozen_acc,
            max_drop: opts.max_acc_drop,
        });
    }
    frozen.frozen_acc = frozen_acc;
    Ok(frozen)
}

fn argmax_rows(logits: &Tensor) -> Vec<u32> {
    (0..logits.rows())
        .map(|r| {
            let row = logits.row(r);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best as u32
        })
        .collect()
}

/// Freeze directly from a `TGTS` training snapshot: rebuild the
/// architecture from `spec`, load the snapshot's parameters, and run the
/// standard calibrated freeze.
pub fn freeze_from_snapshot(
    snapshot: &Snapshot,
    spec: &ModelSpec,
    calib: &CalibSet,
    opts: FreezeOptions,
) -> Result<FrozenModel, FreezeError> {
    let mut model = spec
        .build()
        .map_err(|e| FreezeError::Unsupported(e.to_string()))?;
    snapshot
        .apply_params(&mut model.params_mut())
        .map_err(|e| FreezeError::Unsupported(format!("snapshot params: {e}")))?;
    freeze_model(model.as_mut(), calib, opts, spec.seed)
}

/// Attach dataset provenance to a frozen artifact (lets `torchgt serve`
/// regenerate the identical graph by seed).
pub fn with_dataset(mut frozen: FrozenModel, dataset: DatasetRef) -> FrozenModel {
    frozen.dataset = Some(dataset);
    frozen
}

/// Attach the identity hash of the on-disk sharded dataset the model was
/// trained against (a `torchgt-data` manifest hash).
pub fn with_dataset_hash(mut frozen: FrozenModel, hash: impl Into<String>) -> FrozenModel {
    frozen.dataset_manifest_hash = Some(hash.into());
    frozen
}

/// Convenience for load paths that only have a root id: the ego-subgraph
/// context a serve query would see for `root`.
pub fn query_context(calib: &CalibSet, root: u32, ctx: usize) -> crate::batch::EgoSubgraph {
    ego_subgraph(&calib.graph, root, ctx)
}
