//! Per-query subgraph extraction and micro-batch packing.
//!
//! A node query becomes an **ego subgraph**: BFS from the queried node,
//! capped at a context size, with the induced edges relabelled to local
//! ids (root first). Concurrent queries then pack into one block-diagonal
//! sequence via [`torchgt_graph::pack`], so a single sparse-attention
//! forward amortizes across the whole micro-batch while segments stay
//! attention-isolated — exactly the paper's §IV packing, pointed at
//! inference.
//!
//! The packed attention mask is `with_self_loops()` only: the training
//! path's Hamiltonian-path mask augmentation would thread a connectivity
//! chain *across* segment boundaries and leak one query's tokens into
//! another's attention.

use torchgt_graph::pack::{pack_features, pack_graphs};
use torchgt_graph::CsrGraph;
use torchgt_tensor::Tensor;

/// One query's context: the queried node plus its BFS neighbourhood.
#[derive(Clone, Debug)]
pub struct EgoSubgraph {
    /// Global node ids, root first, in BFS discovery order.
    pub nodes: Vec<u32>,
    /// Induced subgraph over `nodes`, in local ids.
    pub graph: CsrGraph,
}

/// Extract the BFS ego subgraph of `root`, capped at `max_nodes` nodes.
pub fn ego_subgraph(graph: &CsrGraph, root: u32, max_nodes: usize) -> EgoSubgraph {
    let cap = max_nodes.max(1);
    let mut nodes = Vec::with_capacity(cap);
    let mut local = std::collections::HashMap::with_capacity(cap);
    nodes.push(root);
    local.insert(root, 0u32);
    let mut head = 0usize;
    while head < nodes.len() && nodes.len() < cap {
        let v = nodes[head];
        head += 1;
        for &u in graph.neighbors(v as usize) {
            if nodes.len() >= cap {
                break;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = local.entry(u) {
                e.insert(nodes.len() as u32);
                nodes.push(u);
            }
        }
    }
    // Induced edges: keep arcs whose both endpoints were selected.
    let mut row_ptr = Vec::with_capacity(nodes.len() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    for &v in &nodes {
        for &u in graph.neighbors(v as usize) {
            if let Some(&lu) = local.get(&u) {
                col_idx.push(lu);
            }
        }
        row_ptr.push(col_idx.len());
    }
    EgoSubgraph { nodes, graph: CsrGraph::from_raw(row_ptr, col_idx) }
}

/// A micro-batch of queries packed into one block-diagonal sequence.
pub struct PackedQueryBatch {
    /// `[total_tokens, feat_dim]` features in packed order.
    pub features: Tensor,
    /// Block-diagonal union of the member subgraphs.
    pub graph: CsrGraph,
    /// Attention mask: the union with self-loops (no cross-segment arcs).
    pub mask: CsrGraph,
    /// Token range of each query; the query's root is the range's first row.
    pub segments: Vec<(usize, usize)>,
}

/// Pack ego subgraphs and their node features into one sequence.
///
/// `features` is the dataset's full `[num_nodes, feat_dim]` row-major
/// buffer; rows are gathered by each subgraph's global ids.
pub fn pack_queries(
    subs: &[EgoSubgraph],
    features: &[f32],
    feat_dim: usize,
) -> PackedQueryBatch {
    assert!(!subs.is_empty(), "pack_queries: empty micro-batch");
    let graphs: Vec<&CsrGraph> = subs.iter().map(|s| &s.graph).collect();
    let packed = pack_graphs(&graphs);
    let gathered: Vec<Vec<f32>> = subs
        .iter()
        .map(|s| {
            let mut rows = Vec::with_capacity(s.nodes.len() * feat_dim);
            for &n in &s.nodes {
                let off = n as usize * feat_dim;
                rows.extend_from_slice(&features[off..off + feat_dim]);
            }
            rows
        })
        .collect();
    let slices: Vec<&[f32]> = gathered.iter().map(|v| v.as_slice()).collect();
    let flat = pack_features(&slices, feat_dim);
    let total = flat.len() / feat_dim;
    let mask = packed.graph.with_self_loops();
    PackedQueryBatch {
        features: Tensor::from_vec(total, feat_dim, flat),
        graph: packed.graph,
        mask,
        segments: packed.segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2-3 path plus an isolated 4.
    fn path_graph() -> CsrGraph {
        CsrGraph::from_raw(vec![0, 1, 3, 5, 6, 6], vec![1, 0, 2, 1, 3, 2])
    }

    #[test]
    fn ego_subgraph_is_root_first_and_capped() {
        let g = path_graph();
        let e = ego_subgraph(&g, 1, 2);
        assert_eq!(e.nodes[0], 1);
        assert_eq!(e.nodes.len(), 2);
        let full = ego_subgraph(&g, 0, 100);
        assert_eq!(full.nodes, vec![0, 1, 2, 3]);
        // Induced local edges mirror the path.
        assert_eq!(full.graph.neighbors(0), &[1]);
        assert_eq!(full.graph.neighbors(1), &[0, 2]);
    }

    #[test]
    fn isolated_root_still_yields_one_node() {
        let e = ego_subgraph(&path_graph(), 4, 8);
        assert_eq!(e.nodes, vec![4]);
        assert_eq!(e.graph.num_nodes(), 1);
        assert_eq!(e.graph.num_arcs(), 0);
    }

    #[test]
    fn packed_batch_keeps_segments_isolated() {
        let g = path_graph();
        let feat: Vec<f32> = (0..10).map(|i| i as f32).collect(); // feat_dim 2
        let subs = vec![ego_subgraph(&g, 0, 3), ego_subgraph(&g, 4, 3)];
        let b = pack_queries(&subs, &feat, 2);
        assert_eq!(b.segments, vec![(0, 3), (3, 4)]);
        assert_eq!(b.features.row(0), &[0.0, 1.0]); // node 0
        assert_eq!(b.features.row(3), &[8.0, 9.0]); // node 4
        // No arc in the mask crosses the 3|4 boundary.
        for v in 0..3 {
            assert!(b.mask.neighbors(v).iter().all(|&u| (u as usize) < 3));
        }
        assert_eq!(b.mask.neighbors(3), &[3]); // isolated root: self-loop only
    }
}
