//! The request loop: bounded queue in, micro-batched packed attention out.
//!
//! [`ServeLoop::run`] drains a bounded MPSC queue of node queries. The
//! first query of a window opens a **latency budget**; further queries
//! accumulate (via `recv_timeout` against the remaining budget) until the
//! batch is full or the deadline passes, then the whole window executes as
//! one block-diagonal packed forward. Under load the batch fills instantly
//! and attention cost amortizes across the batch; when idle a lone query
//! pays at most the budget in queueing delay.
//!
//! Every reply carries its end-to-end latency; the loop aggregates a
//! [`torchgt_obs::LatencyHistogram`] and publishes p50/p99, queue depth,
//! and throughput through the attached recorder.

use crate::batch::{ego_subgraph, pack_queries};
use crate::exec::FrozenExecutor;
use crate::frozen::FrozenModel;
use std::io;
use std::time::{Duration, Instant};
use torchgt_compat::sync::channel::{Receiver, RecvTimeoutError, Sender};
use torchgt_graph::CsrGraph;
use torchgt_model::{Pattern, SequenceBatch};
use torchgt_obs::{LatencyHistogram, RecorderHandle};

/// One node query. `reply` receives the prediction; dropping the receiver
/// just discards the answer (the loop ignores send failures).
pub struct Query {
    /// Global node id to classify.
    pub node: u32,
    /// Arrival timestamp — latency is measured enqueue-to-reply.
    pub enqueued: Instant,
    /// Where the prediction goes.
    pub reply: Sender<Prediction>,
}

impl Query {
    /// A query stamped with the current time.
    pub fn new(node: u32, reply: Sender<Prediction>) -> Self {
        Self { node, enqueued: Instant::now(), reply }
    }
}

/// A served answer.
#[derive(Clone, Copy, Debug)]
pub struct Prediction {
    /// The queried node.
    pub node: u32,
    /// Predicted class.
    pub label: u32,
    /// End-to-end latency (enqueue to reply send).
    pub latency: Duration,
}

/// Micro-batching knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Flush when this many queries have accumulated.
    pub max_batch: usize,
    /// Flush when the window's first query has waited this long.
    pub latency_budget: Duration,
    /// Ego-subgraph context cap per query (tokens per segment).
    pub ctx_nodes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { max_batch: 8, latency_budget: Duration::from_millis(50), ctx_nodes: 32 }
    }
}

torchgt_compat::json_struct! {
    /// End-of-run summary (also exported as gauges on the recorder).
    #[derive(Clone, Debug, PartialEq)]
    pub struct ServeStats {
        pub served: u64,
        pub batches: u64,
        pub p50_latency_ms: f64,
        pub p99_latency_ms: f64,
        pub mean_latency_ms: f64,
        pub max_latency_ms: f64,
        pub throughput_qps: f64,
        pub max_queue_depth: u64,
        pub avg_batch_size: f64,
    }
}

/// The serving engine: a frozen executor plus the graph it answers
/// queries against.
pub struct ServeLoop {
    exec: FrozenExecutor,
    graph: CsrGraph,
    features: Vec<f32>,
    feat_dim: usize,
    cfg: ServeConfig,
    recorder: RecorderHandle,
}

impl ServeLoop {
    /// Build from a frozen artifact and the dataset it serves. `features`
    /// is the full `[num_nodes, feat_dim]` row-major buffer.
    pub fn new(
        frozen: &FrozenModel,
        graph: CsrGraph,
        features: Vec<f32>,
        cfg: ServeConfig,
        recorder: RecorderHandle,
    ) -> io::Result<Self> {
        let feat_dim = frozen.spec.feat_dim;
        if features.len() != graph.num_nodes() * feat_dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "features buffer is {} floats, graph x feat_dim needs {}",
                    features.len(),
                    graph.num_nodes() * feat_dim
                ),
            ));
        }
        Ok(Self {
            exec: FrozenExecutor::new(frozen)?,
            graph,
            features,
            feat_dim,
            cfg,
            recorder,
        })
    }

    /// Drain queries until every sender is gone, then return the run's
    /// stats. Meant to run on its own thread while clients hold `Sender`
    /// clones of `rx`'s channel.
    pub fn run(&mut self, rx: Receiver<Query>) -> ServeStats {
        let mut hist = LatencyHistogram::new();
        let mut served = 0u64;
        let mut batches = 0u64;
        let mut max_depth = 0u64;
        let mut first_arrival: Option<Instant> = None;
        let mut last_reply: Option<Instant> = None;

        'serve: loop {
            // Block for the window's first query.
            let first = match rx.recv() {
                Ok(q) => q,
                Err(_) => break 'serve,
            };
            first_arrival.get_or_insert(first.enqueued);
            let deadline = Instant::now() + self.cfg.latency_budget;
            let mut window = vec![first];
            let mut disconnected = false;
            while window.len() < self.cfg.max_batch {
                let now = Instant::now();
                let Some(remaining) =
                    deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    break;
                };
                match rx.recv_timeout(remaining) {
                    Ok(q) => window.push(q),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            max_depth = max_depth.max(rx.len() as u64);

            self.flush(&window, &mut hist);
            served += window.len() as u64;
            batches += 1;
            last_reply = Some(Instant::now());
            if disconnected && rx.is_empty() {
                break 'serve;
            }
        }

        let wall = match (first_arrival, last_reply) {
            (Some(a), Some(b)) => b.duration_since(a).as_secs_f64(),
            _ => 0.0,
        };
        let stats = ServeStats {
            served,
            batches,
            p50_latency_ms: hist.quantile(0.50) * 1e3,
            p99_latency_ms: hist.quantile(0.99) * 1e3,
            mean_latency_ms: hist.mean() * 1e3,
            max_latency_ms: hist.max() * 1e3,
            throughput_qps: if wall > 0.0 { served as f64 / wall } else { served as f64 },
            max_queue_depth: max_depth,
            avg_batch_size: if batches > 0 { served as f64 / batches as f64 } else { 0.0 },
        };
        if self.recorder.enabled() {
            self.recorder.gauge_set("p50_latency_ms", stats.p50_latency_ms);
            self.recorder.gauge_set("p99_latency_ms", stats.p99_latency_ms);
            self.recorder.gauge_set("queue_depth", stats.max_queue_depth as f64);
            self.recorder.gauge_set("throughput_qps", stats.throughput_qps);
            self.recorder.gauge_set("avg_batch_size", stats.avg_batch_size);
            self.recorder.counter_add("queries_served", served);
            self.recorder.counter_add("serve_batches", batches);
        }
        stats
    }

    /// Execute one packed window and reply to every member.
    fn flush(&mut self, window: &[Query], hist: &mut LatencyHistogram) {
        let subs: Vec<_> = window
            .iter()
            .map(|q| ego_subgraph(&self.graph, q.node, self.cfg.ctx_nodes))
            .collect();
        let packed = pack_queries(&subs, &self.features, self.feat_dim);
        let batch = SequenceBatch {
            features: &packed.features,
            graph: &packed.graph,
            spd: None,
        };
        let preds = self.exec.forward_argmax(&batch, Pattern::Sparse(&packed.mask));
        for (q, &(start, _)) in window.iter().zip(&packed.segments) {
            let latency = q.enqueued.elapsed();
            hist.record(latency.as_secs_f64());
            // A gone client is not an error — just drop the answer.
            let _ = q.reply.send(Prediction { node: q.node, label: preds[start], latency });
        }
    }
}
