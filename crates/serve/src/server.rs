//! The request loop: bounded queue in, micro-batched packed attention out.
//!
//! [`ServeLoop::run`] drains a bounded MPSC queue of node queries. The
//! first query of a window opens a **latency budget**; further queries
//! accumulate (via `recv_timeout` against the remaining budget) until the
//! batch is full or the deadline passes, then the whole window executes as
//! one block-diagonal packed forward. Under load the batch fills instantly
//! and attention cost amortizes across the batch; when idle a lone query
//! pays at most the budget in queueing delay.
//!
//! **Admission control.** Every dequeued query passes an admission check
//! before it can join a window: a query whose deadline already passed is
//! shed as [`ShedReason::Expired`], and when the backlog behind it exceeds
//! the shed watermark it is shed as [`ShedReason::QueueFull`] — a typed
//! [`Overloaded`] reply goes back immediately (orders of magnitude cheaper
//! than a forward pass), which is what keeps goodput flat past saturation
//! instead of collapsing under queueing delay.
//!
//! **Graceful drain.** [`ServeLoop::shutdown_handle`] hands out a flag any
//! thread can trip; the loop then answers everything already enqueued
//! (counted as `drained`), sheds later arrivals as
//! [`ShedReason::Draining`], and returns.
//!
//! Every answered reply carries its end-to-end latency; the loop aggregates
//! a [`torchgt_obs::LatencyHistogram`] over **accepted** queries only (shed
//! replies are tracked separately), and publishes p50/p99, queue depth,
//! shed counters, and throughput through the attached recorder.

use crate::batch::{ego_subgraph, pack_queries};
use crate::exec::FrozenExecutor;
use crate::frozen::FrozenModel;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use torchgt_compat::sync::channel::{Receiver, RecvTimeoutError, Sender};
use torchgt_graph::CsrGraph;
use torchgt_model::{Pattern, SequenceBatch};
use torchgt_obs::{Event, LatencyHistogram, RecorderHandle};

/// One node query. `reply` receives the [`ServeReply`]; dropping the
/// receiver just discards the answer (the loop ignores send failures).
pub struct Query {
    /// Global node id to classify.
    pub node: u32,
    /// Arrival timestamp — latency is measured enqueue-to-reply.
    pub enqueued: Instant,
    /// Where the answer (or the typed overload rejection) goes.
    pub reply: Sender<ServeReply>,
}

impl Query {
    /// A query stamped with the current time.
    pub fn new(node: u32, reply: Sender<ServeReply>) -> Self {
        Self { node, enqueued: Instant::now(), reply }
    }
}

/// A served answer.
#[derive(Clone, Copy, Debug)]
pub struct Prediction {
    /// The queried node.
    pub node: u32,
    /// Predicted class.
    pub label: u32,
    /// End-to-end latency (enqueue to reply send).
    pub latency: Duration,
}

/// Why the admission controller refused a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Queue depth behind the query exceeded the shed watermark.
    QueueFull,
    /// The query's deadline had already passed at dequeue.
    Expired,
    /// The query arrived after graceful shutdown began.
    Draining,
}

impl ShedReason {
    /// Stable label used in `LOAD_SHED` events and logs.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Expired => "expired",
            ShedReason::Draining => "draining",
        }
    }
}

/// Typed overload rejection: the query was not executed.
#[derive(Clone, Copy, Debug)]
pub struct Overloaded {
    /// The rejected node query.
    pub node: u32,
    /// Why admission refused it.
    pub reason: ShedReason,
    /// Queue depth observed at the shed decision.
    pub depth: usize,
}

/// What a client gets back for one query.
#[derive(Clone, Copy, Debug)]
pub enum ServeReply {
    /// The query executed; here is its prediction.
    Answered(Prediction),
    /// The query was shed by admission control.
    Overloaded(Overloaded),
}

impl ServeReply {
    /// The prediction, when the query was answered.
    pub fn prediction(self) -> Option<Prediction> {
        match self {
            ServeReply::Answered(p) => Some(p),
            ServeReply::Overloaded(_) => None,
        }
    }

    /// Whether this reply is a shed rejection.
    pub fn is_shed(&self) -> bool {
        matches!(self, ServeReply::Overloaded(_))
    }
}

/// Micro-batching and admission-control knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Flush when this many queries have accumulated.
    pub max_batch: usize,
    /// Flush when the window's first query has waited this long.
    pub latency_budget: Duration,
    /// Ego-subgraph context cap per query (tokens per segment).
    pub ctx_nodes: usize,
    /// Shed a dequeued query when more than this many queries are still
    /// waiting behind it (`None` disables depth-based shedding).
    pub shed_watermark: Option<usize>,
    /// Shed a dequeued query older than this (`None` disables
    /// deadline-based shedding).
    pub deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            latency_budget: Duration::from_millis(50),
            ctx_nodes: 32,
            shed_watermark: None,
            deadline: None,
        }
    }
}

torchgt_compat::json_struct! {
    /// End-of-run summary (also exported as gauges on the recorder).
    /// Latency quantiles cover **accepted** queries only; shed replies are
    /// counted (`shed` = `shed_queue_full + shed_expired + shed_draining`)
    /// and their dequeue-to-reply handling time tracked separately.
    #[derive(Clone, Debug, PartialEq)]
    pub struct ServeStats {
        pub served: u64,
        pub batches: u64,
        pub p50_latency_ms: f64,
        pub p99_latency_ms: f64,
        pub mean_latency_ms: f64,
        pub max_latency_ms: f64,
        pub throughput_qps: f64,
        pub max_queue_depth: u64,
        pub avg_batch_size: f64,
        pub shed: u64,
        pub shed_queue_full: u64,
        pub shed_expired: u64,
        pub shed_draining: u64,
        pub drained: u64,
        pub shed_handling_ms_mean: f64,
        pub shed_handling_ms_max: f64,
    }
}

/// A clonable flag that asks a running [`ServeLoop`] to drain and exit:
/// everything already enqueued is answered, later arrivals are shed as
/// [`ShedReason::Draining`].
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Begin graceful shutdown.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// How often the idle loop wakes to check the shutdown flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(5);

/// The serving engine: a frozen executor plus the graph it answers
/// queries against.
pub struct ServeLoop {
    exec: FrozenExecutor,
    graph: CsrGraph,
    features: Vec<f32>,
    feat_dim: usize,
    cfg: ServeConfig,
    recorder: RecorderHandle,
    shutdown: Arc<AtomicBool>,
}

/// Per-run shed bookkeeping.
#[derive(Default)]
struct ShedLedger {
    queue_full: u64,
    expired: u64,
    draining: u64,
    handling: LatencyHistogram,
}

impl ShedLedger {
    fn total(&self) -> u64 {
        self.queue_full + self.expired + self.draining
    }
}

impl ServeLoop {
    /// Build from a frozen artifact and the dataset it serves. `features`
    /// is the full `[num_nodes, feat_dim]` row-major buffer.
    pub fn new(
        frozen: &FrozenModel,
        graph: CsrGraph,
        features: Vec<f32>,
        cfg: ServeConfig,
        recorder: RecorderHandle,
    ) -> io::Result<Self> {
        let feat_dim = frozen.spec.feat_dim;
        if features.len() != graph.num_nodes() * feat_dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "features buffer is {} floats, graph x feat_dim needs {}",
                    features.len(),
                    graph.num_nodes() * feat_dim
                ),
            ));
        }
        Ok(Self {
            exec: FrozenExecutor::new(frozen)?,
            graph,
            features,
            feat_dim,
            cfg,
            recorder,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// A handle other threads use to request graceful drain.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { flag: Arc::clone(&self.shutdown) }
    }

    /// Admission check for a dequeued query: `None` admits, `Some(reason)`
    /// sheds. `depth` is the backlog still waiting behind the query.
    fn admission(
        &self,
        q: &Query,
        depth: usize,
        drain_started: Option<Instant>,
    ) -> Option<ShedReason> {
        if let Some(t0) = drain_started {
            if q.enqueued > t0 {
                return Some(ShedReason::Draining);
            }
        }
        if let Some(deadline) = self.cfg.deadline {
            if q.enqueued.elapsed() > deadline {
                return Some(ShedReason::Expired);
            }
        }
        if let Some(watermark) = self.cfg.shed_watermark {
            if depth > watermark {
                return Some(ShedReason::QueueFull);
            }
        }
        None
    }

    /// Reply [`Overloaded`] to a shed query and account for it. The
    /// handling time (dequeue decision to reply sent) is what the overload
    /// bench asserts stays under a millisecond.
    fn shed(&self, q: Query, reason: ShedReason, depth: usize, ledger: &mut ShedLedger) {
        let t0 = Instant::now();
        let _ = q.reply.send(ServeReply::Overloaded(Overloaded {
            node: q.node,
            reason,
            depth,
        }));
        ledger.handling.record(t0.elapsed().as_secs_f64());
        match reason {
            ShedReason::QueueFull => ledger.queue_full += 1,
            ShedReason::Expired => ledger.expired += 1,
            ShedReason::Draining => ledger.draining += 1,
        }
        if self.recorder.enabled() {
            self.recorder.event(Event::load_shed(q.node as u64, reason.label(), depth));
            self.recorder.counter_add("queries_shed", 1);
        }
    }

    /// Drain queries until every sender is gone (or shutdown is requested
    /// and the backlog is answered), then return the run's stats. Meant to
    /// run on its own thread while clients hold `Sender` clones of `rx`'s
    /// channel.
    pub fn run(&mut self, rx: Receiver<Query>) -> ServeStats {
        let mut hist = LatencyHistogram::new();
        let mut ledger = ShedLedger::default();
        let mut served = 0u64;
        let mut drained = 0u64;
        let mut batches = 0u64;
        let mut max_depth = 0u64;
        let mut first_arrival: Option<Instant> = None;
        let mut last_reply: Option<Instant> = None;
        let serve_faults = torchgt_faults::serve_plan();

        'serve: loop {
            let drain_started = self.shutdown.load(Ordering::SeqCst).then(Instant::now);
            if let Some(t0) = drain_started {
                // Graceful drain: answer the backlog, shed late arrivals.
                let mut window: Vec<Query> = Vec::new();
                while let Some(q) = rx.try_recv() {
                    let depth = rx.len();
                    match self.admission(&q, depth, Some(t0)) {
                        Some(reason) => self.shed(q, reason, depth, &mut ledger),
                        None => {
                            first_arrival.get_or_insert(q.enqueued);
                            window.push(q);
                        }
                    }
                    if window.len() == self.cfg.max_batch {
                        self.execute(&window, &mut hist, &mut batches, &serve_faults);
                        served += window.len() as u64;
                        drained += window.len() as u64;
                        last_reply = Some(Instant::now());
                        window.clear();
                    }
                }
                if !window.is_empty() {
                    self.execute(&window, &mut hist, &mut batches, &serve_faults);
                    served += window.len() as u64;
                    drained += window.len() as u64;
                    last_reply = Some(Instant::now());
                }
                break 'serve;
            }

            // Block for the window's first query, waking periodically so a
            // shutdown request is noticed even on an idle queue.
            let first = match rx.recv_timeout(SHUTDOWN_POLL) {
                Ok(q) => q,
                Err(RecvTimeoutError::Timeout) => continue 'serve,
                Err(RecvTimeoutError::Disconnected) => break 'serve,
            };
            first_arrival.get_or_insert(first.enqueued);
            let depth = rx.len();
            max_depth = max_depth.max(depth as u64);
            let first = match self.admission(&first, depth, None) {
                Some(reason) => {
                    self.shed(first, reason, depth, &mut ledger);
                    continue 'serve;
                }
                None => first,
            };
            let deadline = Instant::now() + self.cfg.latency_budget;
            let mut window = vec![first];
            let mut disconnected = false;
            while window.len() < self.cfg.max_batch {
                let now = Instant::now();
                let Some(remaining) =
                    deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    break;
                };
                match rx.recv_timeout(remaining) {
                    Ok(q) => {
                        let depth = rx.len();
                        max_depth = max_depth.max(depth as u64);
                        match self.admission(&q, depth, None) {
                            Some(reason) => self.shed(q, reason, depth, &mut ledger),
                            None => window.push(q),
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            max_depth = max_depth.max(rx.len() as u64);

            self.execute(&window, &mut hist, &mut batches, &serve_faults);
            served += window.len() as u64;
            last_reply = Some(Instant::now());
            if disconnected && rx.is_empty() {
                break 'serve;
            }
        }

        let wall = match (first_arrival, last_reply) {
            (Some(a), Some(b)) => b.duration_since(a).as_secs_f64(),
            _ => 0.0,
        };
        let stats = ServeStats {
            served,
            batches,
            p50_latency_ms: hist.quantile(0.50) * 1e3,
            p99_latency_ms: hist.quantile(0.99) * 1e3,
            mean_latency_ms: hist.mean() * 1e3,
            max_latency_ms: hist.max() * 1e3,
            throughput_qps: if wall > 0.0 { served as f64 / wall } else { served as f64 },
            max_queue_depth: max_depth,
            avg_batch_size: if batches > 0 { served as f64 / batches as f64 } else { 0.0 },
            shed: ledger.total(),
            shed_queue_full: ledger.queue_full,
            shed_expired: ledger.expired,
            shed_draining: ledger.draining,
            drained,
            shed_handling_ms_mean: ledger.handling.mean() * 1e3,
            shed_handling_ms_max: ledger.handling.max() * 1e3,
        };
        if self.recorder.enabled() {
            self.recorder.gauge_set("p50_latency_ms", stats.p50_latency_ms);
            self.recorder.gauge_set("p99_latency_ms", stats.p99_latency_ms);
            self.recorder.gauge_set("queue_depth", stats.max_queue_depth as f64);
            self.recorder.gauge_set("throughput_qps", stats.throughput_qps);
            self.recorder.gauge_set("avg_batch_size", stats.avg_batch_size);
            let total = stats.served + stats.shed;
            let shed_rate = if total > 0 { stats.shed as f64 / total as f64 } else { 0.0 };
            self.recorder.gauge_set("shed_rate", shed_rate);
            self.recorder.counter_add("queries_served", served);
            self.recorder.counter_add("serve_batches", batches);
            self.recorder.counter_add("queries_drained", drained);
        }
        stats
    }

    /// Execute one packed window: injected executor stall (when the fault
    /// plane's serve domain is armed), then the forward and the replies.
    fn execute(
        &mut self,
        window: &[Query],
        hist: &mut LatencyHistogram,
        batches: &mut u64,
        serve_faults: &Option<(u64, torchgt_faults::ServeFaultPlan)>,
    ) {
        if window.is_empty() {
            return;
        }
        if let Some((seed, plan)) = serve_faults {
            if plan.executor_stalls(*seed, *batches) && plan.slow_s > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(plan.slow_s));
            }
        }
        self.flush(window, hist);
        *batches += 1;
    }

    /// Execute one packed window and reply to every member.
    fn flush(&mut self, window: &[Query], hist: &mut LatencyHistogram) {
        let subs: Vec<_> = window
            .iter()
            .map(|q| ego_subgraph(&self.graph, q.node, self.cfg.ctx_nodes))
            .collect();
        let packed = pack_queries(&subs, &self.features, self.feat_dim);
        let batch = SequenceBatch {
            features: &packed.features,
            graph: &packed.graph,
            spd: None,
        };
        let preds = self.exec.forward_argmax(&batch, Pattern::Sparse(&packed.mask));
        for (q, &(start, _)) in window.iter().zip(&packed.segments) {
            let latency = q.enqueued.elapsed();
            hist.record(latency.as_secs_f64());
            // A gone client is not an error — just drop the answer.
            let _ = q.reply.send(ServeReply::Answered(Prediction {
                node: q.node,
                label: preds[start],
                latency,
            }));
        }
    }
}
