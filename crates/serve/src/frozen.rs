//! The `TGTF` frozen-model artifact.
//!
//! ```text
//! offset  size            field
//! 0       4               magic "TGTF"
//! 4       4               format version, u32 LE (currently 1)
//! 8       8               manifest length N, u64 LE
//! 16      4               CRC-32 of the manifest bytes, u32 LE
//! 20      N               manifest: compact JSON (torchgt-compat::json)
//! 20+N    payload_len     payload: per tensor, row scales (f32 LE) then
//!                         quantized values (i8, or i16 LE)
//! ```
//!
//! Same framing discipline as the `TGTS` training snapshots: both checksums
//! (manifest and payload), every declared length, and exact EOF are
//! verified before any state is constructed, so a flipped bit anywhere in
//! the file fails cleanly. Unlike `TGTS`, the payload is quantized weights
//! only — no optimizer moments, no RNG cursors — which makes an int8
//! artifact roughly 12x smaller than the snapshot it was frozen from.

use crate::quant::{QuantData, QuantScheme, QuantTensor};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;
use torchgt_ckpt::crc32;
use torchgt_model::{Gt, GtConfig, Graphormer, GraphormerConfig, SequenceModel};
use torchgt_tensor::checkpoint::{expect_eof, read_f32s, write_f32s};

/// Current frozen-artifact format version (2 added the dataset manifest
/// hash).
pub const FORMAT_VERSION: u32 = 2;

/// The pre-dataset-identity revision, still accepted by the reader.
pub const FORMAT_VERSION_V1: u32 = 1;

const MAGIC: &[u8; 4] = b"TGTF";

/// Hard cap on the declared manifest length — a corrupted length field must
/// not trigger a huge allocation.
const MAX_MANIFEST_LEN: u64 = 64 << 20;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

torchgt_compat::json_struct! {
    /// Everything needed to rebuild the architecture a frozen model was
    /// trained with. `kind` is `"gt"` or `"graphormer"`; the degree/SPD
    /// fields are ignored by `gt`.
    #[derive(Clone, Debug, PartialEq)]
    pub struct ModelSpec {
        pub kind: String,
        pub feat_dim: usize,
        pub hidden: usize,
        pub layers: usize,
        pub heads: usize,
        pub ffn_mult: usize,
        pub out_dim: usize,
        pub pe_dim: usize,
        pub max_degree: usize,
        pub max_spd: u8,
        pub seed: u64,
    }
}

impl ModelSpec {
    /// Instantiate the architecture (weights are the seed-determined init;
    /// the executor overwrites them from the quantized payload). Dropout is
    /// structurally zero: a frozen model only ever runs inference.
    pub fn build(&self) -> io::Result<Box<dyn SequenceModel>> {
        match self.kind.as_str() {
            "gt" => Ok(Box::new(Gt::new(
                GtConfig {
                    feat_dim: self.feat_dim,
                    hidden: self.hidden,
                    layers: self.layers,
                    heads: self.heads,
                    ffn_mult: self.ffn_mult,
                    out_dim: self.out_dim,
                    pe_dim: self.pe_dim,
                    dropout: 0.0,
                },
                self.seed,
            ))),
            "graphormer" => Ok(Box::new(Graphormer::new(
                GraphormerConfig {
                    feat_dim: self.feat_dim,
                    hidden: self.hidden,
                    layers: self.layers,
                    heads: self.heads,
                    ffn_mult: self.ffn_mult,
                    out_dim: self.out_dim,
                    max_degree: self.max_degree,
                    max_spd: self.max_spd,
                    dropout: 0.0,
                },
                self.seed,
            ))),
            other => Err(bad(format!("unknown frozen model kind `{other}`"))),
        }
    }
}

torchgt_compat::json_struct! {
    /// Provenance of the dataset the model was trained and calibrated on,
    /// so `torchgt serve` can regenerate the identical graph by seed.
    #[derive(Clone, Debug, PartialEq)]
    pub struct DatasetRef {
        pub kind: String,
        pub scale: f64,
        pub seed: u64,
    }
}

torchgt_compat::json_struct! {
    /// One quantized tensor's framing in the payload.
    #[derive(Clone, Debug, PartialEq)]
    struct QuantShape {
        rows: usize,
        cols: usize,
    }
}

torchgt_compat::json_struct! {
    /// The version-2 JSON manifest (private — [`FrozenModel`] is the public
    /// surface).
    #[derive(Clone, Debug, PartialEq)]
    struct FrozenManifest {
        format_version: u32,
        spec: ModelSpec,
        scheme: QuantScheme,
        act_scale: f32,
        f32_acc: f64,
        frozen_acc: f64,
        dataset: Option<DatasetRef>,
        dataset_manifest_hash: Option<String>,
        shapes: Vec<QuantShape>,
        payload_len: u64,
        payload_crc: u32,
    }
}

torchgt_compat::json_struct! {
    /// The version-1 manifest: identical except the dataset manifest hash
    /// does not exist (the JSON decoder errors on missing fields, so
    /// back-compat is a separate struct rather than an optional field).
    #[derive(Clone, Debug, PartialEq)]
    struct FrozenManifestV1 {
        format_version: u32,
        spec: ModelSpec,
        scheme: QuantScheme,
        act_scale: f32,
        f32_acc: f64,
        frozen_acc: f64,
        dataset: Option<DatasetRef>,
        shapes: Vec<QuantShape>,
        payload_len: u64,
        payload_crc: u32,
    }
}

/// A deployable frozen model: architecture spec, per-parameter quantized
/// tensors (model traversal order), and the calibration record that the
/// freeze-time accuracy gate was checked against.
#[derive(Clone, Debug, PartialEq)]
pub struct FrozenModel {
    pub spec: ModelSpec,
    pub scheme: QuantScheme,
    /// Quantized parameters in `SequenceModel::params_mut` order.
    pub tensors: Vec<QuantTensor>,
    /// Static activation scale for the int8 head fast path: maxabs of the
    /// pre-head hidden state over the calibration set, divided by 127.
    /// Zero means "not calibrated" — the executor falls back to dynamic
    /// per-row activation scaling.
    pub act_scale: f32,
    /// Top-1 accuracy of the f32 reference on the calibration set.
    pub f32_acc: f64,
    /// Top-1 accuracy of the quantized executor on the calibration set.
    pub frozen_acc: f64,
    /// Dataset provenance, when the calibration set came from a generated
    /// dataset (lets `torchgt serve` rebuild the graph by seed).
    pub dataset: Option<DatasetRef>,
    /// Identity hash of the on-disk sharded dataset the model was trained
    /// against (a `torchgt-data` manifest hash; `None` for in-memory
    /// datasets and version-1 files).
    pub dataset_manifest_hash: Option<String>,
}

impl FrozenModel {
    /// Serialise to a writer (header + manifest + payload, per the module
    /// docs).
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut payload = Vec::new();
        for t in &self.tensors {
            write_f32s(&mut payload, &t.scales)?;
            match &t.data {
                QuantData::I8(q) => {
                    // i8 -> u8 is a bijection on bit patterns.
                    payload.extend(q.iter().map(|&v| v as u8));
                }
                QuantData::I16(q) => {
                    for &v in q {
                        payload.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        let manifest = FrozenManifest {
            format_version: FORMAT_VERSION,
            spec: self.spec.clone(),
            scheme: self.scheme,
            act_scale: self.act_scale,
            f32_acc: self.f32_acc,
            frozen_acc: self.frozen_acc,
            dataset: self.dataset.clone(),
            dataset_manifest_hash: self.dataset_manifest_hash.clone(),
            shapes: self
                .tensors
                .iter()
                .map(|t| QuantShape { rows: t.rows, cols: t.cols })
                .collect(),
            payload_len: payload.len() as u64,
            payload_crc: crc32(&payload),
        };
        let manifest_bytes = torchgt_compat::json::to_string(&manifest)
            .map_err(|e| bad(format!("manifest encode: {e}")))?
            .into_bytes();
        w.write_all(MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(manifest_bytes.len() as u64).to_le_bytes())?;
        w.write_all(&crc32(&manifest_bytes).to_le_bytes())?;
        w.write_all(&manifest_bytes)?;
        w.write_all(&payload)?;
        Ok(())
    }

    /// Deserialise from a reader, verifying magic, version, both checksums,
    /// all declared lengths, and exact EOF.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("bad frozen-model magic"));
        }
        let mut buf4 = [0u8; 4];
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf4)?;
        let version = u32::from_le_bytes(buf4);
        if version != FORMAT_VERSION && version != FORMAT_VERSION_V1 {
            return Err(bad(format!(
                "unsupported frozen-model format version {version} (expected {FORMAT_VERSION_V1} or {FORMAT_VERSION})"
            )));
        }
        r.read_exact(&mut buf8)?;
        let manifest_len = u64::from_le_bytes(buf8);
        if manifest_len > MAX_MANIFEST_LEN {
            return Err(bad(format!("implausible manifest length {manifest_len}")));
        }
        r.read_exact(&mut buf4)?;
        let manifest_crc = u32::from_le_bytes(buf4);
        let mut manifest_bytes = vec![0u8; manifest_len as usize];
        r.read_exact(&mut manifest_bytes)?;
        if crc32(&manifest_bytes) != manifest_crc {
            return Err(bad("manifest checksum mismatch (corrupt frozen model)"));
        }
        let manifest_text = std::str::from_utf8(&manifest_bytes)
            .map_err(|_| bad("manifest is not valid UTF-8"))?;
        // The dataset manifest hash arrived in version 2; a v1 manifest
        // would fail the v2 decoder's missing-field check, so each revision
        // gets its own decode path.
        let manifest: FrozenManifest = if version == FORMAT_VERSION_V1 {
            let v1: FrozenManifestV1 = torchgt_compat::json::from_str_as(manifest_text)
                .map_err(|e| bad(format!("manifest decode: {e}")))?;
            FrozenManifest {
                format_version: v1.format_version,
                spec: v1.spec,
                scheme: v1.scheme,
                act_scale: v1.act_scale,
                f32_acc: v1.f32_acc,
                frozen_acc: v1.frozen_acc,
                dataset: v1.dataset,
                dataset_manifest_hash: None,
                shapes: v1.shapes,
                payload_len: v1.payload_len,
                payload_crc: v1.payload_crc,
            }
        } else {
            torchgt_compat::json::from_str_as(manifest_text)
                .map_err(|e| bad(format!("manifest decode: {e}")))?
        };
        if manifest.format_version != version {
            return Err(bad("header/manifest version mismatch"));
        }
        let elem = manifest.scheme.elem_bytes();
        let declared: u64 = manifest
            .shapes
            .iter()
            .map(|s| (s.rows * 4 + s.rows * s.cols * elem) as u64)
            .sum();
        if declared != manifest.payload_len {
            return Err(bad(format!(
                "declared shapes need {declared} payload bytes, manifest says {}",
                manifest.payload_len
            )));
        }
        let mut payload = vec![0u8; manifest.payload_len as usize];
        r.read_exact(&mut payload)?;
        if crc32(&payload) != manifest.payload_crc {
            return Err(bad("payload checksum mismatch (corrupt frozen model)"));
        }
        expect_eof(&mut r)?;

        let mut cursor: &[u8] = &payload;
        let mut tensors = Vec::with_capacity(manifest.shapes.len());
        for s in &manifest.shapes {
            let scales = read_f32s(&mut cursor, s.rows)?;
            let n = s.rows * s.cols;
            let data = match manifest.scheme {
                QuantScheme::Int8 => {
                    let mut bytes = vec![0u8; n];
                    cursor.read_exact(&mut bytes)?;
                    QuantData::I8(bytes.into_iter().map(|b| b as i8).collect())
                }
                QuantScheme::Int16 => {
                    let mut bytes = vec![0u8; n * 2];
                    cursor.read_exact(&mut bytes)?;
                    QuantData::I16(
                        bytes.chunks_exact(2).map(|c| i16::from_le_bytes([c[0], c[1]])).collect(),
                    )
                }
            };
            tensors.push(QuantTensor {
                rows: s.rows,
                cols: s.cols,
                scheme: manifest.scheme,
                scales,
                data,
            });
        }
        Ok(FrozenModel {
            spec: manifest.spec,
            scheme: manifest.scheme,
            tensors,
            act_scale: manifest.act_scale,
            f32_acc: manifest.f32_acc,
            frozen_acc: manifest.frozen_acc,
            dataset: manifest.dataset,
            dataset_manifest_hash: manifest.dataset_manifest_hash,
        })
    }

    /// Write atomically to `path` (temp file + rename, like the checkpoint
    /// store).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tgtf.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            self.write_to(&mut w)?;
            w.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load from `path`.
    pub fn load(path: &Path) -> io::Result<Self> {
        // Same retry-once semantics as the TGDS/TGTS readers: transient
        // errors retry with seeded jittered backoff, and a corrupt buffer
        // is re-read once — injected faults never touch the file on disk,
        // so the re-read recovers; genuine corruption fails again.
        const MAX_TRANSIENT_RETRIES: usize = 4;
        const BACKOFF_BASE_S: f64 = 0.002;
        let seed = torchgt_faults::installed().map(|s| s.seed).unwrap_or(0);
        let backoff_seed = seed ^ torchgt_faults::path_key(path);
        let mut transient_attempts = 0usize;
        let mut crc_reread_used = false;
        loop {
            match torchgt_faults::read_file(path).and_then(|b| Self::read_from(b.as_slice())) {
                Ok(model) => return Ok(model),
                Err(e)
                    if torchgt_faults::is_transient(&e)
                        && transient_attempts < MAX_TRANSIENT_RETRIES =>
                {
                    transient_attempts += 1;
                    let wait =
                        torchgt_faults::backoff_s(backoff_seed, BACKOFF_BASE_S, transient_attempts);
                    if wait > 0.0 {
                        std::thread::sleep(std::time::Duration::from_secs_f64(wait));
                    }
                }
                Err(e) if torchgt_faults::is_corruption(&e) && !crc_reread_used => {
                    crc_reread_used = true;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> FrozenModel {
        let spec = ModelSpec {
            kind: "gt".to_string(),
            feat_dim: 4,
            hidden: 8,
            layers: 1,
            heads: 2,
            ffn_mult: 4,
            out_dim: 3,
            pe_dim: 2,
            max_degree: 64,
            max_spd: 8,
            seed: 42,
        };
        let src: Vec<f32> = (0..24).map(|i| i as f32 * 0.125 - 1.5).collect();
        FrozenModel {
            spec,
            scheme: QuantScheme::Int8,
            tensors: vec![
                QuantTensor::quantize(&src, 4, 6, QuantScheme::Int8),
                QuantTensor::quantize(&src[..8], 1, 8, QuantScheme::Int8),
            ],
            act_scale: 0.02,
            f32_acc: 0.9,
            frozen_acc: 0.895,
            dataset: Some(DatasetRef { kind: "arxiv".into(), scale: 0.002, seed: 7 }),
            dataset_manifest_hash: Some("tgds-0123456789abcdef".into()),
        }
    }

    /// Build the byte stream a version-1 writer produced: same framing,
    /// manifest without the dataset_manifest_hash field.
    fn to_v1_bytes(m: &FrozenModel) -> Vec<u8> {
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        // Reuse the v2 payload; re-frame with a v1 manifest.
        let manifest_len = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let payload = buf[20 + manifest_len..].to_vec();
        let manifest = FrozenManifestV1 {
            format_version: FORMAT_VERSION_V1,
            spec: m.spec.clone(),
            scheme: m.scheme,
            act_scale: m.act_scale,
            f32_acc: m.f32_acc,
            frozen_acc: m.frozen_acc,
            dataset: m.dataset.clone(),
            shapes: m
                .tensors
                .iter()
                .map(|t| QuantShape { rows: t.rows, cols: t.cols })
                .collect(),
            payload_len: payload.len() as u64,
            payload_crc: crc32(&payload),
        };
        let manifest_bytes = torchgt_compat::json::to_string(&manifest).unwrap().into_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION_V1.to_le_bytes());
        out.extend_from_slice(&(manifest_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&manifest_bytes).to_le_bytes());
        out.extend_from_slice(&manifest_bytes);
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn version_1_files_remain_readable() {
        let m = fixture();
        let back = FrozenModel::read_from(to_v1_bytes(&m).as_slice()).unwrap();
        assert_eq!(back.spec, m.spec);
        assert_eq!(back.tensors, m.tensors);
        assert_eq!(back.dataset, m.dataset);
        assert!(
            back.dataset_manifest_hash.is_none(),
            "v1 files predate the dataset manifest hash"
        );
    }

    #[test]
    fn v1_corruption_is_still_detected() {
        let m = fixture();
        let buf = to_v1_bytes(&m);
        let original = FrozenModel::read_from(&buf[..]).unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            if let Ok(decoded) = FrozenModel::read_from(&bad[..]) {
                assert_ne!(decoded, original, "v1 byte {i}: corruption silently ignored");
            }
        }
    }

    #[test]
    fn round_trips_bit_exact() {
        let m = fixture();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        let back = FrozenModel::read_from(&buf[..]).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let m = fixture();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        let original = FrozenModel::read_from(&buf[..]).unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            // Either the reader rejects the flip, or (flips inside JSON
            // numbers can survive as different valid numbers) the decoded
            // value differs — silent identical decode is the only failure.
            if let Ok(decoded) = FrozenModel::read_from(&bad[..]) {
                assert_ne!(decoded, original, "byte {i}: corruption silently ignored");
            }
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let m = fixture();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        assert!(FrozenModel::read_from(&buf[..buf.len() - 1]).is_err());
        let mut long = buf.clone();
        long.push(0);
        assert!(FrozenModel::read_from(&long[..]).is_err());
    }

    #[test]
    fn future_version_is_rejected() {
        let m = fixture();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        buf[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(FrozenModel::read_from(&buf[..]).is_err());
    }

    #[test]
    fn spec_builds_both_architectures() {
        let mut spec = fixture().spec;
        assert_eq!(spec.build().unwrap().name(), "GT");
        spec.kind = "graphormer".into();
        assert!(spec.build().unwrap().name().starts_with("GPH"));
        spec.kind = "mystery".into();
        assert!(spec.build().is_err());
    }
}
