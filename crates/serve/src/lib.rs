//! # torchgt-serve
//!
//! The inference serving layer: everything between "training converged" and
//! "answer a user's query in milliseconds".
//!
//! * [`quant`] — per-row symmetric int8/int16 post-training quantization
//!   with an integer dot-product fast path (scalar + AVX2);
//! * [`frozen`] — the versioned, CRC-guarded `TGTF` deployable artifact
//!   ([`FrozenModel`]), ~12x smaller than the `TGTS` training snapshot it
//!   is frozen from;
//! * [`freeze`] — the calibration pass and accuracy-drop gate
//!   ([`Freezable::freeze`] rejects a freeze whose top-1 accuracy drops
//!   more than the configured tolerance vs the f32 reference);
//! * [`exec`] — [`FrozenExecutor`], a forward-only engine that dequantizes
//!   into a [`torchgt_tensor::Workspace`] arena, routes through the SIMD
//!   kernel backends, and runs the classifier head in int8;
//! * [`batch`] — per-query ego-subgraph extraction and block-diagonal
//!   micro-batch packing over [`torchgt_graph::pack`];
//! * [`server`] — [`ServeLoop`], a bounded-queue request loop that
//!   micro-batches concurrent queries under a latency budget and reports
//!   p50/p99 latency, queue depth, and throughput through torchgt-obs;
//! * [`zipf`] — the seeded Zipf sampler the load-generator bench drives
//!   traffic with.

pub mod batch;
pub mod exec;
pub mod freeze;
pub mod frozen;
pub mod quant;
pub mod server;
pub mod zipf;

pub use batch::{ego_subgraph, PackedQueryBatch};
pub use exec::FrozenExecutor;
pub use freeze::{CalibSet, Freezable, FreezeError, FreezeOptions};
pub use frozen::{DatasetRef, FrozenModel, ModelSpec};
pub use quant::{QuantScheme, QuantTensor};
pub use server::{
    Overloaded, Prediction, Query, ServeConfig, ServeLoop, ServeReply, ServeStats, ShedReason,
    ShutdownHandle,
};
pub use zipf::Zipf;
