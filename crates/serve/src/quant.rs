//! Post-training weight quantization.
//!
//! Weights are quantized **per row** with a symmetric scheme: each row gets
//! one f32 scale `s = maxabs(row) / Q_MAX` and stores `round(x / s)` clamped
//! to the integer range. Symmetric quantization keeps zero exactly
//! representable (bias rows and ReLU-sparse tensors stay exact at zero) and
//! dequantization is a single multiply. Per-row granularity matters because
//! a Linear stores `w` as `[in, out]`: a row is one input feature's fan-out,
//! and feature magnitudes vary far more across rows than within one.
//!
//! The int8 matmul fast path wants per-*output* scales instead, so callers
//! quantize a transposed `[out, in]` copy when they need `dot_q8` (see
//! [`crate::exec`]).

torchgt_compat::json_enum! {
    /// Quantized integer width. `Int8` is the deployment default; `Int16`
    /// is the conservative fallback when the int8 accuracy gate fails.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum QuantScheme {
        Int8,
        Int16,
    }
}

impl QuantScheme {
    /// Largest representable magnitude (127 or 32767).
    pub fn q_max(self) -> f32 {
        match self {
            QuantScheme::Int8 => i8::MAX as f32,
            QuantScheme::Int16 => i16::MAX as f32,
        }
    }

    /// Bytes per quantized element.
    pub fn elem_bytes(self) -> usize {
        match self {
            QuantScheme::Int8 => 1,
            QuantScheme::Int16 => 2,
        }
    }
}

/// Integer payload of a quantized tensor.
#[derive(Clone, Debug, PartialEq)]
pub enum QuantData {
    I8(Vec<i8>),
    I16(Vec<i16>),
}

impl QuantData {
    pub fn len(&self) -> usize {
        match self {
            QuantData::I8(v) => v.len(),
            QuantData::I16(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A row-major quantized tensor: `rows` scales plus `rows * cols` integers.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantTensor {
    pub rows: usize,
    pub cols: usize,
    pub scheme: QuantScheme,
    /// One dequantization scale per row.
    pub scales: Vec<f32>,
    pub data: QuantData,
}

impl QuantTensor {
    /// Quantize a row-major f32 buffer. An all-zero row gets scale 1.0 so
    /// dequantization stays exact and division never sees zero.
    pub fn quantize(src: &[f32], rows: usize, cols: usize, scheme: QuantScheme) -> QuantTensor {
        assert_eq!(src.len(), rows * cols, "quantize: shape/data mismatch");
        let q_max = scheme.q_max();
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let maxabs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            scales.push(if maxabs > 0.0 { maxabs / q_max } else { 1.0 });
        }
        let data = match scheme {
            QuantScheme::Int8 => {
                let mut q = Vec::with_capacity(src.len());
                for r in 0..rows {
                    let inv = 1.0 / scales[r];
                    for &x in &src[r * cols..(r + 1) * cols] {
                        q.push((x * inv).round().clamp(-q_max, q_max) as i8);
                    }
                }
                QuantData::I8(q)
            }
            QuantScheme::Int16 => {
                let mut q = Vec::with_capacity(src.len());
                for r in 0..rows {
                    let inv = 1.0 / scales[r];
                    for &x in &src[r * cols..(r + 1) * cols] {
                        q.push((x * inv).round().clamp(-q_max, q_max) as i16);
                    }
                }
                QuantData::I16(q)
            }
        };
        QuantTensor { rows, cols, scheme, scales, data }
    }

    /// Dequantize into a caller-provided buffer (length `rows * cols`).
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.rows * self.cols, "dequantize: shape mismatch");
        match &self.data {
            QuantData::I8(q) => {
                for r in 0..self.rows {
                    let s = self.scales[r];
                    let (src, dst) = (
                        &q[r * self.cols..(r + 1) * self.cols],
                        &mut out[r * self.cols..(r + 1) * self.cols],
                    );
                    for (o, &v) in dst.iter_mut().zip(src) {
                        *o = v as f32 * s;
                    }
                }
            }
            QuantData::I16(q) => {
                for r in 0..self.rows {
                    let s = self.scales[r];
                    let (src, dst) = (
                        &q[r * self.cols..(r + 1) * self.cols],
                        &mut out[r * self.cols..(r + 1) * self.cols],
                    );
                    for (o, &v) in dst.iter_mut().zip(src) {
                        *o = v as f32 * s;
                    }
                }
            }
        }
    }

    /// Worst-case absolute round-trip error for row `r`: half a quantization
    /// step.
    pub fn row_error_bound(&self, r: usize) -> f32 {
        0.5 * self.scales[r]
    }
}

/// Integer dot product of two i8 slices with i32 accumulation.
///
/// `127 * 127 * len` stays far inside i32 for every hidden size this repo
/// runs (overflow needs len > 133k), so the accumulator is exact — which
/// makes the AVX2 path bit-identical to this scalar one by construction.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if a.len() >= 16 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence was just verified at runtime.
            return unsafe { dot_i8_avx2(a, b) };
        }
    }
    dot_i8_scalar(a, b)
}

/// Reference scalar implementation (also the tail path for AVX2).
#[inline]
pub fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// AVX2 i8 dot: widen 16 lanes to i16, `madd` into 8 i32 lanes, reduce.
/// Integer arithmetic is associative, so lane order cannot change the
/// result — no ULP bound needed, the parity test asserts equality.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    #![allow(unsafe_op_in_unsafe_fn)]
    use std::arch::x86_64::*;
    let n = a.len();
    let chunks = n / 16;
    let mut acc = _mm256_setzero_si256();
    for i in 0..chunks {
        let pa = a.as_ptr().add(i * 16) as *const __m128i;
        let pb = b.as_ptr().add(i * 16) as *const __m128i;
        let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa));
        let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
    }
    // Horizontal i32 sum of the 8 accumulator lanes.
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256::<1>(acc);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_01_10_11>(s));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
    let mut total = _mm_cvtsi128_si32(s);
    total += dot_i8_scalar(&a[chunks * 16..], &b[chunks * 16..]);
    total
}

/// Quantize one f32 activation row against a fixed scale (used by the int8
/// head fast path). Returns the values clamped into i8 range.
pub fn quantize_row_i8(src: &[f32], scale: f32, out: &mut Vec<i8>) {
    out.clear();
    let inv = 1.0 / scale;
    let q_max = i8::MAX as f32;
    out.extend(src.iter().map(|&x| (x * inv).round().clamp(-q_max, q_max) as i8));
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_compat::rng::{Rng, RngCore, SeedableRng, SmallRng};

    #[test]
    fn round_trip_error_is_bounded_per_row() {
        let mut rng = SmallRng::seed_from_u64(11);
        let (rows, cols) = (7, 33);
        let src: Vec<f32> =
            (0..rows * cols).map(|_| (rng.gen::<f64>() as f32 - 0.5) * 4.0).collect();
        for scheme in [QuantScheme::Int8, QuantScheme::Int16] {
            let q = QuantTensor::quantize(&src, rows, cols, scheme);
            let mut back = vec![0.0f32; rows * cols];
            q.dequantize_into(&mut back);
            for r in 0..rows {
                let bound = q.row_error_bound(r) + 1e-6;
                for c in 0..cols {
                    let err = (src[r * cols + c] - back[r * cols + c]).abs();
                    assert!(err <= bound, "{scheme:?} row {r} col {c}: err {err} > {bound}");
                }
            }
        }
    }

    #[test]
    fn zero_rows_round_trip_exactly() {
        let src = vec![0.0f32; 12];
        let q = QuantTensor::quantize(&src, 3, 4, QuantScheme::Int8);
        assert!(q.scales.iter().all(|&s| s == 1.0));
        let mut back = vec![1.0f32; 12];
        q.dequantize_into(&mut back);
        assert!(back.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn int16_is_tighter_than_int8() {
        let mut rng = SmallRng::seed_from_u64(5);
        let src: Vec<f32> = (0..256).map(|_| rng.gen::<f64>() as f32 * 2.0 - 1.0).collect();
        let err = |scheme| {
            let q = QuantTensor::quantize(&src, 4, 64, scheme);
            let mut back = vec![0.0f32; 256];
            q.dequantize_into(&mut back);
            src.iter().zip(&back).map(|(a, b)| (a - b).abs() as f64).sum::<f64>()
        };
        assert!(err(QuantScheme::Int16) < err(QuantScheme::Int8) / 10.0);
    }

    #[test]
    fn dot_i8_matches_scalar_across_lengths() {
        let mut rng = SmallRng::seed_from_u64(99);
        for len in [0, 1, 15, 16, 17, 48, 100, 513] {
            let a: Vec<i8> = (0..len).map(|_| (rng.next_u64() % 255) as i8).collect();
            let b: Vec<i8> = (0..len).map(|_| (rng.next_u64() % 255) as i8).collect();
            assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b), "len {len}");
        }
    }

    #[test]
    fn dot_i8_handles_extremes() {
        let a = vec![i8::MIN; 64];
        let b = vec![i8::MAX; 64];
        assert_eq!(dot_i8(&a, &b), -128 * 127 * 64);
    }
}
