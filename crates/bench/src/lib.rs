//! Shared machinery for the experiment harnesses in `benches/`.
//!
//! Every table and figure of the TorchGT paper has a bench target that
//! regenerates its rows/series. Two measurement modes combine (see
//! DESIGN.md):
//!
//! * **functional** — real training of the Rust models on scaled synthetic
//!   stand-ins, producing real loss/accuracy numbers;
//! * **simulated-time** — layout statistics measured on the real masks are
//!   extrapolated to the paper-scale sequence lengths and priced by the
//!   `torchgt-perf` cost model on the published GPU specs.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use torchgt_obs::{MemoryRecorder, MetricsReport};
use torchgt_runtime::Trainer;
use torchgt_graph::partition::{cluster_order, partition};
use torchgt_graph::{DatasetKind, DatasetSpec, NodeDataset};
use torchgt_perf::{epoch_cost, GpuSpec, IterationCost, ModelShape, StepSpec};
use torchgt_runtime::{EpochStats, Method, NodeTrainer, TrainConfig};
use torchgt_sparse::{access_profile, dense_profile, reform, AccessProfile, LayoutKind, ReformConfig};
use torchgt_comm::ClusterTopology;
use torchgt_model::{Graphormer, GraphormerConfig, Gt, GtConfig, SequenceModel};

/// Print a standard experiment banner.
pub fn banner(name: &str, paper_ref: &str) {
    println!("\n================================================================");
    println!("{name}");
    println!("reproduces: {paper_ref}");
    println!("================================================================");
}

/// Write machine-readable rows next to the human-readable table.
pub fn dump_json(name: &str, value: &torchgt_compat::json::Value) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(s) = torchgt_compat::json::to_string_pretty(value) {
            let _ = fs::write(&path, s);
            println!("[rows written to {}]", path.display());
        }
    }
}

/// Measured memory-locality statistics of the three layouts on a scaled
/// stand-in graph — the *transferable* quantities extrapolated to paper
/// scale.
#[derive(Clone, Copy, Debug)]
pub struct LayoutRuns {
    /// Mean run length of the raw (unordered) topology pattern.
    pub raw_run: f64,
    /// Mean run length after cluster reordering.
    pub clustered_run: f64,
    /// Mean run length after Elastic Computation Reformation.
    pub reformed_run: f64,
    /// nnz inflation factor of the reformation (pattern padding).
    pub nnz_factor: f64,
}

/// Measure layout run lengths on a scaled instance of a dataset.
pub fn measure_layout_runs(kind: DatasetKind, scale: f64, seed: u64, k: usize, db: usize) -> LayoutRuns {
    let d = kind.generate_node(scale, seed);
    let raw = access_profile(&d.graph.with_self_loops());
    let assign = partition(&d.graph, k, seed);
    let order = cluster_order(&assign, k);
    let pg = d.graph.permute(&order.perm).with_self_loops();
    let clustered = access_profile(&pg);
    let reformed = reform(&pg, &order, ReformConfig { db, beta_thre: 5.0 * pg.sparsity() });
    let rp = reformed.profile();
    LayoutRuns {
        raw_run: raw.avg_run_len,
        clustered_run: clustered.avg_run_len,
        reformed_run: rp.avg_run_len,
        nnz_factor: rp.nnz as f64 / raw.nnz.max(1) as f64,
    }
}

/// Build a paper-scale access profile for a dataset: `seq_len` tokens whose
/// per-token degree matches the published statistics, with the measured run
/// length.
pub fn paper_profile(spec: &DatasetSpec, seq_len: usize, avg_run_len: f64, nnz_factor: f64) -> AccessProfile {
    let degree = (2.0 * spec.edges as f64 / spec.nodes as f64).max(2.0);
    let nnz = ((seq_len as f64 * degree) * nnz_factor) as usize;
    AccessProfile {
        nnz,
        runs: ((nnz as f64 / avg_run_len.max(1.0)) as usize).max(1),
        avg_run_len,
        isolated: 0,
        active_rows: seq_len,
    }
}

/// Simulated epoch seconds at paper scale for a method.
#[allow(clippy::too_many_arguments)]
pub fn sim_epoch(
    gpu: GpuSpec,
    topology: ClusterTopology,
    shape: ModelShape,
    layout: LayoutKind,
    seq_len: usize,
    profile: AccessProfile,
    tokens_total: usize,
) -> (IterationCost, f64) {
    let spec = StepSpec { gpu, topology, shape, layout, seq_len, profile };
    epoch_cost(&spec, tokens_total)
}

/// Map a method to its cost-model layout.
pub fn layout_of(method: Method) -> LayoutKind {
    match method {
        Method::GpRaw => LayoutKind::Dense,
        Method::GpFlash => LayoutKind::Flash,
        Method::GpSparse => LayoutKind::Topology,
        Method::TorchGt => LayoutKind::ClusterSparse,
    }
}

/// Profile appropriate for a method at paper scale.
pub fn method_profile(method: Method, spec: &DatasetSpec, seq_len: usize, runs: &LayoutRuns) -> AccessProfile {
    match method {
        Method::GpRaw | Method::GpFlash => dense_profile(seq_len),
        Method::GpSparse => paper_profile(spec, seq_len, runs.raw_run, 1.0),
        Method::TorchGt => paper_profile(spec, seq_len, runs.reformed_run, runs.nnz_factor),
    }
}

/// Which model to instantiate for functional runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchModel {
    /// Graphormer-slim (functional runs use a width-reduced variant; sim
    /// time uses the true Table IV shape).
    GraphormerSlim,
    /// Graphormer-large.
    GraphormerLarge,
    /// GT.
    Gt,
}

impl BenchModel {
    /// Table IV shape for the cost model.
    pub fn paper_shape(self) -> ModelShape {
        match self {
            BenchModel::GraphormerSlim => ModelShape::graphormer_slim(),
            BenchModel::GraphormerLarge => ModelShape::graphormer_large(),
            BenchModel::Gt => ModelShape::gt(),
        }
    }

    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            BenchModel::GraphormerSlim => "GPH_Slim",
            BenchModel::GraphormerLarge => "GPH_Large",
            BenchModel::Gt => "GT",
        }
    }

    /// Functional (scaled-down) model instance.
    pub fn build(self, feat_dim: usize, out_dim: usize, seed: u64) -> Box<dyn SequenceModel> {
        match self {
            BenchModel::GraphormerSlim => Box::new(Graphormer::new(
                GraphormerConfig {
                    feat_dim,
                    hidden: 32,
                    layers: 3,
                    heads: 4,
                    ffn_mult: 2,
                    out_dim,
                    max_degree: 64,
                    max_spd: 8,
                    dropout: 0.1,
                },
                seed,
            )),
            BenchModel::GraphormerLarge => Box::new(Graphormer::new(
                GraphormerConfig {
                    feat_dim,
                    hidden: 64,
                    layers: 4,
                    heads: 8,
                    ffn_mult: 2,
                    out_dim,
                    max_degree: 64,
                    max_spd: 8,
                    dropout: 0.1,
                },
                seed,
            )),
            BenchModel::Gt => Box::new(Gt::new(
                GtConfig {
                    feat_dim,
                    hidden: 32,
                    layers: 3,
                    heads: 4,
                    ffn_mult: 2,
                    out_dim,
                    pe_dim: 8,
                    dropout: 0.1,
                },
                seed,
            )),
        }
    }

    /// Functional shape (matches [`BenchModel::build`]).
    pub fn functional_shape(self) -> ModelShape {
        match self {
            BenchModel::GraphormerSlim => ModelShape { layers: 3, hidden: 32, heads: 4 },
            BenchModel::GraphormerLarge => ModelShape { layers: 4, hidden: 64, heads: 8 },
            BenchModel::Gt => ModelShape { layers: 3, hidden: 32, heads: 4 },
        }
    }
}

/// Run a short functional node-level training and return its epoch history.
pub fn functional_node_run(
    dataset: &NodeDataset,
    method: Method,
    model: BenchModel,
    seq_len: usize,
    epochs: usize,
    seed: u64,
) -> (Vec<EpochStats>, NodeTrainer) {
    let mut cfg = TrainConfig::new(method, seq_len, epochs);
    cfg.lr = 2e-3;
    cfg.seed = seed;
    cfg.interleave_period = 8;
    let m = model.build(dataset.feat_dim, dataset.num_classes, seed);
    let mut trainer = NodeTrainer::new(
        cfg,
        dataset,
        m,
        model.functional_shape(),
        GpuSpec::rtx3090(),
        ClusterTopology::rtx3090(1),
    );
    let stats = trainer.run();
    (stats, trainer)
}

/// Like [`functional_node_run`], but with an in-memory recorder attached:
/// returns the observability report alongside the epoch history, and dumps
/// it under `target/experiments/` so harness runs leave span timings,
/// all-to-all volume, and β_thre transition events next to their rows.
pub fn functional_node_run_observed(
    dataset: &NodeDataset,
    method: Method,
    model: BenchModel,
    seq_len: usize,
    epochs: usize,
    seed: u64,
    dump_name: &str,
) -> (Vec<EpochStats>, MetricsReport) {
    let mut cfg = TrainConfig::new(method, seq_len, epochs);
    cfg.lr = 2e-3;
    cfg.seed = seed;
    cfg.interleave_period = 8;
    let m = model.build(dataset.feat_dim, dataset.num_classes, seed);
    let mut trainer = NodeTrainer::new(
        cfg,
        dataset,
        m,
        model.functional_shape(),
        GpuSpec::rtx3090(),
        ClusterTopology::rtx3090(1),
    );
    let recorder = Arc::new(MemoryRecorder::default());
    trainer.attach_recorder(recorder.clone());
    let stats = Trainer::run(&mut trainer);
    let report = recorder.report();
    dump_metrics(dump_name, &report);
    (stats, report)
}

/// Write a metrics report under `target/experiments/<name>.metrics.json`.
pub fn dump_metrics(name: &str, report: &MetricsReport) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.metrics.json"));
        if fs::write(&path, report.to_json_string_pretty()).is_ok() {
            println!("[metrics written to {}]", path.display());
        }
    }
}

/// Default scaled stand-in sizes used across harnesses: small enough to run
/// in seconds, large enough to carry the structural statistics.
pub fn default_scale(kind: DatasetKind) -> f64 {
    let spec = kind.spec();
    // Target ~1.5-2.5K nodes.
    (2000.0 / spec.nodes as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_runs_improve_monotonically() {
        let runs = measure_layout_runs(DatasetKind::OgbnArxiv, 0.006, 1, 8, 16);
        assert!(runs.reformed_run > runs.raw_run);
        assert!(runs.nnz_factor > 0.5 && runs.nnz_factor < 4.0);
    }

    #[test]
    fn paper_profile_matches_degree() {
        let spec = DatasetKind::OgbnArxiv.spec();
        let p = paper_profile(&spec, 1 << 16, 8.0, 1.0);
        // arxiv 2E/N ≈ 13.8 per token.
        let per_token = p.nnz as f64 / (1 << 16) as f64;
        assert!((per_token - 13.8).abs() < 1.0);
    }

    #[test]
    fn default_scales_are_sane() {
        for kind in DatasetKind::node_level() {
            let s = default_scale(*kind);
            assert!(s > 0.0 && s <= 1.0);
        }
    }
}
