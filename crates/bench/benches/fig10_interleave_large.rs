//! Figure 10: convergence of the three attention algorithms on a large
//! graph (ogbn-arxiv-like) — Dual-interleaved (TorchGT), FlashAttention and
//! pure topology-sparse, for GPH_Slim and GT.
//!
//! Paper shape: interleaved converges fastest and highest; pure sparse
//! trails it; flash trails on accuracy.

use torchgt_bench::{banner, dump_json, functional_node_run, BenchModel};
use torchgt_graph::DatasetKind;
use torchgt_runtime::Method;

fn main() {
    banner("fig10_interleave_large", "Figure 10 — interleaved vs flash vs sparse (large graph)");
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.01, 31);
    let epochs = 8;
    let mut rows = Vec::new();
    for model in [BenchModel::GraphormerSlim, BenchModel::Gt] {
        println!("\n--- {} on ogbn-arxiv ---", model.label());
        println!(
            "{:>6} {:>14} {:>12} {:>12}",
            "epoch", "interleaved", "flash", "sparse"
        );
        let (inter, _) = functional_node_run(&dataset, Method::TorchGt, model, 400, epochs, 4);
        let (flash, _) = functional_node_run(&dataset, Method::GpFlash, model, 400, epochs, 4);
        let (sparse, _) = functional_node_run(&dataset, Method::GpSparse, model, 400, epochs, 4);
        for e in 0..epochs {
            println!(
                "{:>6} {:>14.4} {:>12.4} {:>12.4}",
                e, inter[e].test_acc, flash[e].test_acc, sparse[e].test_acc
            );
            rows.push(torchgt_compat::json!({
                "model": model.label(), "epoch": e,
                "interleaved": inter[e].test_acc,
                "flash": flash[e].test_acc,
                "sparse": sparse[e].test_acc,
            }));
        }
        let i_final = inter.last().unwrap().test_acc;
        let f_final = flash.last().unwrap().test_acc;
        let s_final = sparse.last().unwrap().test_acc;
        println!("final: interleaved {i_final:.4}, flash {f_final:.4}, sparse {s_final:.4}");
        assert!(
            i_final >= f_final.max(s_final) - 0.04,
            "interleaved must be competitive with the best"
        );
    }
    println!("\npaper shape check ✓ interleaved attention converges best");
    dump_json("fig10_interleave_large", &torchgt_compat::json!(rows));
}
