//! Serving past saturation: overload protection must degrade gracefully.
//!
//! The executor's per-batch cost is pinned by an injected stall from the
//! fault plane's serve domain, giving the loop a known service capacity.
//! Zipf clients then offer a sweep of loads ending at **2× the saturated
//! rate** with depth-based admission control armed. The gate: goodput
//! (answered queries per second) past saturation stays within 10% of the
//! pre-saturation plateau — shedding the excess instead of collapsing —
//! and every shed reply is issued in under a millisecond. Rows land in
//! `target/experiments/BENCH_overload.json` for the verify gate.

use std::time::Duration;
use torchgt::prelude::*;
use torchgt::serve::{freeze::with_dataset, DatasetRef, Query, ServeReply, Zipf};
use torchgt_bench::{banner, dump_json};
use torchgt_compat::sync::channel::{bounded, unbounded};

/// Injected per-batch executor stall, seconds: with `MAX_BATCH`-query
/// windows the loop's capacity is ≈ MAX_BATCH / STALL_S ≈ 2000 qps.
const STALL_S: f64 = 0.004;
const MAX_BATCH: usize = 8;
/// Micro-batch flush deadline.
const BUDGET_MS: u64 = 5;
/// Shed when the backlog behind a dequeued query exceeds this.
const WATERMARK: usize = 16;
/// Offered load at which the loop saturates (≈ capacity).
const SATURATION_QPS: f64 = 2000.0;
const QUERIES: usize = 1200;
const CLIENTS: usize = 2;
const ZIPF_S: f64 = 1.1;
/// Shed replies must be issued faster than this.
const SHED_REPLY_MS: f64 = 1.0;
/// Goodput past saturation must stay within this factor of the plateau.
const GOODPUT_FLOOR: f64 = 0.9;

struct OverloadRow {
    offered_qps: f64,
    goodput_qps: f64,
    stats: ServeStats,
}

/// Offer `QUERIES` Zipf queries at `qps` with admission control armed and
/// return the run's stats. Goodput is the loop's answered throughput.
fn drive(frozen: &FrozenModel, dataset: &NodeDataset, qps: f64, seed: u64) -> ServeStats {
    let cfg = ServeConfig {
        max_batch: MAX_BATCH,
        latency_budget: Duration::from_millis(BUDGET_MS),
        ctx_nodes: 32,
        shed_watermark: Some(WATERMARK),
        ..Default::default()
    };
    let mut serve_loop = ServeLoop::new(
        frozen,
        dataset.graph.clone(),
        dataset.features.clone(),
        cfg,
        torchgt::obs::noop(),
    )
    .expect("serve loop builds");
    let (tx, rx) = bounded::<Query>(64);
    let (reply_tx, reply_rx) = unbounded::<ServeReply>();
    let server = std::thread::spawn(move || serve_loop.run(rx));
    let num_nodes = dataset.graph.num_nodes();
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let tx = tx.clone();
        let reply_tx = reply_tx.clone();
        let n = QUERIES / CLIENTS + usize::from(c < QUERIES % CLIENTS);
        let pace = Duration::from_secs_f64(CLIENTS as f64 / qps);
        let mut zipf = Zipf::new(num_nodes, ZIPF_S, seed ^ (c as u64 + 1));
        clients.push(std::thread::spawn(move || {
            for _ in 0..n {
                let node = zipf.sample() as u32;
                if tx.send(Query::new(node, reply_tx.clone())).is_err() {
                    break;
                }
                std::thread::sleep(pace);
            }
        }));
    }
    drop(tx);
    drop(reply_tx);
    for c in clients {
        c.join().expect("client thread");
    }
    let stats = server.join().expect("serve loop");
    let (mut answered, mut shed) = (0u64, 0u64);
    while let Ok(reply) = reply_rx.recv() {
        if reply.is_shed() {
            shed += 1;
        } else {
            answered += 1;
        }
    }
    assert_eq!(answered, stats.served, "every accepted query must deliver a reply");
    assert_eq!(shed, stats.shed, "every shed query must deliver a typed rejection");
    assert_eq!(
        (answered + shed) as usize,
        QUERIES,
        "no query may vanish without a reply"
    );
    stats
}

fn main() {
    banner(
        "serve_overload",
        "admission-controlled serving past saturation (goodput + shed-latency gate)",
    );

    let seed = 7u64;
    let scale = 0.002;
    let dataset = DatasetKind::OgbnArxiv.generate_node(scale, seed);
    let mut trainer = TorchGtBuilder::new(Method::TorchGt)
        .seq_len(128)
        .epochs(2)
        .hidden(16)
        .layers(2)
        .heads(2)
        .seed(seed)
        .build_node(&dataset)
        .expect("valid configuration");
    for _ in 0..2 {
        trainer.train_epoch();
    }
    let calib = CalibSet::from_dataset(&dataset, 128, seed);
    let frozen = trainer.freeze(&calib).expect("int8 freeze passes the accuracy gate");
    let frozen = with_dataset(
        frozen,
        DatasetRef { kind: "arxiv".to_string(), scale, seed },
    );

    // Pin the executor's pace: every batch stalls STALL_S, so capacity is a
    // property of the configuration, not of the host machine.
    torchgt::faults::install(
        format!("seed={seed},serve.slow=1@{}ms", STALL_S * 1e3)
            .parse::<FaultSpec>()
            .expect("valid fault spec"),
    );

    println!(
        "\n{:>12} {:>12} {:>9} {:>10} {:>13} {:>13}",
        "offered qps", "goodput qps", "shed", "shed rate", "p99 ms (acc)", "shed max ms"
    );
    let mut rows = Vec::new();
    for qps in [0.5 * SATURATION_QPS, SATURATION_QPS, 2.0 * SATURATION_QPS] {
        let stats = drive(&frozen, &dataset, qps, seed);
        let goodput = stats.throughput_qps;
        let shed_rate = stats.shed as f64 / (stats.served + stats.shed) as f64;
        println!(
            "{:>12.0} {:>12.1} {:>9} {:>10.3} {:>13.3} {:>13.3}",
            qps, goodput, stats.shed, shed_rate, stats.p99_latency_ms, stats.shed_handling_ms_max
        );
        rows.push(OverloadRow { offered_qps: qps, goodput_qps: goodput, stats });
    }
    torchgt::faults::clear();

    let plateau = rows
        .iter()
        .map(|r| r.goodput_qps)
        .fold(0.0f64, f64::max);
    let overload = rows.last().expect("sweep ran");
    assert!(
        overload.stats.shed > 0,
        "2x saturation with watermark {WATERMARK} must shed some queries"
    );
    assert!(
        overload.goodput_qps >= GOODPUT_FLOOR * plateau,
        "goodput collapsed past saturation: {:.1} qps vs plateau {:.1} qps",
        overload.goodput_qps,
        plateau
    );
    for r in &rows {
        if r.stats.shed > 0 {
            assert!(
                r.stats.shed_handling_ms_max < SHED_REPLY_MS,
                "shed replies must be fast: max {:.3} ms at {} qps",
                r.stats.shed_handling_ms_max,
                r.offered_qps
            );
        }
    }

    let cases: Vec<_> = rows
        .iter()
        .map(|r| {
            torchgt_compat::json!({
                "offered_qps": r.offered_qps,
                "goodput_qps": r.goodput_qps,
                "served": r.stats.served,
                "shed": r.stats.shed,
                "shed_queue_full": r.stats.shed_queue_full,
                "shed_rate": r.stats.shed as f64 / (r.stats.served + r.stats.shed) as f64,
                "p99_ms_accepted": r.stats.p99_latency_ms,
                "shed_handling_ms_mean": r.stats.shed_handling_ms_mean,
                "shed_handling_ms_max": r.stats.shed_handling_ms_max,
                "max_queue_depth": r.stats.max_queue_depth,
            })
        })
        .collect();
    dump_json(
        "BENCH_overload",
        &torchgt_compat::json!({
            "stall_ms": STALL_S * 1e3,
            "watermark": WATERMARK,
            "saturation_qps": SATURATION_QPS,
            "goodput_floor": GOODPUT_FLOOR,
            "plateau_goodput_qps": plateau,
            "overload_goodput_qps": overload.goodput_qps,
            "cases": cases,
        }),
    );
    println!(
        "\ngoodput at 2x saturation {:.1} qps >= {GOODPUT_FLOOR} x plateau {:.1} qps ✓",
        overload.goodput_qps, plateau
    );
}
