//! SIMD backend speedup: per-kernel wall time under the scalar backend
//! versus every SIMD backend this CPU supports (AVX2, AVX-512).
//!
//! Each kernel runs on identical inputs under every backend; an f64 output
//! checksum is compared against the scalar run (within the parity harness's
//! documented tolerances) so a backend cannot "win" by computing the wrong
//! thing. Rows land in `target/experiments/BENCH_simd.json` for the
//! verify-script gate, which requires ≥2× on at least one matmul/softmax
//! kernel whenever a SIMD backend is available.

use std::time::Instant;
use torchgt_bench::{banner, dump_json};
use torchgt_graph::generators::barabasi_albert;
use torchgt_sparse::{sub_block_attention_with, BlockCsr};
use torchgt_tensor::backend::{self, Backend};
use torchgt_tensor::{init, ops, Tensor, Workspace};

const S: usize = 256;
const D: usize = 128;
const ITERS: usize = 60;

struct Kernel {
    name: &'static str,
    /// Runs the kernel once under `be` and returns an output checksum.
    run: Box<dyn Fn(Backend) -> f64>,
    /// Relative checksum tolerance vs scalar (0.0 = bit-exact kernels).
    tol: f64,
}

fn checksum(t: &Tensor) -> f64 {
    t.data().iter().map(|&x| x as f64).sum()
}

fn main() {
    banner("simd_speedup", "kernel backend dispatch — scalar vs SIMD wall time");
    let a = init::normal(S, D, 0.0, 0.5, 21);
    let b = init::normal(D, D, 0.0, 0.5, 22);
    let bt = init::normal(S, D, 0.0, 0.5, 23);
    let gamma = init::normal(1, D, 1.0, 0.1, 24);
    let beta = init::normal(1, D, 0.0, 0.1, 25);
    let q = init::normal(S, D, 0.0, 0.5, 26);
    let k = init::normal(S, D, 0.0, 0.5, 27);
    let v = init::normal(S, D, 0.0, 0.5, 28);
    let mask = barabasi_albert(S, 8, 7).with_self_loops();
    let blocks = BlockCsr::from_mask(&mask, 8);

    let kernels: Vec<Kernel> = vec![
        Kernel {
            name: "matmul_into",
            tol: 0.0,
            run: {
                let (a, b) = (a.clone(), b.clone());
                Box::new(move |be| {
                    let mut out = Tensor::zeros(a.rows(), b.cols());
                    ops::matmul_into_with(be, &a, &b, &mut out);
                    checksum(&out)
                })
            },
        },
        Kernel {
            name: "matmul_bt_into",
            tol: 1e-5,
            run: {
                let (a, bt) = (a.clone(), bt.clone());
                Box::new(move |be| {
                    let mut out = Tensor::zeros(a.rows(), bt.rows());
                    ops::matmul_bt_into_with(be, &a, &bt, &mut out);
                    checksum(&out)
                })
            },
        },
        Kernel {
            name: "matmul_at_into",
            tol: 0.0,
            run: {
                let (a, bt) = (a.clone(), bt.clone());
                Box::new(move |be| {
                    let mut out = Tensor::zeros(a.cols(), bt.cols());
                    ops::matmul_at_into_with(be, &a, &bt, &mut out);
                    checksum(&out)
                })
            },
        },
        Kernel {
            name: "row_softmax_into",
            tol: 1e-5,
            run: {
                let a = a.clone();
                Box::new(move |be| {
                    let mut out = Tensor::zeros(a.rows(), a.cols());
                    ops::row_softmax_into_with(be, &a, &mut out);
                    checksum(&out)
                })
            },
        },
        Kernel {
            name: "gelu_into",
            tol: 1e-5,
            run: {
                let a = a.clone();
                Box::new(move |be| {
                    let mut out = Tensor::zeros(a.rows(), a.cols());
                    ops::gelu_into_with(be, &a, &mut out);
                    checksum(&out)
                })
            },
        },
        Kernel {
            name: "layer_norm_into",
            tol: 1e-4,
            run: {
                let (a, gamma, beta) = (a.clone(), gamma.clone(), beta.clone());
                Box::new(move |be| {
                    let mut out = Tensor::zeros(a.rows(), a.cols());
                    ops::layer_norm_into_with(be, &a, &gamma, &beta, 1e-5, &mut out);
                    checksum(&out)
                })
            },
        },
        Kernel {
            name: "sub_block_attention",
            tol: 1e-5,
            run: {
                let (q, k, v, blocks) = (q.clone(), k.clone(), v.clone(), blocks.clone());
                Box::new(move |be| {
                    let mut ws = Workspace::new();
                    let out = sub_block_attention_with(be, &q, &k, &v, 4, &blocks, &mut ws);
                    checksum(&out)
                })
            },
        },
    ];

    let backends = backend::supported();
    println!(
        "detected best: {}   supported: {:?}\n",
        backend::detect_best().name(),
        backends.iter().map(|b| b.name()).collect::<Vec<_>>()
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>9}",
        "kernel", "scalar ms", "backend", "ms/iter", "speedup"
    );

    let mut rows = Vec::new();
    for kernel in &kernels {
        // Time one backend: warm-up iteration, then ITERS timed runs.
        let time = |be: Backend| -> (f64, f64) {
            let sum = (kernel.run)(be);
            let t0 = Instant::now();
            let mut acc = 0.0;
            for _ in 0..ITERS {
                acc += (kernel.run)(be);
            }
            assert!(acc.is_finite(), "{}: non-finite checksum under {}", kernel.name, be.name());
            (t0.elapsed().as_secs_f64() / ITERS as f64, sum)
        };
        let (scalar_s, scalar_sum) = time(Backend::Scalar);
        for &be in &backends {
            if be == Backend::Scalar {
                continue;
            }
            let (be_s, be_sum) = time(be);
            let drift = (be_sum - scalar_sum).abs() / scalar_sum.abs().max(1.0);
            assert!(
                drift <= kernel.tol.max(f64::EPSILON * 64.0),
                "{}: checksum drift {drift:e} under {} (scalar {scalar_sum} vs {be_sum})",
                kernel.name,
                be.name()
            );
            let speedup = scalar_s / be_s;
            println!(
                "{:<22} {:>12.4} {:>12} {:>12.4} {:>8.2}x",
                kernel.name,
                scalar_s * 1e3,
                be.name(),
                be_s * 1e3,
                speedup
            );
            rows.push(torchgt_compat::json!({
                "kernel": kernel.name,
                "backend": be.name(),
                "scalar_s_per_iter": scalar_s,
                "simd_s_per_iter": be_s,
                "speedup": speedup,
                "checksum_rel_drift": drift,
            }));
        }
        if backends.len() == 1 {
            println!(
                "{:<22} {:>12.4}   (no SIMD backend on this CPU)",
                kernel.name,
                scalar_s * 1e3
            );
        }
    }

    println!("\nchecksums agree with scalar within parity tolerances ✓");
    dump_json(
        "BENCH_simd",
        &torchgt_compat::json!({
            "detected_best": backend::detect_best().name(),
            "cases": rows,
        }),
    );
}
