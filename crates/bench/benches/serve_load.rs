//! Serving under load: the quantized inference path driven by concurrent
//! Zipf traffic, with an asserted latency SLO.
//!
//! A small Graphormer is trained on the arxiv stand-in, frozen to int8
//! through the accuracy-gated calibration pass, and served through the
//! micro-batching [`torchgt::serve::ServeLoop`] while client threads offer
//! Zipf-distributed queries at a sweep of QPS levels. Each level reports
//! p50/p99 latency, achieved throughput, batch occupancy, and peak queue
//! depth; the **stated-QPS row asserts the SLO** (p99 within the serving
//! budget), so a regression in the quantized executor, the packer, or the
//! micro-batcher fails the bench rather than just reshaping a curve.
//! Rows land in `target/experiments/BENCH_serve.json` for the verify gate.

use std::time::Duration;
use torchgt::prelude::*;
use torchgt::serve::{freeze::with_dataset, DatasetRef, Query, ServeReply, Zipf};
use torchgt_bench::{banner, dump_json};
use torchgt_compat::sync::channel::{bounded, unbounded};

/// The offered load the SLO is asserted at.
const STATED_QPS: f64 = 500.0;
/// p99 end-to-end latency bound at the stated QPS: the micro-batch latency
/// budget plus an equal execution allowance.
const SLO_MS: f64 = 2.0 * BUDGET_MS as f64;
/// Micro-batch flush deadline.
const BUDGET_MS: u64 = 25;
const QUERIES: usize = 256;
const CLIENTS: usize = 2;
const ZIPF_S: f64 = 1.1;

struct LoadRow {
    offered_qps: f64,
    stats: ServeStats,
    slo_met: bool,
}

/// Offer `QUERIES` Zipf queries at `qps` from `CLIENTS` threads and collect
/// the serve loop's stats.
fn drive(frozen: &FrozenModel, dataset: &NodeDataset, qps: f64, seed: u64) -> ServeStats {
    let cfg = ServeConfig {
        max_batch: 8,
        latency_budget: Duration::from_millis(BUDGET_MS),
        ctx_nodes: 32,
        ..Default::default()
    };
    let mut serve_loop = ServeLoop::new(
        frozen,
        dataset.graph.clone(),
        dataset.features.clone(),
        cfg,
        torchgt::obs::noop(),
    )
    .expect("serve loop builds");
    let (tx, rx) = bounded::<Query>(64);
    let (reply_tx, reply_rx) = unbounded::<ServeReply>();
    let server = std::thread::spawn(move || serve_loop.run(rx));
    let num_nodes = dataset.graph.num_nodes();
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let tx = tx.clone();
        let reply_tx = reply_tx.clone();
        let n = QUERIES / CLIENTS + usize::from(c < QUERIES % CLIENTS);
        let pace = Duration::from_secs_f64(CLIENTS as f64 / qps);
        let mut zipf = Zipf::new(num_nodes, ZIPF_S, seed ^ (c as u64 + 1));
        clients.push(std::thread::spawn(move || {
            for _ in 0..n {
                let node = zipf.sample() as u32;
                if tx.send(Query::new(node, reply_tx.clone())).is_err() {
                    break;
                }
                std::thread::sleep(pace);
            }
        }));
    }
    drop(tx);
    drop(reply_tx);
    for c in clients {
        c.join().expect("client thread");
    }
    let stats = server.join().expect("serve loop");
    let answered = {
        let mut n = 0u64;
        while let Ok(reply) = reply_rx.recv() {
            reply.prediction().expect("no admission control configured");
            n += 1;
        }
        n
    };
    assert_eq!(
        answered, stats.served,
        "every served query must deliver a reply"
    );
    assert_eq!(stats.served as usize, QUERIES, "no query may be dropped");
    stats
}

fn main() {
    banner(
        "serve_load",
        "quantized serving under concurrent Zipf traffic (p99 SLO gate)",
    );

    let seed = 7u64;
    let scale = 0.002;
    let dataset = DatasetKind::OgbnArxiv.generate_node(scale, seed);
    let mut trainer = TorchGtBuilder::new(Method::TorchGt)
        .seq_len(128)
        .epochs(2)
        .hidden(16)
        .layers(2)
        .heads(2)
        .seed(seed)
        .build_node(&dataset)
        .expect("valid configuration");
    for _ in 0..2 {
        trainer.train_epoch();
    }
    let calib = CalibSet::from_dataset(&dataset, 128, seed);
    let frozen = trainer.freeze(&calib).expect("int8 freeze passes the accuracy gate");
    let frozen = with_dataset(
        frozen,
        DatasetRef { kind: "arxiv".to_string(), scale, seed },
    );
    println!(
        "frozen {} int8 tensors: f32 acc {:.4} -> quantized acc {:.4} (drop {:.4})",
        frozen.tensors.len(),
        frozen.f32_acc,
        frozen.frozen_acc,
        frozen.f32_acc - frozen.frozen_acc
    );

    println!(
        "\n{:>12} {:>9} {:>9} {:>9} {:>11} {:>9} {:>7}",
        "offered qps", "p50 ms", "p99 ms", "tput qps", "queue depth", "batch", "SLO"
    );
    let mut rows = Vec::new();
    for qps in [200.0, STATED_QPS, 1000.0] {
        let stats = drive(&frozen, &dataset, qps, seed);
        // The SLO binds only at (and below) the stated load; faster offered
        // rates are reported for the curve.
        let slo_met = stats.p99_latency_ms <= SLO_MS;
        println!(
            "{:>12.0} {:>9.3} {:>9.3} {:>9.1} {:>11} {:>9.2} {:>7}",
            qps,
            stats.p50_latency_ms,
            stats.p99_latency_ms,
            stats.throughput_qps,
            stats.max_queue_depth,
            stats.avg_batch_size,
            if slo_met { "ok" } else { "MISS" }
        );
        if qps <= STATED_QPS {
            assert!(
                slo_met,
                "p99 {:.3} ms exceeds the {SLO_MS} ms SLO at {qps} qps",
                stats.p99_latency_ms
            );
        }
        rows.push(LoadRow { offered_qps: qps, stats, slo_met });
    }

    let cases: Vec<_> = rows
        .iter()
        .map(|r| {
            torchgt_compat::json!({
                "offered_qps": r.offered_qps,
                "served": r.stats.served,
                "batches": r.stats.batches,
                "p50_ms": r.stats.p50_latency_ms,
                "p99_ms": r.stats.p99_latency_ms,
                "throughput_qps": r.stats.throughput_qps,
                "max_queue_depth": r.stats.max_queue_depth,
                "avg_batch_size": r.stats.avg_batch_size,
                "slo_ms": SLO_MS,
                "slo_met": r.slo_met,
            })
        })
        .collect();
    dump_json(
        "BENCH_serve",
        &torchgt_compat::json!({
            "stated_qps": STATED_QPS,
            "slo_ms": SLO_MS,
            "f32_acc": frozen.f32_acc,
            "frozen_acc": frozen.frozen_acc,
            "cases": cases,
        }),
    );
    println!("\np99 within {SLO_MS} ms at {STATED_QPS} qps ✓");
}
