//! Figure 11: convergence of interleaved vs full (dense) vs pure-sparse
//! attention on *small* graphs (ZINC-like molecules and molpcba-like),
//! where the raw models can still train with full attention.
//!
//! Paper shape: full attention converges best, pure sparse worst, and the
//! interleaved attention lands next to full at a fraction of the cost.

use torchgt_bench::{banner, dump_json, BenchModel};
use torchgt_comm::ClusterTopology;
use torchgt_graph::DatasetKind;
use torchgt_perf::GpuSpec;
use torchgt_runtime::{GraphTrainer, Method, TrainConfig};

fn run(
    data: &torchgt_graph::GraphDataset,
    method: Method,
    out_dim: usize,
    epochs: usize,
) -> Vec<f64> {
    let mut cfg = TrainConfig::new(method, 64, epochs);
    cfg.lr = 3e-3;
    cfg.interleave_period = 4;
    let model = BenchModel::Gt.build(data.feat_dim, out_dim, 11);
    let mut t = GraphTrainer::new(
        cfg,
        data,
        model,
        BenchModel::Gt.functional_shape(),
        GpuSpec::rtx3090(),
        ClusterTopology::rtx3090(1),
    );
    t.run().iter().map(|s| s.test_acc).collect()
}

fn main() {
    banner("fig11_interleave_small", "Figure 11 — interleaved vs full vs sparse (small graphs)");
    let epochs = 8;
    let mut rows = Vec::new();
    for (kind, out_dim, n, label) in [
        (DatasetKind::Zinc, 1usize, 60usize, "ZINC (−MAE, higher better)"),
        (DatasetKind::OgbgMolpcba, 6, 90, "molpcba-like (accuracy)"),
    ] {
        let data = kind.generate_graphs(n, 1.0, 17);
        println!("\n--- {label} ---");
        println!(
            "{:>6} {:>14} {:>12} {:>12}",
            "epoch", "interleaved", "full", "sparse"
        );
        let inter = run(&data, Method::TorchGt, out_dim, epochs);
        let full = run(&data, Method::GpRaw, out_dim, epochs);
        let sparse = run(&data, Method::GpSparse, out_dim, epochs);
        for e in 0..epochs {
            println!(
                "{:>6} {:>14.4} {:>12.4} {:>12.4}",
                e, inter[e], full[e], sparse[e]
            );
            rows.push(torchgt_compat::json!({
                "dataset": label, "epoch": e,
                "interleaved": inter[e], "full": full[e], "sparse": sparse[e],
            }));
        }
        // Compare the mean of the last three epochs — single-epoch test
        // scores on tiny graph sets are noisy.
        let tail_mean = |xs: &[f64]| xs[xs.len() - 3..].iter().sum::<f64>() / 3.0;
        let (i, f, s) = (tail_mean(&inter), tail_mean(&full), tail_mean(&sparse));
        println!("final (last-3 mean): interleaved {i:.4}, full {f:.4}, sparse {s:.4}");
        // Paper shape: interleaved ≈ full ≥ sparse (allow noise at toy
        // scale).
        assert!(i >= f - 0.15, "interleaved must track full attention: {i} vs {f}");
    }
    println!("\npaper shape check ✓ interleaved ≈ full attention on small graphs");
    dump_json("fig11_interleave_small", &torchgt_compat::json!(rows));
}
