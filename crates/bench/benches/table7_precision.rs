//! Table VII: throughput and accuracy of GP-FLASH vs TorchGT-BF16 vs
//! TorchGT-FP32 on ogbn-arxiv and Amazon (GPH_Slim).
//!
//! Paper shape: TorchGT-BF16 matches GP-FLASH's (degraded) accuracy — the
//! flash accuracy loss is precision, not the algorithm — while TorchGT-FP32
//! is the most accurate; BF16 is the fastest.

use torchgt_bench::{
    banner, dump_json, layout_of, measure_layout_runs, method_profile, sim_epoch, BenchModel,
};
use torchgt_comm::ClusterTopology;
use torchgt_graph::DatasetKind;
use torchgt_perf::GpuSpec;
use torchgt_runtime::{Method, NodeTrainer, TrainConfig};
use torchgt_tensor::Precision;

/// BF16 halves activation bytes and roughly doubles tensor-core math rate;
/// applied as a flat factor to the simulated epoch time.
const BF16_SPEED: f64 = 0.55;

fn main() {
    banner("table7_precision", "Table VII — BF16 vs FP32 accuracy/throughput (GPH_Slim)");
    let gpu = GpuSpec::rtx3090();
    let topo = ClusterTopology::rtx3090(1);
    let model = BenchModel::GraphormerSlim;
    let mut rows = Vec::new();
    for kind in [DatasetKind::OgbnArxiv, DatasetKind::Amazon] {
        let spec = kind.spec();
        let seq_len = if kind == DatasetKind::OgbnArxiv { 64usize << 10 } else { 256 << 10 };
        let scale = (1800.0 / spec.nodes as f64).min(1.0);
        let dataset = kind.generate_node(scale, 9);
        let runs = measure_layout_runs(kind, scale, 1, 8, 16);
        println!("\n--- {} ---", spec.name);
        println!(
            "{:<16} {:>14} {:>10}",
            "config", "t_epoch (s)", "test acc"
        );
        let mut accs = Vec::new();
        for (label, method, precision) in [
            ("GP-Flash", Method::GpFlash, Precision::Bf16),
            ("TorchGT-BF16", Method::TorchGt, Precision::Bf16),
            ("TorchGT-FP32", Method::TorchGt, Precision::Fp32),
        ] {
            // Simulated epoch time at paper scale.
            let shape = model.paper_shape();
            let profile = method_profile(method, &spec, seq_len, &runs);
            let (_, mut epoch_s) = sim_epoch(
                gpu,
                topo,
                shape,
                layout_of(method),
                seq_len,
                profile,
                spec.nodes as usize,
            );
            if precision == Precision::Bf16 {
                epoch_s *= BF16_SPEED;
            }
            // Functional accuracy at reduced scale.
            let mut cfg = TrainConfig::new(method, 400, 5);
            cfg.precision = precision;
            cfg.lr = 2e-3;
            cfg.seed = 5;
            let m = model.build(dataset.feat_dim, dataset.num_classes, 5);
            let mut trainer = NodeTrainer::new(
                cfg,
                &dataset,
                m,
                model.functional_shape(),
                gpu,
                topo,
            );
            let stats = trainer.run();
            let acc = stats.last().unwrap().test_acc;
            println!("{:<16} {:>14.3} {:>10.4}", label, epoch_s, acc);
            accs.push((label, acc, epoch_s));
            rows.push(torchgt_compat::json!({
                "dataset": spec.name, "config": label,
                "t_epoch_s": epoch_s, "test_acc": acc,
            }));
        }
        // Shape: FP32 ≥ BF16 variants; BF16 TorchGT ≈ flash accuracy.
        let flash = accs[0].1;
        let bf16 = accs[1].1;
        let fp32 = accs[2].1;
        assert!(fp32 >= bf16 - 0.02, "FP32 must not lose to BF16: {fp32} vs {bf16}");
        assert!(
            (bf16 - flash).abs() < 0.15,
            "TorchGT-BF16 should land near GP-FLASH accuracy: {bf16} vs {flash}"
        );
        assert!(accs[1].2 < accs[2].2, "BF16 must be faster than FP32");
    }
    println!("\npaper shape check ✓ precision explains the flash accuracy gap; FP32 wins accuracy");
    dump_json("table7_precision", &torchgt_compat::json!(rows));
}
