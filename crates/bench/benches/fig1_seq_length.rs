//! Figure 1: test accuracy of graph transformers as a function of the
//! training sequence length — Graphormer on an AMiner-CS-like graph and a
//! NodeFormer-style sampling transformer on a Pokec-like graph.
//!
//! Sequences are chunks of the node set, so *shorter* sequences sever more
//! cross-chunk edges and lose structural signal; with the number of
//! optimizer updates held fixed (as in the paper's converged runs), longer
//! sequences win. Paper shape: both models improve with S; the sampling
//! model gains the most (+12% on Pokec).

use torchgt_compat::rng::Rng;
use torchgt_bench::{banner, dump_json, BenchModel};
use torchgt_comm::ClusterTopology;
use torchgt_graph::{DatasetKind, NodeDataset};
use torchgt_model::SampledTransformer;
use torchgt_perf::{GpuSpec, ModelShape};
use torchgt_runtime::{Method, NodeTrainer, TrainConfig};

/// Drown the per-node feature signal in noise so the task *requires*
/// aggregating neighbours through attention — the regime where losing
/// cross-chunk edges (short sequences) costs accuracy, which is what
/// Figure 1 measures.
fn weaken_features(d: &mut NodeDataset, seed: u64) {
    let mut rng = torchgt_tensor::rng::rng(seed);
    for v in d.features.iter_mut() {
        *v = 0.25 * *v + rng.gen_range(-1.0..1.0f32);
    }
}

/// Train with a fixed total-update budget regardless of sequence length.
fn run_fixed_budget(trainer: &mut NodeTrainer, total_updates: usize) -> f64 {
    let per_epoch = trainer.num_sequences();
    let epochs = total_updates.div_ceil(per_epoch).max(1);
    let mut last = 0.0;
    for _ in 0..epochs {
        last = trainer.train_epoch().test_acc;
    }
    last
}

fn main() {
    banner("fig1_seq_length", "Figure 1 — test accuracy vs training sequence length");
    let mut rows = Vec::new();

    // --- Graphormer on AMiner-CS-like ------------------------------------
    let mut aminer = DatasetKind::AminerCS.generate_node(0.002, 51);
    weaken_features(&mut aminer, 99);
    println!(
        "\nGraphormer on AMiner-CS-like ({} nodes, {} classes), fixed 60-update budget:",
        aminer.num_nodes(),
        aminer.num_classes
    );
    println!("{:>8} {:>10}", "S", "test acc");
    let mut gph_accs = Vec::new();
    for seq_len in [64usize, 128, 256, 512] {
        let mut cfg = TrainConfig::new(Method::TorchGt, seq_len, 1);
        cfg.lr = 2e-3;
        cfg.seed = 3;
        let model = BenchModel::GraphormerSlim.build(aminer.feat_dim, aminer.num_classes, 3);
        let mut t = NodeTrainer::new(
            cfg,
            &aminer,
            model,
            BenchModel::GraphormerSlim.functional_shape(),
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let acc = run_fixed_budget(&mut t, 60);
        println!("{:>8} {:>10.4}", seq_len, acc);
        gph_accs.push(acc);
        rows.push(torchgt_compat::json!({
            "model": "Graphormer", "dataset": "AMiner-CS-like",
            "seq_len": seq_len, "test_acc": acc,
        }));
    }
    assert!(
        *gph_accs.last().unwrap() >= gph_accs[0] - 0.02,
        "longer sequences should help at a fixed budget: {gph_accs:?}"
    );

    // --- NodeFormer-like on Pokec-like -----------------------------------
    let mut pokec = DatasetKind::Pokec.generate_node(0.0008, 52);
    weaken_features(&mut pokec, 98);
    println!(
        "\nNodeFormer-like on Pokec-like ({} nodes, binary), fixed 60-update budget:",
        pokec.num_nodes()
    );
    println!("{:>8} {:>10}", "S", "test acc");
    let shape = ModelShape { layers: 2, hidden: 16, heads: 2 };
    let mut nf_accs = Vec::new();
    for seq_len in [64usize, 256, pokec.num_nodes()] {
        let mut cfg = TrainConfig::new(Method::GpSparse, seq_len, 1);
        cfg.lr = 2e-3;
        cfg.seed = 4;
        let model = Box::new(SampledTransformer::new(
            pokec.feat_dim,
            16,
            2,
            2,
            pokec.num_classes,
            4,
            9,
        ));
        let mut t = NodeTrainer::new(
            cfg,
            &pokec,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let acc = run_fixed_budget(&mut t, 60);
        println!("{:>8} {:>10.4}", seq_len, acc);
        nf_accs.push(acc);
        rows.push(torchgt_compat::json!({
            "model": "NodeFormer-like", "dataset": "Pokec-like",
            "seq_len": seq_len, "test_acc": acc,
        }));
    }
    assert!(
        *nf_accs.last().unwrap() >= nf_accs[0] - 0.02,
        "sampling model should gain with sequence length: {nf_accs:?}"
    );
    println!("\npaper shape check ✓ accuracy grows with training sequence length");
    dump_json("fig1_seq_length", &torchgt_compat::json!(rows));
}
