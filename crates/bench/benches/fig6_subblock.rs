//! Figure 6: hardware statistics of the sub-block indexing kernel vs the
//! sub-block dimension `d_b` — (a) warp occupancy + L1/L2 hit rates from
//! the cache simulator, (b) throughput normalised on `d_b = 2`.
//!
//! Paper shape: occupancy falls with `d_b`, cache hit rates rise, and the
//! optimal throughput sits at an interior value (`d_b = 16` on the 3090 at
//! hidden 64).

use torchgt_bench::{banner, dump_json};
use torchgt_perf::{simulate_subblock_kernel, tune_db, GpuSpec};

fn main() {
    banner("fig6_subblock", "Figure 6 — d_b sweep: occupancy, cache hit rates, throughput");
    let gpu = GpuSpec::rtx3090();
    let edges = 200_000;
    let d = 64;
    println!("RTX 3090, hidden {d}, {edges} packed edges\n");
    println!(
        "{:>6} {:>11} {:>9} {:>9} {:>17}",
        "d_b", "occupancy", "L1 hit", "L2 hit", "norm. throughput"
    );
    let base = simulate_subblock_kernel(&gpu, edges, 2, d).throughput;
    let mut rows = Vec::new();
    let mut profiles = Vec::new();
    for db in [2usize, 4, 8, 16, 32, 64, 128] {
        let p = simulate_subblock_kernel(&gpu, edges, db, d);
        println!(
            "{:>6} {:>10.2}% {:>8.1}% {:>8.1}% {:>17.2}",
            db,
            p.occupancy * 100.0,
            p.l1_hit * 100.0,
            p.l2_hit * 100.0,
            p.throughput / base
        );
        rows.push(torchgt_compat::json!({
            "db": db, "occupancy": p.occupancy, "l1_hit": p.l1_hit,
            "l2_hit": p.l2_hit, "throughput_norm": p.throughput / base,
        }));
        profiles.push(p);
    }
    // Shape checks.
    assert!(
        profiles.first().unwrap().occupancy > profiles.last().unwrap().occupancy,
        "occupancy must fall with d_b"
    );
    assert!(
        profiles.last().unwrap().l1_hit > profiles.first().unwrap().l1_hit,
        "L1 hit rate must rise with d_b"
    );
    let best = tune_db(&gpu, edges, d);
    println!("\nAuto Tuner pick: d_b = {best} (paper fits d_b = 16)");
    assert!((4..=64).contains(&best), "optimum must be interior");
    println!("paper shape check ✓ interior optimum from balance/locality trade-off");
    dump_json("fig6_subblock", &torchgt_compat::json!(rows));
}
