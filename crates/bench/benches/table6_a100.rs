//! Table VI: training time per epoch of GPH_Slim on one A100 server —
//! GP-FLASH vs TorchGT over MalNet, ogbn-papers100M, ogbn-products and
//! Amazon (sequence lengths as in Table V).
//!
//! Paper: TorchGT still wins on frontier hardware, by 1.9–4.2×.

use torchgt_bench::{banner, dump_json, measure_layout_runs, method_profile, sim_epoch, layout_of};
use torchgt_comm::ClusterTopology;
use torchgt_graph::DatasetKind;
use torchgt_perf::{GpuSpec, ModelShape};
use torchgt_runtime::Method;

fn main() {
    banner("table6_a100", "Table VI — GPH_Slim epoch time on one A100 server");
    let gpu = GpuSpec::a100();
    let topo = ClusterTopology::a100(1);
    let shape = ModelShape::graphormer_slim();
    println!(
        "{:<18} {:>8} {:>16} {:>16} {:>9}",
        "dataset", "S", "GP-Flash (s)", "TorchGT (s)", "speedup"
    );
    let mut rows = Vec::new();
    for kind in [
        DatasetKind::MalNet,
        DatasetKind::OgbnPapers100M,
        DatasetKind::OgbnProducts,
        DatasetKind::Amazon,
    ] {
        let spec = kind.spec();
        let s = 256usize << 10;
        // Tokens per epoch: all nodes (node-level) or graphs × avg nodes.
        let tokens = (spec.nodes * spec.num_graphs) as usize;
        let scale = (2000.0 / spec.nodes as f64).min(1.0);
        let runs = if spec.num_graphs > 1 {
            // Graph-level stand-ins use a call-graph-like instance.
            torchgt_bench::measure_layout_runs(DatasetKind::OgbnArxiv, 0.01, 1, 8, 16)
        } else {
            measure_layout_runs(kind, scale, 1, 8, 16)
        };
        let mut times = Vec::new();
        for method in [Method::GpFlash, Method::TorchGt] {
            let profile = method_profile(method, &spec, s, &runs);
            let (_, epoch) = sim_epoch(gpu, topo, shape, layout_of(method), s, profile, tokens);
            times.push(epoch);
        }
        let speedup = times[0] / times[1];
        println!(
            "{:<18} {:>8} {:>16.2} {:>16.2} {:>8.1}x",
            spec.name,
            format!("{}K", s >> 10),
            times[0],
            times[1],
            speedup
        );
        assert!(speedup > 1.5, "{}: TorchGT must win on A100 too", spec.name);
        rows.push(torchgt_compat::json!({
            "dataset": spec.name, "gp_flash_s": times[0], "torchgt_s": times[1],
            "speedup": speedup,
        }));
    }
    println!("\npaper reference speedups: 4.2× (MalNet), 2.1× (papers100M), 1.9× (products), 2.0× (Amazon)");
    println!("paper shape check ✓ TorchGT faster on every dataset on A100");
    dump_json("table6_a100", &torchgt_compat::json!(rows));
}
