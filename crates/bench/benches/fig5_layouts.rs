//! Figure 5: the three attention layouts — topology-induced, clustered
//! (after graph parallelism's reordering) and cluster-sparse (after Elastic
//! Computation Reformation) — visualised as an 8×8 cluster-density grid on
//! an ogbn-arxiv-scale graph.

use torchgt_bench::{banner, dump_json};
use torchgt_graph::partition::{cluster_order, partition};
use torchgt_graph::stats::cluster_matrix_stats;
use torchgt_graph::DatasetKind;
use torchgt_sparse::{access_profile, reform, ReformConfig};

fn heat(v: f64, max: f64) -> char {
    let t = if max > 0.0 { v / max } else { 0.0 };
    match (t * 5.0) as usize {
        0 => '·',
        1 => '░',
        2 => '▒',
        3 => '▓',
        _ => '█',
    }
}

fn print_grid(title: &str, counts: &[Vec<usize>]) {
    println!("\n{title}");
    let max = counts.iter().flatten().copied().max().unwrap_or(1) as f64;
    for row in counts {
        let line: String = row.iter().map(|&c| heat(c as f64, max)).collect();
        println!("  {line}");
    }
}

fn main() {
    banner("fig5_layouts", "Figure 5 — attention layouts (topology / clustered / cluster-sparse)");
    let k = 8;
    let d = DatasetKind::OgbnArxiv.generate_node(0.01, 13);
    let g = &d.graph;
    println!(
        "graph: {} nodes, {} arcs, sparsity {:.2e}",
        g.num_nodes(),
        g.num_arcs(),
        g.sparsity()
    );

    // (a) Raw topology layout: clusters = contiguous id blocks of the
    // *unordered* graph — edges scatter everywhere.
    let ids: Vec<u32> = (0..g.num_nodes() as u32).collect();
    let block = g.num_nodes().div_ceil(k);
    let naive_assign: Vec<u32> = ids.iter().map(|&v| (v as usize / block) as u32).collect();
    let naive_order = cluster_order(&naive_assign, k);
    let stats_a = cluster_matrix_stats(g, &naive_order);
    print_grid("(a) topology-induced (unordered ids)", &stats_a.counts);
    println!(
        "  diagonal fraction {:.1}%, avg run {:.2}",
        stats_a.diagonal_fraction * 100.0,
        access_profile(g).avg_run_len
    );

    // (b) Clustered layout after METIS-style reordering.
    let assign = partition(g, k, 1);
    let order = cluster_order(&assign, k);
    let pg = g.permute(&order.perm);
    let stats_b = cluster_matrix_stats(&pg, &order);
    print_grid("(b) clustered (after reordering)", &stats_b.counts);
    println!(
        "  diagonal fraction {:.1}%, avg run {:.2}",
        stats_b.diagonal_fraction * 100.0,
        access_profile(&pg).avg_run_len
    );

    // (c) Cluster-sparse layout after reformation.
    let reformed = reform(&pg, &order, ReformConfig { db: 16, beta_thre: 5.0 * pg.sparsity() });
    let stats_c = cluster_matrix_stats(&reformed.mask, &order);
    print_grid("(c) cluster-sparse (after reformation)", &stats_c.counts);
    let pc = reformed.profile();
    println!(
        "  diagonal fraction {:.1}%, avg run {:.2}, sub-blocks {}, recall {:.1}%",
        stats_c.diagonal_fraction * 100.0,
        pc.avg_run_len,
        reformed.stats.sub_blocks,
        reformed.stats.edge_recall * 100.0
    );

    assert!(stats_b.diagonal_fraction > stats_a.diagonal_fraction, "reordering concentrates edges");
    assert!(pc.avg_run_len > access_profile(&pg).avg_run_len, "reformation compacts access");
    println!("\npaper shape check ✓ diagonal concentration and run-length growth");
    dump_json(
        "fig5_layouts",
        &torchgt_compat::json!({
            "topology_diag": stats_a.diagonal_fraction,
            "clustered_diag": stats_b.diagonal_fraction,
            "cluster_sparse_run": pc.avg_run_len,
            "edge_recall": reformed.stats.edge_recall,
        }),
    );
}
