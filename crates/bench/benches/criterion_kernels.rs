//! Criterion micro-benchmarks of the real Rust kernels (actual CPU wall
//! time, not the GPU cost model): attention variants, the partitioner, the
//! reformation pass and the collectives.

use torchgt_compat::bench::{BenchmarkId, Criterion};
use torchgt_compat::{criterion_group, criterion_main};
use torchgt_comm::{hierarchical_all_to_all, DeviceGroup};
use torchgt_sparse::BlockCsr;
use torchgt_graph::generators::{clustered_power_law, ClusteredConfig};
use torchgt_graph::partition::{cluster_order, partition};
use torchgt_model::attention;
use torchgt_sparse::{reform, topology_mask, ReformConfig};
use torchgt_tensor::init;

fn attention_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_forward");
    group.sample_size(10);
    for &s in &[256usize, 1024] {
        let d = 64;
        let (g, _) = clustered_power_law(
            ClusteredConfig { n: s, communities: 8, avg_degree: 12.0, intra_fraction: 0.85 },
            1,
        );
        let mask = topology_mask(&g, true);
        let q = init::normal(s, d, 0.0, 1.0, 1);
        let k = init::normal(s, d, 0.0, 1.0, 2);
        let v = init::normal(s, d, 0.0, 1.0, 3);
        group.bench_with_input(BenchmarkId::new("dense", s), &s, |b, _| {
            b.iter(|| attention::dense(&q, &k, &v, 8, None).out)
        });
        group.bench_with_input(BenchmarkId::new("flash", s), &s, |b, _| {
            b.iter(|| attention::flash(&q, &k, &v, 8).out)
        });
        group.bench_with_input(BenchmarkId::new("sparse", s), &s, |b, _| {
            b.iter(|| attention::sparse(&q, &k, &v, 8, &mask, None).out)
        });
    }
    group.finish();
}

fn graph_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_pipeline");
    group.sample_size(10);
    let (g, _) = clustered_power_law(
        ClusteredConfig { n: 4000, communities: 8, avg_degree: 10.0, intra_fraction: 0.85 },
        2,
    );
    group.bench_function("partition_k8_4k_nodes", |b| b.iter(|| partition(&g, 8, 1)));
    let assign = partition(&g, 8, 1);
    let order = cluster_order(&assign, 8);
    let pg = g.permute(&order.perm);
    group.bench_function("reform_4k_nodes", |b| {
        b.iter(|| reform(&pg, &order, ReformConfig { db: 16, beta_thre: 5.0 * pg.sparsity() }))
    });
    group.finish();
}

fn collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);
    for &p in &[2usize, 4] {
        group.bench_with_input(BenchmarkId::new("all_to_all_64k_floats", p), &p, |b, &p| {
            b.iter(|| {
                let group = DeviceGroup::new(p);
                group.run(|comm| {
                    let chunks: Vec<Vec<f32>> =
                        (0..p).map(|_| vec![1.0f32; 65536 / p]).collect();
                    comm.all_to_all(chunks)
                })
            })
        });
    }
    group.finish();
}

fn block_formats(c: &mut Criterion) {
    // Gather V rows through the mask: element-wise CSR traversal vs the
    // tile-ordered BlockCsr traversal. On a CPU the bitmap-decode overhead
    // dominates (the win the paper measures is GPU memory *coalescing*,
    // which a scalar CPU loop cannot exhibit) — this bench documents that
    // traversal cost honestly; the storage win is asserted in unit tests
    // (`storage_is_compact_for_blocky_patterns`).
    let mut group = c.benchmark_group("block_formats");
    group.sample_size(10);
    let (g, _) = clustered_power_law(
        ClusteredConfig { n: 4000, communities: 8, avg_degree: 12.0, intra_fraction: 0.85 },
        4,
    );
    let assign = partition(&g, 8, 1);
    let order = cluster_order(&assign, 8);
    let pg = g.permute(&order.perm);
    let reformed =
        reform(&pg, &order, ReformConfig { db: 16, beta_thre: 5.0 * pg.sparsity() });
    let mask = reformed.mask;
    let blocked = BlockCsr::from_mask(&mask, 16);
    let d = 64usize;
    let values = init::normal(mask.num_nodes(), d, 0.0, 1.0, 9);
    group.bench_function("csr_gather", |b| {
        b.iter(|| {
            let mut acc = vec![0.0f32; d];
            for v in 0..mask.num_nodes() {
                for &u in mask.neighbors(v) {
                    let row = values.row(u as usize);
                    for (a, x) in acc.iter_mut().zip(row) {
                        *a += x;
                    }
                }
            }
            acc
        })
    });
    group.bench_function("block_csr_gather", |b| {
        b.iter(|| {
            let mut acc = vec![0.0f32; d];
            for br in 0..blocked.block_rows {
                for (_, cidx) in blocked.block_row_entries(br) {
                    let row = values.row(cidx as usize);
                    for (a, x) in acc.iter_mut().zip(row) {
                        *a += x;
                    }
                }
            }
            acc
        })
    });
    group.finish();
}

fn hierarchical_collective(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_all_to_all");
    group.sample_size(10);
    let p = 4usize;
    group.bench_function("flat_p4", |b| {
        b.iter(|| {
            let group = DeviceGroup::new(p);
            group.run(|comm| {
                let chunks: Vec<Vec<f32>> = (0..p).map(|_| vec![1.0f32; 4096]).collect();
                comm.all_to_all(chunks)
            })
        })
    });
    group.bench_function("two_phase_p4_g2", |b| {
        b.iter(|| {
            let group = DeviceGroup::new(p);
            group.run(|comm| {
                let chunks: Vec<Vec<f32>> = (0..p).map(|_| vec![1.0f32; 4096]).collect();
                hierarchical_all_to_all(&comm, chunks, 2)
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    attention_kernels,
    graph_pipeline,
    collectives,
    block_formats,
    hierarchical_collective
);
criterion_main!(benches);
