//! Table VIII: sensitivity of training time per epoch and test accuracy to
//! the transfer threshold β_thre on ogbn-arxiv, for GPH_Slim and GT, plus
//! the Auto Tuner ("TorchGT" column).
//!
//! Paper shape: larger β_thre ⇒ faster epochs but lower accuracy; the Auto
//! Tuner lands between the extremes (the paper suggests 5β_G as the sweet
//! spot).

use torchgt_bench::{banner, dump_json, BenchModel};
use torchgt_comm::ClusterTopology;
use torchgt_graph::DatasetKind;
use torchgt_perf::{iteration_cost, GpuSpec, StepSpec};
use torchgt_runtime::{Method, NodeTrainer, TrainConfig};
use torchgt_sparse::{AccessProfile, LayoutKind};

/// Extrapolate a measured mask profile to the paper's arxiv run (S = 64K)
/// and price one epoch on the RTX 3090: the run length and nnz inflation
/// carry the β_thre effect the paper's Table VIII times show.
fn paper_scale_epoch(trainer: &NodeTrainer, model: BenchModel) -> f64 {
    let measured = trainer.mean_profile();
    let s = 64usize << 10;
    // Per-token pattern size measured on the scaled masks (includes the β-
    // dependent sub-block padding), carried to the paper's S.
    let nnz_per_token =
        measured.nnz as f64 / measured.active_rows.max(1) as f64;
    let nnz = (s as f64 * nnz_per_token) as usize;
    let profile = AccessProfile {
        nnz,
        runs: ((nnz as f64 / measured.avg_run_len.max(1.0)) as usize).max(1),
        avg_run_len: measured.avg_run_len,
        isolated: 0,
        active_rows: s,
    };
    let spec = StepSpec {
        gpu: GpuSpec::rtx3090(),
        topology: ClusterTopology::rtx3090(1),
        shape: model.paper_shape(),
        layout: LayoutKind::ClusterSparse,
        seq_len: s,
        profile,
    };
    // One epoch of arxiv at S = 64K ≈ 3 iterations (169K nodes).
    iteration_cost(&spec).total() * 3.0
}

fn main() {
    banner("table8_beta_thre", "Table VIII — β_thre sensitivity on ogbn-arxiv");
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.01, 41);
    let beta_g = dataset.graph.sparsity();
    println!("β_G = {beta_g:.2e}\n");
    let epochs = 5;
    let mut rows = Vec::new();
    for model in [BenchModel::GraphormerSlim, BenchModel::Gt] {
        println!("--- {} ---", model.label());
        println!("{:<12} {:>16} {:>10}", "β_thre", "sim t_epoch (s)", "test acc");
        let mut sims = Vec::new();
        let mut accs = Vec::new();
        let mut configs: Vec<(String, Option<f64>)> = vec![
            ("β_G".into(), Some(beta_g)),
            ("1.5β_G".into(), Some(1.5 * beta_g)),
            ("5β_G".into(), Some(5.0 * beta_g)),
            ("7β_G".into(), Some(7.0 * beta_g)),
            ("10β_G".into(), Some(10.0 * beta_g)),
            ("TorchGT".into(), None), // Auto Tuner
        ];
        for (label, beta) in configs.drain(..) {
            let mut cfg = TrainConfig::new(Method::TorchGt, 400, epochs);
            cfg.beta_thre = beta;
            cfg.lr = 2e-3;
            cfg.seed = 3;
            let m = model.build(dataset.feat_dim, dataset.num_classes, 3);
            let mut trainer = NodeTrainer::new(
                cfg,
                &dataset,
                m,
                model.functional_shape(),
                GpuSpec::rtx3090(),
                ClusterTopology::rtx3090(1),
            );
            let stats = trainer.run();
            let sim = paper_scale_epoch(&trainer, model);
            let acc = stats.last().unwrap().test_acc;
            println!("{:<12} {:>16.6} {:>10.4}", label, sim, acc);
            if beta.is_some() {
                sims.push(sim);
                accs.push(acc);
            }
            rows.push(torchgt_compat::json!({
                "model": model.label(), "beta_thre": label,
                "sim_t_epoch_s": sim, "test_acc": acc,
            }));
        }
        // Shape: the fastest config is at the high-β end; accuracy at β_G is
        // ≥ accuracy at 10β_G (pattern loss costs quality).
        let min_sim_idx = sims
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(min_sim_idx >= 2, "speed should come from more transfer");
        assert!(
            accs[0] >= *accs.last().unwrap() - 0.05,
            "accuracy should not improve with maximal transfer: {:?}",
            accs
        );
        println!();
    }
    println!("paper shape check ✓ speed/accuracy trade-off along the β ladder");
    dump_json("table8_beta_thre", &torchgt_compat::json!(rows));
}
