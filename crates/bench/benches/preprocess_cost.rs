//! §IV-E: pre-processing cost vs model-convergence time.
//!
//! The paper reports partitioning/reordering overhead of 5.2 s vs 91.2 s of
//! training on ogbn-arxiv (5.4%) and 239.7 s vs 11 732 s on MalNet (2.0%).
//! Here we measure the same ratio on the scaled stand-ins: the pipeline's
//! wall-clock against the wall-clock of training to the epoch budget.

use torchgt_bench::{banner, dump_json, functional_node_run, BenchModel};
use torchgt_graph::DatasetKind;
use torchgt_runtime::Method;

fn main() {
    banner("preprocess_cost", "§IV-E — pre-processing cost vs training time");
    let mut rows = Vec::new();
    println!(
        "{:<20} {:>14} {:>14} {:>10}",
        "dataset", "preproc (s)", "training (s)", "share"
    );
    for (kind, scale, epochs) in [
        (DatasetKind::OgbnArxiv, 0.012, 8usize),
        (DatasetKind::OgbnProducts, 0.0012, 8), // MalNet-class workload size
    ] {
        let dataset = kind.generate_node(scale, 61);
        let (stats, trainer) =
            functional_node_run(&dataset, Method::TorchGt, BenchModel::GraphormerSlim, 400, epochs, 5);
        let train: f64 = stats.iter().map(|s| s.wall_seconds).sum();
        let prep = trainer.preprocess_seconds();
        let share = prep / (prep + train) * 100.0;
        println!(
            "{:<20} {:>14.3} {:>14.3} {:>9.1}%",
            kind.spec().name,
            prep,
            train,
            share
        );
        assert!(share < 25.0, "pre-processing must not dominate: {share:.1}%");
        rows.push(torchgt_compat::json!({
            "dataset": kind.spec().name, "preprocess_s": prep,
            "training_s": train, "share_pct": share,
        }));
    }
    println!("\npaper reference: 5.4% (ogbn-arxiv), 2.0% (MalNet)");
    println!("paper shape check ✓ pre-processing is a small fraction of training");
    dump_json("preprocess_cost", &torchgt_compat::json!(rows));
}
