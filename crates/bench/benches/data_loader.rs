//! Out-of-core loader throughput: cold sequential reads vs prefetch overlap.
//!
//! A papers100M-scale stand-in slice is written to disk as TGDS shards, then
//! streamed back two ways: a **cold** pass that consumes shards as fast as
//! they arrive (every millisecond of disk + CRC + parse shows up as consumer
//! stall), and a **warm** pass where the consumer does simulated training
//! work per shard, giving the background prefetcher room to hide the I/O.
//! Each pass reports read throughput and the *prefetch stall fraction* —
//! stall time over wall time — the number the `--data-dir` training path
//! lives or dies by. Byte accounting is asserted exactly (every shard byte
//! delivered, every shard exactly once per epoch); rows land in
//! `target/experiments/BENCH_data.json` for the verify gate.

use std::path::PathBuf;
use std::time::Instant;
use torchgt::prelude::*;
use torchgt_bench::{banner, dump_json};

const SCALE: f64 = 0.0002;
const SEED: u64 = 7;
const SHARD_NODES: usize = 2048;
const EPOCHS: usize = 3;

struct PassRow {
    label: &'static str,
    epochs: usize,
    wall_ms: f64,
    stall_ms: f64,
    bytes: u64,
    shards: u64,
}

impl PassRow {
    fn stall_fraction(&self) -> f64 {
        if self.wall_ms > 0.0 {
            (self.stall_ms / self.wall_ms).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
    fn throughput_mib_s(&self) -> f64 {
        let secs = self.wall_ms / 1e3;
        if secs > 0.0 {
            self.bytes as f64 / (1 << 20) as f64 / secs
        } else {
            0.0
        }
    }
}

/// Stream `EPOCHS` epochs through `loader`, burning `work_passes` checksum
/// sweeps over each shard's features to emulate a consumer that computes
/// between receives. Returns the pass accounting.
fn run_pass(loader: &ShardLoader, label: &'static str, work_passes: usize) -> PassRow {
    let start = Instant::now();
    let mut sink = 0.0f32;
    for epoch in 0..EPOCHS {
        let mut stream = loader.stream_epoch(epoch);
        while let Some(shard) = stream.next().expect("shard stream") {
            for _ in 0..work_passes {
                sink += shard.features.iter().sum::<f32>();
            }
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(sink.is_finite(), "feature checksum must stay finite");
    let stats = loader.stats();
    PassRow {
        label,
        epochs: EPOCHS,
        wall_ms,
        stall_ms: stats.stall_ms,
        bytes: stats.bytes_read,
        shards: stats.shards_delivered,
    }
}

fn main() {
    banner(
        "data_loader",
        "TGDS shard streaming: cold read throughput vs prefetch overlap",
    );

    let dir: PathBuf =
        std::env::temp_dir().join(format!("torchgt_bench_data_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = generate_to_dir(DatasetKind::OgbnPapers100M, SCALE, SEED, &dir, SHARD_NODES)
        .expect("datagen");
    println!(
        "dataset: {} nodes / {} arcs in {} shard(s), {} bytes on disk ({})",
        report.manifest.total_nodes,
        report.manifest.total_arcs,
        report.manifest.shards.len(),
        report.total_bytes,
        report.hash
    );

    // Cold: drain as fast as possible — stall ≈ the full read+verify cost.
    let cold_loader = ShardLoader::open(&dir).expect("loader opens").with_prefetch_depth(1);
    let cold = run_pass(&cold_loader, "cold", 0);
    // Warm: double-buffered with per-shard consumer work for the prefetcher
    // to hide I/O behind.
    let warm_loader = ShardLoader::open(&dir).expect("loader opens").with_prefetch_depth(2);
    let warm = run_pass(&warm_loader, "warm+work", 40);

    println!(
        "\n{:>10} {:>8} {:>11} {:>11} {:>13} {:>12}",
        "pass", "epochs", "wall ms", "stall ms", "stall frac", "MiB/s"
    );
    let expected_bytes = report.total_bytes * EPOCHS as u64;
    let expected_shards = (report.manifest.shards.len() * EPOCHS) as u64;
    for row in [&cold, &warm] {
        println!(
            "{:>10} {:>8} {:>11.2} {:>11.2} {:>13.3} {:>12.1}",
            row.label,
            row.epochs,
            row.wall_ms,
            row.stall_ms,
            row.stall_fraction(),
            row.throughput_mib_s()
        );
        assert_eq!(row.bytes, expected_bytes, "{}: every shard byte exactly once per epoch", row.label);
        assert_eq!(row.shards, expected_shards, "{}: every shard exactly once per epoch", row.label);
    }
    println!(
        "\nprefetch hid {:.1}% of consumer wall time behind work (cold stall {:.3} -> warm {:.3})",
        (cold.stall_fraction() - warm.stall_fraction()).max(0.0) * 100.0,
        cold.stall_fraction(),
        warm.stall_fraction()
    );

    let rows: Vec<_> = [&cold, &warm]
        .iter()
        .map(|r| {
            torchgt_compat::json!({
                "pass": r.label,
                "epochs": r.epochs,
                "wall_ms": r.wall_ms,
                "stall_ms": r.stall_ms,
                "stall_fraction": r.stall_fraction(),
                "bytes_read": r.bytes,
                "shards_delivered": r.shards,
                "throughput_mib_s": r.throughput_mib_s(),
            })
        })
        .collect();
    dump_json(
        "BENCH_data",
        &torchgt_compat::json!({
            "dataset": "papers100m",
            "scale": SCALE,
            "seed": SEED,
            "shard_nodes": SHARD_NODES,
            "shards": report.manifest.shards.len(),
            "dataset_bytes": report.total_bytes,
            "manifest_hash": report.hash,
            "passes": rows,
        }),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
