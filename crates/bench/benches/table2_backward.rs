//! Table II: backward time of the topology-induced attention pattern vs its
//! dense (fully-coalesced) counterpart, Graphormer on ogbn-products,
//! S ∈ {64K, 128K, 256K, 512K}.
//!
//! The paper's point: the *irregular memory access* of the topology pattern
//! costs up to 33× over a dense-equivalent access pattern at equal work —
//! the motivation for Elastic Computation Reformation.

use torchgt_bench::{banner, dump_json, measure_layout_runs, paper_profile};
use torchgt_graph::DatasetKind;
use torchgt_perf::{kernels, GpuSpec};
use torchgt_sparse::AccessProfile;

fn main() {
    banner("table2_backward", "Table II — topology-pattern vs dense backward time");
    let gpu = GpuSpec::rtx3090();
    let spec = DatasetKind::OgbnProducts.spec();
    // Run length of the raw topology layout, measured on the scaled graph.
    let runs = measure_layout_runs(DatasetKind::OgbnProducts, 0.001, 1, 8, 16);
    println!("measured raw-topology avg run length: {:.2}\n", runs.raw_run);
    println!(
        "{:>8} {:>22} {:>18} {:>10}",
        "S", "topology BW (ms)", "dense BW (ms)", "slowdown"
    );
    let mut rows = Vec::new();
    for s in [64usize << 10, 128 << 10, 256 << 10, 512 << 10] {
        let topo = paper_profile(&spec, s, runs.raw_run, 1.0);
        // Dense counterpart: identical nonzero count, fully-coalesced runs
        // (the regular access pattern of a dense kernel).
        let dense = AccessProfile { avg_run_len: 256.0, runs: topo.nnz / 256, ..topo };
        let t_topo = kernels::sparse_attention_bwd(&gpu, &topo, 64) * 1e3;
        let t_dense = kernels::sparse_attention_bwd(&gpu, &dense, 64) * 1e3
            / crate_atomic_discount();
        println!(
            "{:>8} {:>22.2} {:>18.2} {:>9.1}x",
            format!("{}K", s >> 10),
            t_topo,
            t_dense,
            t_topo / t_dense
        );
        rows.push(torchgt_compat::json!({
            "seq_len": s, "topology_bw_ms": t_topo, "dense_bw_ms": t_dense,
            "slowdown": t_topo / t_dense,
        }));
        assert!(t_topo / t_dense > 4.0, "paper shape: irregularity must cost heavily");
    }
    println!("\npaper reference: 116.99→963.91 ms topology vs 1.53→29.01 ms dense (up to 33×)");
    dump_json("table2_backward", &torchgt_compat::json!(rows));
}

/// A coalesced dense kernel also skips the atomic scatter penalty.
fn crate_atomic_discount() -> f64 {
    2.0
}
