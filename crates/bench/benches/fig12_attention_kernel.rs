//! Figure 12: attention-module computation time for FlashAttention, pure
//! sparse (topology) attention and TorchGT's cluster-sparse attention,
//! (a) vs sequence length 64K–512K and (b) vs hidden dimension 64–256 at
//! S = 256K. Graphormer on ogbn-products, one RTX 3090.
//!
//! Paper shapes: flash grows quadratically; TorchGT wins by up to ~103×;
//! sparse sits between (its irregular access wastes most of the win).

use torchgt_bench::{banner, dump_json, measure_layout_runs, paper_profile};
use torchgt_graph::DatasetKind;
use torchgt_perf::{kernels, GpuSpec};

fn main() {
    banner("fig12_attention_kernel", "Figure 12 — attention kernel time vs S and hidden dim");
    let gpu = GpuSpec::rtx3090();
    let spec = DatasetKind::OgbnProducts.spec();
    let runs = measure_layout_runs(DatasetKind::OgbnProducts, 0.001, 1, 8, 16);
    println!(
        "measured runs: topology {:.2}, cluster-sparse {:.2} (nnz ×{:.2})",
        runs.raw_run, runs.reformed_run, runs.nnz_factor
    );

    println!("\n(a) attention time vs sequence length (hidden 64):");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>16}",
        "S", "flash (ms)", "sparse (ms)", "TorchGT (ms)", "flash/TorchGT"
    );
    let mut rows_a = Vec::new();
    let mut best_ratio = 0.0f64;
    for s in [64usize << 10, 128 << 10, 256 << 10, 512 << 10] {
        let flash = (kernels::flash_attention_fwd(&gpu, s, 64)
            + kernels::flash_attention_bwd(&gpu, s, 64))
            * 1e3;
        let topo = paper_profile(&spec, s, runs.raw_run, 1.0);
        let sparse = (kernels::sparse_attention_fwd(&gpu, &topo, 64)
            + kernels::sparse_attention_bwd(&gpu, &topo, 64))
            * 1e3;
        let cs = paper_profile(&spec, s, runs.reformed_run, runs.nnz_factor);
        let torchgt = (kernels::cluster_sparse_attention_fwd(&gpu, &cs, 64)
            + kernels::cluster_sparse_attention_bwd(&gpu, &cs, 64))
            * 1e3;
        let ratio = flash / torchgt;
        best_ratio = best_ratio.max(ratio);
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.2} {:>15.1}x",
            format!("{}K", s >> 10),
            flash,
            sparse,
            torchgt,
            ratio
        );
        assert!(torchgt < sparse, "cluster-sparse must beat pure sparse");
        assert!(sparse < flash, "sparse must beat flash at these scales");
        rows_a.push(torchgt_compat::json!({
            "seq_len": s, "flash_ms": flash, "sparse_ms": sparse, "torchgt_ms": torchgt,
        }));
    }
    println!("max speedup over flash: {best_ratio:.0}× (paper: up to 103×)");
    assert!(best_ratio > 30.0, "speedup must reach the paper's order of magnitude");

    println!("\n(b) attention time vs hidden dimension (S = 256K):");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "hidden", "flash (ms)", "sparse (ms)", "TorchGT (ms)"
    );
    let s = 256usize << 10;
    let mut rows_b = Vec::new();
    let mut flash_ratio_growth = Vec::new();
    for d in [64usize, 128, 192, 256] {
        let flash = (kernels::flash_attention_fwd(&gpu, s, d)
            + kernels::flash_attention_bwd(&gpu, s, d))
            * 1e3;
        let topo = paper_profile(&spec, s, runs.raw_run, 1.0);
        let sparse = (kernels::sparse_attention_fwd(&gpu, &topo, d)
            + kernels::sparse_attention_bwd(&gpu, &topo, d))
            * 1e3;
        let cs = paper_profile(&spec, s, runs.reformed_run, runs.nnz_factor);
        let torchgt = (kernels::cluster_sparse_attention_fwd(&gpu, &cs, d)
            + kernels::cluster_sparse_attention_bwd(&gpu, &cs, d))
            * 1e3;
        println!("{:>8} {:>12.2} {:>12.2} {:>12.2}", d, flash, sparse, torchgt);
        flash_ratio_growth.push(flash / torchgt);
        rows_b.push(torchgt_compat::json!({
            "hidden": d, "flash_ms": flash, "sparse_ms": sparse, "torchgt_ms": torchgt,
        }));
    }
    // Paper: flash tolerates larger models better than longer sequences —
    // the flash/TorchGT gap should *shrink* as hidden grows.
    assert!(
        flash_ratio_growth.first().unwrap() > flash_ratio_growth.last().unwrap(),
        "gap must narrow with hidden dim"
    );
    println!("\npaper shape check ✓ quadratic flash growth, ~100× TorchGT win, gap narrows with d");
    dump_json(
        "fig12_attention_kernel",
        &torchgt_compat::json!({"vs_seq_len": rows_a, "vs_hidden": rows_b}),
    );
}
