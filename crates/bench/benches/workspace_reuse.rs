//! Workspace reuse: real attention forward+backward wall time with a cold
//! arena per iteration (every scratch tensor freshly allocated) versus one
//! persistent arena whose pools are warm after the first step.
//!
//! This isolates the allocator traffic the execution-engine refactor removes
//! from the training loop: both variants run the identical `_ws` kernels, so
//! any gap is purely allocation/zeroing overhead. The outputs are asserted
//! bit-identical, and the warm arena must report zero fresh bytes after the
//! first iteration.

use std::time::Instant;
use torchgt_bench::{banner, dump_json};
use torchgt_graph::generators::barabasi_albert;
use torchgt_model::attention::{flash_backward_ws, flash_ws, sparse_backward_ws, sparse_ws};
use torchgt_tensor::{init, Workspace};

const S: usize = 512;
const D: usize = 64;
const HEADS: usize = 4;
const ITERS: usize = 30;

/// One attention fwd+bwd step through `ws`; returns a checksum of the
/// gradients so the two variants can be compared bit-for-bit.
fn step(kind: &str, mask: &torchgt_graph::CsrGraph, ws: &mut Workspace) -> f64 {
    let q = init::normal(S, D, 0.0, 0.5, 11);
    let k = init::normal(S, D, 0.0, 0.5, 12);
    let v = init::normal(S, D, 0.0, 0.5, 13);
    let dout = init::normal(S, D, 0.0, 0.5, 14);
    let mut checksum = 0.0f64;
    match kind {
        "sparse" => {
            let r = sparse_ws(&q, &k, &v, HEADS, mask, None, ws);
            let g = sparse_backward_ws(&q, &k, &v, HEADS, mask, r.cache, &dout, false, ws);
            checksum += g.dq.data().iter().map(|&x| x as f64).sum::<f64>();
            ws.give(r.out);
            ws.give(g.dq);
            ws.give(g.dk);
            ws.give(g.dv);
        }
        "flash" => {
            let r = flash_ws(&q, &k, &v, HEADS, ws);
            let g = flash_backward_ws(&q, &k, &v, HEADS, r.cache, &r.out, &dout, ws);
            checksum += g.dq.data().iter().map(|&x| x as f64).sum::<f64>();
            ws.give(r.out);
            ws.give(g.dq);
            ws.give(g.dk);
            ws.give(g.dv);
        }
        _ => unreachable!(),
    }
    checksum
}

fn main() {
    banner("workspace_reuse", "execution engine — arena reuse vs per-step allocation");
    let mask = barabasi_albert(S, 4, 7).with_self_loops();
    let mut rows = Vec::new();
    for kind in ["sparse", "flash"] {
        // Cold: a fresh arena per iteration, so every take() allocates.
        let t0 = Instant::now();
        let mut cold_sum = 0.0f64;
        for _ in 0..ITERS {
            let mut ws = Workspace::new();
            cold_sum += step(kind, &mask, &mut ws);
        }
        let cold_s = t0.elapsed().as_secs_f64();

        // Warm: one persistent arena; after the first iteration all scratch
        // shapes are pooled and no fresh bytes are requested.
        let mut ws = Workspace::new();
        let mut warm_sum = step(kind, &mask, &mut ws);
        let after_first = ws.stats().alloc_bytes;
        let t1 = Instant::now();
        for _ in 1..ITERS {
            warm_sum += step(kind, &mask, &mut ws);
        }
        let warm_s = t1.elapsed().as_secs_f64() * ITERS as f64 / (ITERS - 1) as f64;
        let steady_alloc = ws.stats().alloc_bytes - after_first;

        assert_eq!(cold_sum, warm_sum, "{kind}: arena reuse changed the numerics");
        assert_eq!(steady_alloc, 0, "{kind}: warm steps must not allocate");
        let speedup = cold_s / warm_s;
        println!(
            "{kind:>7}: cold {:8.2} ms/iter   warm {:8.2} ms/iter   {speedup:5.2}x   steady-state fresh bytes: {steady_alloc}",
            cold_s / ITERS as f64 * 1e3,
            warm_s / ITERS as f64 * 1e3,
        );
        rows.push(torchgt_compat::json!({
            "kernel": kind,
            "cold_s_per_iter": cold_s / ITERS as f64,
            "warm_s_per_iter": warm_s / ITERS as f64,
            "speedup": speedup,
            "steady_state_alloc_bytes": steady_alloc,
            "reuse_hits": ws.stats().reuse_hits,
        }));
    }
    println!("\nidentical checksums ✓ zero steady-state allocation ✓");
    dump_json("workspace_reuse", &torchgt_compat::json!({ "cases": rows }));
}
