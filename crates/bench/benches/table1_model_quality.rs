//! Table I: graph transformers outperform classical message-passing GNNs —
//! GCN and GAT vs GT and Graphormer on a ZINC-like regression task (MAE ↓)
//! and a Flickr-like node-classification task (accuracy ↑).

use torchgt_bench::{banner, dump_json, BenchModel};
use torchgt_comm::ClusterTopology;
use torchgt_graph::DatasetKind;
use torchgt_model::{Gat, Gcn, SequenceModel};
use torchgt_perf::{GpuSpec, ModelShape};
use torchgt_runtime::{GraphTrainer, Method, NodeTrainer, TrainConfig};

fn gnn_model(name: &str, feat: usize, out: usize) -> Box<dyn SequenceModel> {
    match name {
        "GCN" => Box::new(Gcn::new(&[feat, 32, out], 5)),
        "GAT" => Box::new(Gat::new(feat, 32, out, 5)),
        _ => unreachable!(),
    }
}

fn main() {
    banner("table1_model_quality", "Table I — graph transformers vs traditional GNNs");
    let shape = ModelShape { layers: 2, hidden: 32, heads: 4 };
    let mut rows = Vec::new();

    // --- ZINC-like regression (test MAE, lower is better) ---------------
    println!("\nZINC-like molecule regression (test MAE ↓):");
    let zinc = DatasetKind::Zinc.generate_graphs(60, 1.0, 29);
    println!("{:<12} {:>10}", "model", "test MAE");
    let mut maes = Vec::new();
    for name in ["GCN", "GAT", "GT", "Graphormer"] {
        let mut cfg = TrainConfig::new(Method::GpSparse, 64, 8);
        cfg.lr = 3e-3;
        let model: Box<dyn SequenceModel> = match name {
            "GT" => BenchModel::Gt.build(zinc.feat_dim, 1, 5),
            "Graphormer" => BenchModel::GraphormerSlim.build(zinc.feat_dim, 1, 5),
            other => gnn_model(other, zinc.feat_dim, 1),
        };
        let mut t = GraphTrainer::new(
            cfg,
            &zinc,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let stats = t.run();
        let mae = -stats.last().unwrap().test_acc; // evaluate() returns −MAE
        println!("{:<12} {:>10.4}", name, mae);
        maes.push((name, mae));
        rows.push(torchgt_compat::json!({"task": "zinc_mae", "model": name, "mae": mae}));
    }

    // --- Flickr-like node classification (test accuracy ↑) --------------
    println!("\nFlickr-like node classification (test accuracy ↑):");
    let flickr = DatasetKind::Flickr.generate_node(0.02, 29);
    println!("{:<12} {:>10}", "model", "test acc");
    let mut accs = Vec::new();
    for name in ["GCN", "GAT", "GT", "Graphormer"] {
        let mut cfg = TrainConfig::new(Method::GpSparse, 400, 6);
        cfg.lr = 2e-3;
        let model: Box<dyn SequenceModel> = match name {
            "GT" => BenchModel::Gt.build(flickr.feat_dim, flickr.num_classes, 5),
            "Graphormer" => BenchModel::GraphormerSlim.build(flickr.feat_dim, flickr.num_classes, 5),
            other => gnn_model(other, flickr.feat_dim, flickr.num_classes),
        };
        let mut t = NodeTrainer::new(
            cfg,
            &flickr,
            model,
            shape,
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let stats = t.run();
        let acc = stats.last().unwrap().test_acc;
        println!("{:<12} {:>10.4}", name, acc);
        accs.push((name, acc));
        rows.push(torchgt_compat::json!({"task": "flickr_acc", "model": name, "acc": acc}));
    }

    // Shape: the best transformer beats the best GNN on both tasks.
    let best_gnn_mae = maes[..2].iter().map(|x| x.1).fold(f64::MAX, f64::min);
    let best_tf_mae = maes[2..].iter().map(|x| x.1).fold(f64::MAX, f64::min);
    assert!(
        best_tf_mae <= best_gnn_mae + 0.02,
        "transformers must match/beat GNNs on regression: {best_tf_mae} vs {best_gnn_mae}"
    );
    let best_gnn_acc = accs[..2].iter().map(|x| x.1).fold(0.0, f64::max);
    let best_tf_acc = accs[2..].iter().map(|x| x.1).fold(0.0, f64::max);
    assert!(
        best_tf_acc >= best_gnn_acc - 0.02,
        "transformers must match/beat GNNs on node classification: {best_tf_acc} vs {best_gnn_acc}"
    );
    println!("\npaper shape check ✓ graph transformers ≥ traditional GNNs on both tasks");
    dump_json("table1_model_quality", &torchgt_compat::json!(rows));
}
