//! Async-collective overlap + closed-loop straggler rebalancing under skew.
//!
//! A data-parallel GT run over `P = 3` simulated ranks with one rank
//! slowed by an injected per-send delay (`FaultPlan::slow`) — the delay is
//! calibrated against a fault-free warmup so injected comm dominates the
//! per-token compute and the ablation is robust to host speed. Four passes cross the
//! two toggles:
//!
//! * **overlap** — `TORCHGT_OVERLAP` off vs on (blocking collectives vs
//!   handle-based begin/wait with a depth-1 pipeline);
//! * **rebalance** — static token assignment vs the closed loop (EWMA
//!   `StepLedger` → `RebalancePolicy` → token-conserving reshard).
//!
//! Asserted: all four passes produce bit-identical loss histories (the
//! toggles are pure wall-clock optimisations), overlap-on beats overlap-off
//! under skew, and the closed loop beats the static assignment once it has
//! fired. Rows land in `target/experiments/BENCH_overlap.json`.

use torchgt::model::{Gt, GtConfig};
use torchgt::prelude::*;
use torchgt::runtime::{train_data_parallel_rebalance, RebalancePolicy, RebalanceStats};
use torchgt_bench::{banner, dump_json};

const WORLD: usize = 3;
const SLOW_RANK: usize = 1;
const EPOCHS: usize = 6;
const SEQ_LEN: usize = 64;
const SCALE: f64 = 0.02;
const SEED: u64 = 23;

fn run_pass(
    dataset: &NodeDataset,
    epochs: usize,
    overlap: bool,
    plan: FaultPlan,
    policy: Option<RebalancePolicy>,
) -> RebalanceStats {
    std::env::set_var("TORCHGT_OVERLAP", if overlap { "on" } else { "off" });
    let mut cfg = TrainConfig::new(Method::GpSparse, SEQ_LEN, epochs);
    cfg.lr = 2e-3;
    cfg.seed = 7;
    let feat = dataset.feat_dim;
    let classes = dataset.num_classes;
    train_data_parallel_rebalance(
        dataset,
        cfg,
        WORLD,
        move || Box::new(Gt::new(GtConfig::tiny(feat, classes), 11)) as Box<dyn SequenceModel>,
        plan,
        policy,
        torchgt::obs::noop(),
    )
}

fn tail_seconds(stats: &RebalanceStats, from_epoch: usize) -> f64 {
    stats.epoch_seconds.iter().skip(from_epoch).sum()
}

fn main() {
    banner(
        "overlap_rebalance",
        "compute/comm overlap + closed-loop straggler rebalancing (§III-C, Fig. 7 setting)",
    );

    let dataset = DatasetKind::OgbnArxiv.generate_node(SCALE, SEED);
    println!(
        "dataset: {} nodes, feat {}, {} classes",
        dataset.graph.num_nodes(),
        dataset.feat_dim,
        dataset.num_classes
    );

    // Calibration: one fault-free epoch gives per-token compute; the slow
    // rank then gets a per-send delay such that its injected comm time per
    // owned token is ~2.5× the compute time (each owned token costs the
    // owner `WORLD - 1` sends).
    let warm = run_pass(&dataset, 1, false, FaultPlan::default(), None);
    let ntokens: usize = warm.final_counts.iter().sum();
    let per_token_s = warm.epoch_seconds[0] / ntokens as f64;
    let slow_delay_s = 2.5 * per_token_s / (WORLD - 1) as f64;
    println!(
        "calibration: {} tokens, {:.3} ms/token compute -> slow-rank delay {:.3} ms/send",
        ntokens,
        per_token_s * 1e3,
        slow_delay_s * 1e3
    );

    let plan = FaultPlan::slow(SLOW_RANK, slow_delay_s);
    let policy = RebalancePolicy { threshold: 1.3, patience: 2, alpha: 0.5 };

    let sync_static = run_pass(&dataset, EPOCHS, false, plan, None);
    let over_static = run_pass(&dataset, EPOCHS, true, plan, None);
    let sync_rebal = run_pass(&dataset, EPOCHS, false, plan, Some(policy));
    let over_rebal = run_pass(&dataset, EPOCHS, true, plan, Some(policy));

    let passes: [(&str, bool, bool, &RebalanceStats); 4] = [
        ("sync+static", false, false, &sync_static),
        ("overlap+static", true, false, &over_static),
        ("sync+rebalance", false, true, &sync_rebal),
        ("overlap+rebalance", true, true, &over_rebal),
    ];

    println!(
        "\n{:>18} {:>9} {:>9} {:>11} {:>7} {:>7} {:>14}",
        "pass", "total s", "last-3 s", "rebalances", "moved", "loss", "final counts"
    );
    for (label, _, _, s) in &passes {
        println!(
            "{:>18} {:>9.3} {:>9.3} {:>11} {:>7} {:>7.4} {:>14}",
            label,
            tail_seconds(s, 0),
            tail_seconds(s, EPOCHS - 3),
            s.rebalances,
            s.moved_tokens,
            s.stats.epoch_losses.last().copied().unwrap_or(f32::NAN),
            format!("{:?}", s.final_counts),
        );
    }

    // The toggles must be pure wall-clock optimisations: every pass's loss
    // history is bit-identical.
    let reference: Vec<u32> = sync_static.stats.epoch_losses.iter().map(|l| l.to_bits()).collect();
    for (label, _, _, s) in &passes {
        let bits: Vec<u32> = s.stats.epoch_losses.iter().map(|l| l.to_bits()).collect();
        assert_eq!(bits, reference, "{label}: loss history diverged from sync+static");
    }
    assert!(
        sync_static.stats.epoch_losses.last().unwrap() < sync_static.stats.epoch_losses.first().unwrap(),
        "training must make progress"
    );

    // Ablation 1: overlap hides the injected comm behind compute.
    let overlap_speedup = tail_seconds(&sync_static, 0) / tail_seconds(&over_static, 0);
    println!("\noverlap speedup under skew (static assignment): {overlap_speedup:.2}x");
    assert!(
        tail_seconds(&over_static, 0) < 0.95 * tail_seconds(&sync_static, 0),
        "overlap-on must beat overlap-off under skew ({:.3}s vs {:.3}s)",
        tail_seconds(&over_static, 0),
        tail_seconds(&sync_static, 0)
    );

    // Ablation 2: once the closed loop fires (patience 2 -> by epoch 3),
    // the rebalanced assignment beats the static one on the tail epochs.
    assert!(sync_rebal.rebalances >= 1, "closed loop never fired");
    assert!(sync_rebal.moved_tokens > 0, "rebalance moved no tokens");
    assert!(
        sync_rebal.final_counts[SLOW_RANK] < warm.final_counts[SLOW_RANK],
        "slow rank must shed tokens ({:?} vs static {:?})",
        sync_rebal.final_counts,
        warm.final_counts
    );
    let rebalance_speedup = tail_seconds(&sync_static, EPOCHS - 3) / tail_seconds(&sync_rebal, EPOCHS - 3);
    println!("rebalance speedup on last 3 epochs (sync): {rebalance_speedup:.2}x");
    assert!(
        tail_seconds(&sync_rebal, EPOCHS - 3) < 0.95 * tail_seconds(&sync_static, EPOCHS - 3),
        "rebalance must beat static on tail epochs ({:.3}s vs {:.3}s)",
        tail_seconds(&sync_rebal, EPOCHS - 3),
        tail_seconds(&sync_static, EPOCHS - 3)
    );

    let rows: Vec<_> = passes
        .iter()
        .map(|(label, overlap, rebalance, s)| {
            torchgt_compat::json!({
                "pass": label,
                "overlap": overlap,
                "rebalance": rebalance,
                "total_s": tail_seconds(s, 0),
                "tail3_s": tail_seconds(s, EPOCHS - 3),
                "epoch_seconds": s.epoch_seconds,
                "rebalances": s.rebalances,
                "moved_tokens": s.moved_tokens,
                "imbalance_history": s.imbalance_history,
                "final_counts": s.final_counts,
                "final_loss": s.stats.epoch_losses.last().copied().unwrap_or(f32::NAN),
            })
        })
        .collect();
    dump_json(
        "BENCH_overlap",
        &torchgt_compat::json!({
            "world": WORLD,
            "slow_rank": SLOW_RANK,
            "epochs": EPOCHS,
            "tokens": ntokens,
            "per_token_compute_s": per_token_s,
            "slow_delay_s": slow_delay_s,
            "losses_bit_identical": true,
            "overlap_speedup": overlap_speedup,
            "rebalance_tail_speedup": rebalance_speedup,
            "passes": rows,
        }),
    );
}
