//! Figure 8: convergence curves of TorchGT vs GP-FLASH — GPH_Slim and GT on
//! ogbn-products-like and ogbn-arxiv-like graphs.
//!
//! Paper shape: TorchGT converges faster and to higher accuracy (GP-FLASH
//! loses both its attention bias and precision).

use torchgt_bench::{banner, dump_json, functional_node_run, functional_node_run_observed, BenchModel};
use torchgt_graph::DatasetKind;
use torchgt_runtime::Method;

fn main() {
    banner("fig8_convergence", "Figure 8 — convergence of TorchGT vs GP-FLASH");
    let epochs = 8;
    let mut rows = Vec::new();
    for (model, kind) in [
        (BenchModel::GraphormerSlim, DatasetKind::OgbnProducts),
        (BenchModel::GraphormerSlim, DatasetKind::OgbnArxiv),
        (BenchModel::Gt, DatasetKind::OgbnProducts),
        (BenchModel::Gt, DatasetKind::OgbnArxiv),
    ] {
        let spec = kind.spec();
        let scale = (1600.0 / spec.nodes as f64).min(1.0);
        let dataset = kind.generate_node(scale, 21);
        println!("\n--- {} on {} ---", model.label(), spec.name);
        println!("{:>6} {:>18} {:>18}", "epoch", "TorchGT acc", "GP-Flash acc");
        let dump = format!("fig8_{}_{}", model.label(), spec.name);
        let (tgt, metrics) =
            functional_node_run_observed(&dataset, Method::TorchGt, model, 400, epochs, 2, &dump);
        let (flash, _) = functional_node_run(&dataset, Method::GpFlash, model, 400, epochs, 2);
        if let Some(a2a) = metrics.collective("all_to_all") {
            println!(
                "[TorchGT run: {} all-to-alls, {:.1} MiB on the wire, {} β_thre transition(s)]",
                a2a.ops,
                a2a.wire_bytes as f64 / (1 << 20) as f64,
                metrics.events_of(torchgt_obs::Event::BETA_TRANSITION).len(),
            );
        }
        for e in 0..epochs {
            println!(
                "{:>6} {:>18.4} {:>18.4}",
                e, tgt[e].test_acc, flash[e].test_acc
            );
            rows.push(torchgt_compat::json!({
                "model": model.label(), "dataset": spec.name, "epoch": e,
                "torchgt_acc": tgt[e].test_acc, "flash_acc": flash[e].test_acc,
                "torchgt_loss": tgt[e].loss, "flash_loss": flash[e].loss,
            }));
        }
        let t_final = tgt.last().unwrap().test_acc;
        let f_final = flash.last().unwrap().test_acc;
        println!("final: TorchGT {t_final:.4} vs GP-Flash {f_final:.4}");
        assert!(
            t_final >= f_final - 0.03,
            "{} {}: TorchGT must converge at least as well",
            model.label(),
            spec.name
        );
    }
    println!("\npaper shape check ✓ TorchGT converges to ≥ GP-FLASH accuracy everywhere");
    dump_json("fig8_convergence", &torchgt_compat::json!(rows));
}
