//! Figure 9: (a) maximum trainable sequence length vs GPU count — TorchGT
//! vs GP-RAW; (b) training throughput vs sequence length at 8 GPUs —
//! TorchGT vs GP-FLASH. GPH_Slim on ogbn-products.
//!
//! Paper shapes: TorchGT's max S scales ~linearly to 1.3M on 8 GPUs while
//! GP-RAW stays ~22K flat; TorchGT throughput stays ~flat with S while
//! GP-FLASH collapses quadratically.

use torchgt_bench::{banner, dump_json, measure_layout_runs, paper_profile};
use torchgt_comm::ClusterTopology;
use torchgt_graph::DatasetKind;
use torchgt_perf::{iteration_cost, max_seq_len, GpuSpec, ModelShape, StepSpec};
use torchgt_sparse::{dense_profile, LayoutKind};

fn main() {
    banner("fig9_scalability", "Figure 9 — max sequence length & throughput vs S");
    let spec = DatasetKind::OgbnProducts.spec();
    let degree = 2.0 * spec.edges as f64 / spec.nodes as f64;
    let shape = ModelShape::graphormer_slim();
    let gpu = GpuSpec::a100();

    println!("\n(a) maximum sequence length vs GPU count:");
    println!("{:>6} {:>16} {:>16} {:>8}", "GPUs", "TorchGT max S", "GP-RAW max S", "ratio");
    let mut rows_a = Vec::new();
    let mut tgt_series = Vec::new();
    let mut raw_series = Vec::new();
    for gpus in [1usize, 2, 4, 8] {
        let tgt = max_seq_len(&gpu, &shape, LayoutKind::ClusterSparse, degree, gpus);
        let raw = max_seq_len(&gpu, &shape, LayoutKind::Dense, degree, gpus);
        println!(
            "{:>6} {:>15}K {:>15}K {:>7.0}x",
            gpus,
            tgt >> 10,
            raw >> 10,
            tgt as f64 / raw.max(1) as f64
        );
        tgt_series.push(tgt);
        raw_series.push(raw);
        rows_a.push(torchgt_compat::json!({"gpus": gpus, "torchgt_max_s": tgt, "gp_raw_max_s": raw}));
    }
    assert!(
        *tgt_series.last().unwrap() as f64 > 2.5 * tgt_series[0] as f64,
        "TorchGT max S must scale with GPUs"
    );
    assert!(
        (*raw_series.last().unwrap() as f64) < 1.3 * raw_series[0] as f64,
        "GP-RAW max S must stay flat"
    );
    assert!(*tgt_series.last().unwrap() > 1_000_000, "≥1M tokens on 8 GPUs (paper: 1.3M)");

    println!("\n(b) throughput vs sequence length (8 GPUs):");
    let runs = measure_layout_runs(DatasetKind::OgbnProducts, 0.001, 1, 8, 16);
    let topo = ClusterTopology::a100(1);
    println!(
        "{:>8} {:>20} {:>20} {:>10}",
        "S", "TorchGT tokens/s", "GP-FLASH tokens/s", "speedup"
    );
    let mut rows_b = Vec::new();
    let mut tgt_tputs = Vec::new();
    let mut flash_tputs = Vec::new();
    for s in [128usize << 10, 256 << 10, 512 << 10, 1024 << 10, 1331 << 10] {
        let tgt_step = StepSpec {
            gpu,
            topology: topo,
            shape,
            layout: LayoutKind::ClusterSparse,
            seq_len: s,
            profile: paper_profile(&spec, s, runs.reformed_run, runs.nnz_factor),
        };
        let flash_step = StepSpec {
            layout: LayoutKind::Flash,
            profile: dense_profile(0),
            ..tgt_step.clone()
        };
        let t_tgt = s as f64 / iteration_cost(&tgt_step).total();
        let t_flash = s as f64 / iteration_cost(&flash_step).total();
        println!(
            "{:>8} {:>20.3e} {:>20.3e} {:>9.1}x",
            format!("{}K", s >> 10),
            t_tgt,
            t_flash,
            t_tgt / t_flash
        );
        tgt_tputs.push(t_tgt);
        flash_tputs.push(t_flash);
        rows_b.push(torchgt_compat::json!({
            "seq_len": s, "torchgt_tokens_per_s": t_tgt, "flash_tokens_per_s": t_flash,
        }));
    }
    // Shapes: flash collapses (paper: 1.9e5 → 2.2e4); TorchGT roughly flat
    // (paper: ~2.5e6 throughout).
    assert!(
        flash_tputs[0] / flash_tputs.last().unwrap() > 4.0,
        "GP-FLASH throughput must collapse with S"
    );
    assert!(
        tgt_tputs[0] / tgt_tputs.last().unwrap() < 3.0,
        "TorchGT throughput must stay roughly flat"
    );
    println!("\npaper shape check ✓ linear max-S scaling; flat TorchGT vs collapsing flash");
    dump_json("fig9_scalability", &torchgt_compat::json!({"max_seq": rows_a, "throughput": rows_b}));
}
