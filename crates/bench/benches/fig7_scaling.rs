//! Figure 7: multi-server scalability of TorchGT training GPH_Slim on
//! ogbn-products, A100 servers.
//!
//! (a) fixed S = 1024K, 1–8 servers: throughput should nearly double per
//!     server doubling (the paper reports ~1.7×);
//! (b) fixed computational load per GPU: S 256K→512K with 4× the GPUs keeps
//!     per-GPU throughput approximately constant.

use torchgt_bench::{banner, dump_json, measure_layout_runs, paper_profile};
use torchgt_comm::ClusterTopology;
use torchgt_graph::DatasetKind;
use torchgt_perf::{iteration_cost, GpuSpec, ModelShape, StepSpec};
use torchgt_sparse::LayoutKind;

fn main() {
    banner("fig7_scaling", "Figure 7 — multi-server scalability (A100), GPH_Slim/ogbn-products");
    let spec = DatasetKind::OgbnProducts.spec();
    let runs = measure_layout_runs(DatasetKind::OgbnProducts, 0.001, 1, 8, 16);
    let shape = ModelShape::graphormer_slim();
    let gpu = GpuSpec::a100();

    println!("\n(a) fixed S = 1024K, scaling servers:");
    println!("{:>9} {:>8} {:>14} {:>18} {:>10}", "servers", "GPUs", "iter (s)", "tokens/s", "speedup");
    let s = 1usize << 20;
    let mut prev: Option<f64> = None;
    let mut rows_a = Vec::new();
    for servers in [1usize, 2, 4, 8] {
        let topo = ClusterTopology::a100(servers);
        let step = StepSpec {
            gpu,
            topology: topo,
            shape,
            layout: LayoutKind::ClusterSparse,
            seq_len: s,
            profile: paper_profile(&spec, s, runs.reformed_run, runs.nnz_factor),
        };
        let t = iteration_cost(&step).total();
        let tput = s as f64 / t;
        let speedup = prev.map(|p| t_ratio(p, t)).unwrap_or(1.0);
        println!(
            "{:>9} {:>8} {:>14.4} {:>18.3e} {:>9.2}x",
            servers,
            topo.world_size(),
            t,
            tput,
            speedup
        );
        if let Some(p) = prev {
            assert!(p / t > 1.4, "per-doubling speedup too low: {}", p / t);
        }
        prev = Some(t);
        rows_a.push(torchgt_compat::json!({"servers": servers, "iter_s": t, "tokens_per_s": tput}));
    }

    println!("\n(b) fixed per-GPU load (S²/P const): S=256K/P=16 vs S=512K/P=64:");
    println!("{:>8} {:>6} {:>14} {:>22}", "S", "GPUs", "iter (s)", "per-GPU tokens/s");
    let mut rows_b = Vec::new();
    let mut per_gpu: Vec<f64> = Vec::new();
    for (s, gpus) in [(256usize << 10, 16usize), (512 << 10, 64)] {
        let topo = ClusterTopology { gpus_per_server: 8, servers: gpus / 8, ..ClusterTopology::a100(1) };
        let step = StepSpec {
            gpu,
            topology: topo,
            shape,
            layout: LayoutKind::ClusterSparse,
            seq_len: s,
            profile: paper_profile(&spec, s, runs.reformed_run, runs.nnz_factor),
        };
        let t = iteration_cost(&step).total();
        let tput = s as f64 / t / gpus as f64;
        println!("{:>8} {:>6} {:>14.4} {:>22.3e}", format!("{}K", s >> 10), gpus, t, tput);
        per_gpu.push(tput);
        rows_b.push(torchgt_compat::json!({"seq_len": s, "gpus": gpus, "per_gpu_tokens_per_s": tput}));
    }
    let ratio = per_gpu[1] / per_gpu[0];
    println!("\nper-GPU throughput ratio: {ratio:.2} (paper: ≈1, 'approximately the same')");
    assert!((0.4..=2.5).contains(&ratio), "per-GPU throughput should stay same order");
    println!("paper shape check ✓ near-linear server scaling, stable per-GPU throughput");
    dump_json("fig7_scaling", &torchgt_compat::json!({"fixed_s": rows_a, "fixed_load": rows_b}));
}

fn t_ratio(prev: f64, now: f64) -> f64 {
    prev / now
}
