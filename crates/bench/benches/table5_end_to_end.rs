//! Table V: end-to-end training speed and test accuracy of GP-RAW, GP-FLASH
//! and TorchGT on one RTX 3090 server, for GPH_Slim, GPH_Large and GT over
//! MalNet / ogbn-papers100M / ogbn-products / ogbn-arxiv / Amazon.
//!
//! Epoch times are simulated at the paper's sequence lengths (S = 256K for
//! GPH_Slim and GT, 32K for GPH_Large, 64K on ogbn-arxiv) from layout
//! statistics measured on the scaled stand-ins; accuracies come from real
//! training runs of the Rust models on those stand-ins. GP-RAW reports OOM
//! exactly where the memory model says the S² score matrix cannot fit —
//! everywhere, as in the paper.

use torchgt_bench::{
    banner, dump_json, functional_node_run, layout_of, measure_layout_runs, method_profile,
    sim_epoch, BenchModel,
};
use torchgt_comm::ClusterTopology;
use torchgt_graph::DatasetKind;
use torchgt_perf::{fits, GpuSpec};
use torchgt_runtime::Method;

fn main() {
    banner("table5_end_to_end", "Table V — end-to-end speed & accuracy, one 3090 server");
    let gpu = GpuSpec::rtx3090();
    let topo = ClusterTopology::rtx3090(1);
    let datasets = [
        DatasetKind::MalNet,
        DatasetKind::OgbnPapers100M,
        DatasetKind::OgbnProducts,
        DatasetKind::OgbnArxiv,
        DatasetKind::Amazon,
    ];
    let models = [BenchModel::GraphormerSlim, BenchModel::GraphormerLarge, BenchModel::Gt];
    let mut rows = Vec::new();
    for model in models {
        println!("\n===== {} =====", model.label());
        println!(
            "{:<18} {:<9} {:>14} {:>10} {:>9}",
            "dataset", "method", "t_epoch (s)", "test acc", "speedup"
        );
        for kind in datasets {
            let spec = kind.spec();
            let seq_len = match (model, kind) {
                (BenchModel::GraphormerLarge, _) => 32usize << 10,
                (_, DatasetKind::OgbnArxiv) => 64 << 10,
                _ => 256 << 10,
            };
            let tokens = (spec.nodes * spec.num_graphs) as usize;
            // Layout statistics from a scaled stand-in (node-level graphs
            // directly; MalNet via a call-graph-scale arxiv proxy).
            let stats_kind = if spec.num_graphs > 1 { DatasetKind::OgbnArxiv } else { kind };
            let scale = (1800.0 / stats_kind.spec().nodes as f64).min(1.0);
            let runs = measure_layout_runs(stats_kind, scale, 1, 8, 16);
            // Functional accuracy runs (GP-RAW would OOM at paper scale, so
            // the paper has no accuracy for it either).
            let acc_dataset = if spec.num_graphs > 1 {
                None // graph-level accuracy handled by fig11/graph harnesses
            } else {
                Some(kind.generate_node(scale, 7))
            };
            let mut flash_time = None;
            for method in [Method::GpRaw, Method::GpFlash, Method::TorchGt] {
                let shape = model.paper_shape();
                let profile = method_profile(method, &spec, seq_len, &runs);
                let oom = !fits(&gpu, &shape, layout_of(method), seq_len, profile.nnz, topo.world_size());
                if oom {
                    println!("{:<18} {:<9} {:>14} {:>10} {:>9}", spec.name, method.label(), "OOM", "-", "-");
                    rows.push(torchgt_compat::json!({
                        "model": model.label(), "dataset": spec.name,
                        "method": method.label(), "oom": true,
                    }));
                    continue;
                }
                let (_, epoch_s) =
                    sim_epoch(gpu, topo, shape, layout_of(method), seq_len, profile, tokens);
                let acc = acc_dataset.as_ref().map(|d| {
                    let epochs = 4;
                    let (stats, _) = functional_node_run(d, method, model, 400, epochs, 3);
                    stats.last().unwrap().test_acc
                });
                let speedup = match method {
                    Method::GpFlash => {
                        flash_time = Some(epoch_s);
                        1.0
                    }
                    Method::TorchGt => flash_time.map(|f| f / epoch_s).unwrap_or(1.0),
                    _ => 1.0,
                };
                println!(
                    "{:<18} {:<9} {:>14.2} {:>10} {:>8.1}x",
                    spec.name,
                    method.label(),
                    epoch_s,
                    acc.map(|a| format!("{:.4}", a)).unwrap_or_else(|| "-".into()),
                    speedup
                );
                if method == Method::TorchGt {
                    // Paper range: 3.3–62.7× (GPH_Large bottoms out at ~3×;
                    // our model is most conservative on high-degree Amazon
                    // at S = 32K, so accept anything clearly > 1).
                    assert!(speedup > 1.2, "{}: TorchGT must beat GP-FLASH", spec.name);
                }
                rows.push(torchgt_compat::json!({
                    "model": model.label(), "dataset": spec.name, "method": method.label(),
                    "t_epoch_s": epoch_s, "test_acc": acc, "speedup_vs_flash": speedup,
                    "oom": false,
                }));
            }
        }
    }
    println!("\npaper reference: GP-RAW OOM everywhere; TorchGT 3.3–62.7× over GP-FLASH");
    println!("paper shape check ✓ OOM pattern and TorchGT > GP-FLASH throughout");
    dump_json("table5_end_to_end", &torchgt_compat::json!(rows));
}
