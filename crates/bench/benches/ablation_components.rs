//! Ablation: TorchGT minus each of its three techniques, on the
//! ogbn-arxiv-scale stand-in (DESIGN.md's per-design-choice ablation).
//!
//! * **full** — everything on;
//! * **no-reorder** — cluster-aware reordering disabled (original node ids);
//! * **no-reform** — Elastic Computation Reformation disabled (β_thre = 0);
//! * **no-interleave** — pure sparse attention, no fully-connected passes.
//!
//! Expected: no-reform loses the run-length (kernel locality) win;
//! no-interleave loses accuracy; no-reorder loses cluster locality.

use torchgt_bench::{banner, dump_json, BenchModel};
use torchgt_comm::ClusterTopology;
use torchgt_graph::DatasetKind;
use torchgt_perf::{kernels, GpuSpec};
use torchgt_runtime::{Method, NodeTrainer, TrainConfig};
use torchgt_sparse::AccessProfile;

fn main() {
    banner("ablation_components", "Ablation — TorchGT minus each technique (DESIGN.md)");
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.01, 71);
    let epochs = 6;
    println!(
        "{:<14} {:>10} {:>12} {:>22}",
        "variant", "test acc", "avg run", "paper-scale attn (ms)"
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (label, clusters, beta, period) in [
        ("full", 0usize, None, 8usize),
        ("no-reorder", 1, None, 8),
        ("no-reform", 0, Some(0.0), 8),
        ("no-interleave", 0, None, 0),
    ] {
        let mut cfg = TrainConfig::new(Method::TorchGt, 400, epochs);
        cfg.lr = 2e-3;
        cfg.seed = 3;
        cfg.clusters = clusters;
        cfg.beta_thre = beta;
        cfg.interleave_period = period;
        let model = BenchModel::GraphormerSlim.build(dataset.feat_dim, dataset.num_classes, 3);
        let mut t = NodeTrainer::new(
            cfg,
            &dataset,
            model,
            BenchModel::GraphormerSlim.functional_shape(),
            GpuSpec::rtx3090(),
            ClusterTopology::rtx3090(1),
        );
        let stats = t.run();
        let acc = stats.last().unwrap().test_acc;
        let profile = t.mean_profile();
        // Paper-scale attention cost of this variant's layout (S = 64K).
        let s = 64usize << 10;
        let nnz_per_token = profile.nnz as f64 / profile.active_rows.max(1) as f64;
        let scaled = AccessProfile {
            nnz: (s as f64 * nnz_per_token) as usize,
            runs: ((s as f64 * nnz_per_token) / profile.avg_run_len.max(1.0)) as usize,
            avg_run_len: profile.avg_run_len,
            isolated: 0,
            active_rows: s,
        };
        let gpu = GpuSpec::rtx3090();
        let attn_ms = (kernels::cluster_sparse_attention_fwd(&gpu, &scaled, 64)
            + kernels::cluster_sparse_attention_bwd(&gpu, &scaled, 64))
            * 1e3;
        println!(
            "{:<14} {:>10.4} {:>12.2} {:>22.2}",
            label, acc, profile.avg_run_len, attn_ms
        );
        results.push((label, acc, profile.avg_run_len, attn_ms));
        rows.push(torchgt_compat::json!({
            "variant": label, "test_acc": acc,
            "avg_run_len": profile.avg_run_len, "paper_scale_attn_ms": attn_ms,
        }));
    }
    // Shape checks.
    let get = |name: &str| results.iter().find(|r| r.0 == name).unwrap().clone();
    let full = get("full");
    let no_reform = get("no-reform");
    assert!(
        full.2 > no_reform.2,
        "reformation must lengthen runs: {} vs {}",
        full.2,
        no_reform.2
    );
    let no_interleave = get("no-interleave");
    assert!(
        full.1 >= no_interleave.1 - 0.05,
        "interleaving must not hurt accuracy: {} vs {}",
        full.1,
        no_interleave.1
    );
    println!("\nablation shape check ✓ each technique contributes its expected axis");
    dump_json("ablation_components", &torchgt_compat::json!(rows));
}
