//! Ablation of the paper's I2 claim (§II-C): NLP-style efficient attention
//! — sliding-window sparsity (BigBird/Longformer-style) and Performer
//! (FAVOR+) linear attention — "cannot be simply grafted to graph
//! transformers since they fail to consider the inherent graph structure",
//! while the topology-induced pattern keeps exactly the edges that matter.
//!
//! Setup: node classification on an arxiv-scale stand-in with weak features
//! (structure required), identical GT models, identical update budgets; only
//! the attention pattern differs.

use torchgt_compat::rng::Rng;
use torchgt_bench::{banner, dump_json};
use torchgt_graph::DatasetKind;
use torchgt_model::{loss, Pattern, SequenceBatch, SequenceModel};
use torchgt_model::{Gt, GtConfig};
use torchgt_sparse::{topology_mask, window_mask};
use torchgt_tensor::{Adam, Optimizer, Tensor};

fn main() {
    banner(
        "ablation_nlp_attention",
        "§II-C I2 — graph topology vs NLP sparse/linear attention baselines",
    );
    let mut dataset = DatasetKind::OgbnArxiv.generate_node(0.004, 81);
    // Weaken features so attention must aggregate structure.
    let mut rng = torchgt_tensor::rng::rng(17);
    for v in dataset.features.iter_mut() {
        *v = 0.25 * *v + rng.gen_range(-1.0..1.0f32);
    }
    let n = dataset.num_nodes();
    let features = Tensor::from_vec(n, dataset.feat_dim, dataset.features.clone());
    let topo = topology_mask(&dataset.graph, true);
    // A window with the same average nonzeros per row as the topology mask.
    let w = (topo.num_arcs() / n / 2).max(1);
    let window = window_mask(n, w);
    println!(
        "{} nodes, {} classes; topology nnz {}, window(±{w}) nnz {}",
        n,
        dataset.num_classes,
        topo.num_arcs(),
        window.num_arcs()
    );
    let epochs = 25;
    let mut results: Vec<(&str, f64)> = Vec::new();
    let mut rows = Vec::new();
    for (label, pattern) in [
        ("topology", Pattern::Sparse(&topo)),
        ("window", Pattern::Sparse(&window)),
        ("performer", Pattern::Performer(64)),
    ] {
        let mut model = Gt::new(
            GtConfig {
                feat_dim: dataset.feat_dim,
                hidden: 32,
                layers: 2,
                heads: 4,
                ffn_mult: 2,
                out_dim: dataset.num_classes,
                pe_dim: 8,
                dropout: 0.0,
            },
            5,
        );
        model.set_training(true);
        let mut opt = Adam::with_lr(2e-3);
        let batch = SequenceBatch { features: &features, graph: &dataset.graph, spd: None };
        for _ in 0..epochs {
            let logits = model.forward(&batch, pattern);
            let (_, dl) = loss::masked_softmax_cross_entropy(
                &logits,
                &dataset.labels,
                &dataset.split.train,
            );
            model.backward(&batch, pattern, &dl);
            opt.step(&mut model.params_mut());
        }
        model.set_training(false);
        let logits = model.forward(&batch, pattern);
        let acc = loss::accuracy(&logits, &dataset.labels, Some(&dataset.split.test));
        println!("{label:<10} test acc {acc:.4}");
        results.push((label, acc));
        rows.push(torchgt_compat::json!({"pattern": label, "test_acc": acc}));
    }
    let topo_acc = results[0].1;
    let best_nlp = results[1].1.max(results[2].1);
    assert!(
        topo_acc > best_nlp + 0.03,
        "topology ({topo_acc}) must beat NLP baselines ({best_nlp})"
    );
    println!("\npaper shape check ✓ graph-structure attention beats structure-agnostic baselines");
    dump_json("ablation_nlp_attention", &torchgt_compat::json!(rows));
}
