//! Figure 2: training-iteration time breakdown for Graphormer (GP-FLASH) on
//! ogbn-products at S ∈ {64K…512K}, on RTX 3090 and A100.
//!
//! The paper's finding: attention dominates (> 80%) of iteration time at
//! every sequence length, on both GPUs.

use torchgt_bench::{banner, dump_json, sim_epoch};
use torchgt_comm::ClusterTopology;
use torchgt_perf::{GpuSpec, ModelShape};
use torchgt_sparse::{dense_profile, LayoutKind};

fn main() {
    banner("fig2_breakdown", "Figure 2 — iteration breakdown, Graphormer/ogbn-products, GP-FLASH");
    let shape = ModelShape::graphormer_slim();
    let mut rows = Vec::new();
    for (gpu, topo, label) in [
        (GpuSpec::rtx3090(), ClusterTopology::rtx3090(1), "RTX 3090"),
        (GpuSpec::a100(), ClusterTopology::a100(1), "A100"),
    ] {
        println!("\n--- {label} ---");
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>10}",
            "S", "attn (s)", "other (s)", "total (s)", "attn %"
        );
        for s in [64usize << 10, 128 << 10, 256 << 10, 512 << 10] {
            let (it, _) =
                sim_epoch(gpu, topo, shape, LayoutKind::Flash, s, dense_profile(0), s);
            println!(
                "{:>8} {:>12.4} {:>12.4} {:>12.4} {:>9.1}%",
                format!("{}K", s >> 10),
                it.attention,
                it.other_compute + it.optimizer + it.comm,
                it.total(),
                it.attention_fraction() * 100.0
            );
            rows.push(torchgt_compat::json!({
                "gpu": label, "seq_len": s,
                "attention_s": it.attention,
                "total_s": it.total(),
                "attention_fraction": it.attention_fraction(),
            }));
            assert!(
                it.attention_fraction() > 0.8,
                "paper shape: attention must dominate"
            );
        }
    }
    println!("\npaper shape check ✓ attention > 80% of iteration time everywhere");
    dump_json("fig2_breakdown", &torchgt_compat::json!(rows));
}
