//! Group membership across communicator generations.
//!
//! Real elastic NCCL jobs tear down the communicator and rebuild it over the
//! surviving ranks when a worker is declared dead (`ncclCommAbort` +
//! re-`ncclCommInitRank` with a fresh unique id). [`Membership`] models that
//! lifecycle for the simulated [`crate::DeviceGroup`]: a monotonically
//! increasing *generation* number plus the set of live **global** rank ids.
//!
//! Two rank spaces coexist after a shrink:
//!
//! * **global** ids are stable for the life of the job (`0..initial_world`)
//!   — fault plans, checkpoint layouts, and obs events speak global ids;
//! * **dense** ids are the contiguous `0..live_world` indices the
//!   collectives run over — the j-th live rank in ascending global order.
//!
//! Every message carries the generation it was produced under; a receiver
//! rejects mismatches so a stale rank (one that missed a reformation) can
//! never corrupt an exchange of the new generation.

/// Live-rank set and generation counter for one device group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Membership {
    /// Communicator generation, bumped on every reformation.
    generation: u64,
    /// Live global rank ids, ascending.
    live: Vec<usize>,
    /// World size the group was created with.
    initial_world: usize,
}

impl Membership {
    /// A fresh membership: generation 0, all of `0..world` live.
    pub fn new(world: usize) -> Self {
        assert!(world >= 1, "membership needs at least one rank");
        Self { generation: 0, live: (0..world).collect(), initial_world: world }
    }

    /// Current communicator generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of live ranks.
    pub fn live_world(&self) -> usize {
        self.live.len()
    }

    /// World size at group creation.
    pub fn initial_world(&self) -> usize {
        self.initial_world
    }

    /// Live global rank ids, ascending.
    pub fn live_ranks(&self) -> &[usize] {
        &self.live
    }

    /// Is global rank `rank` live?
    pub fn is_live(&self, rank: usize) -> bool {
        self.live.binary_search(&rank).is_ok()
    }

    /// Dense index (0..live_world) of a live global rank.
    pub fn dense_of(&self, global: usize) -> Option<usize> {
        self.live.binary_search(&global).ok()
    }

    /// Global id of dense rank `dense`.
    pub fn global_of(&self, dense: usize) -> usize {
        self.live[dense]
    }

    /// Declare `global` permanently lost: drop it from the live set and
    /// open a new generation over the survivors. Errors when the rank is
    /// not live or when removing it would empty the group.
    pub fn remove(&mut self, global: usize) -> Result<(), MembershipError> {
        let idx = self
            .live
            .binary_search(&global)
            .map_err(|_| MembershipError::NotLive(global))?;
        if self.live.len() == 1 {
            return Err(MembershipError::WouldEmptyGroup);
        }
        self.live.remove(idx);
        self.generation += 1;
        Ok(())
    }

    /// Re-admit a previously removed rank at an epoch boundary, opening a
    /// new generation. Errors when the rank is already live or was never
    /// part of the original group.
    pub fn readmit(&mut self, global: usize) -> Result<(), MembershipError> {
        if global >= self.initial_world {
            return Err(MembershipError::UnknownRank(global));
        }
        match self.live.binary_search(&global) {
            Ok(_) => Err(MembershipError::AlreadyLive(global)),
            Err(idx) => {
                self.live.insert(idx, global);
                self.generation += 1;
                Ok(())
            }
        }
    }
}

/// Why a membership transition was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipError {
    /// The rank is not in the live set.
    NotLive(usize),
    /// Removing the rank would leave zero live ranks.
    WouldEmptyGroup,
    /// The rank is already live.
    AlreadyLive(usize),
    /// The rank id exceeds the original world size.
    UnknownRank(usize),
}

impl std::fmt::Display for MembershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipError::NotLive(r) => write!(f, "rank {r} is not live"),
            MembershipError::WouldEmptyGroup => write!(f, "cannot remove the last live rank"),
            MembershipError::AlreadyLive(r) => write!(f, "rank {r} is already live"),
            MembershipError::UnknownRank(r) => write!(f, "rank {r} was never in the group"),
        }
    }
}

impl std::error::Error for MembershipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_membership_is_generation_zero_full_world() {
        let m = Membership::new(4);
        assert_eq!(m.generation(), 0);
        assert_eq!(m.live_world(), 4);
        assert_eq!(m.live_ranks(), &[0, 1, 2, 3]);
        assert_eq!(m.initial_world(), 4);
        assert_eq!(m.dense_of(2), Some(2));
    }

    #[test]
    fn remove_bumps_generation_and_renumbers_densely() {
        let mut m = Membership::new(4);
        m.remove(1).unwrap();
        assert_eq!(m.generation(), 1);
        assert_eq!(m.live_ranks(), &[0, 2, 3]);
        // Dense ids compact around the hole; global ids stay stable.
        assert_eq!(m.dense_of(0), Some(0));
        assert_eq!(m.dense_of(2), Some(1));
        assert_eq!(m.dense_of(3), Some(2));
        assert_eq!(m.dense_of(1), None);
        assert_eq!(m.global_of(1), 2);
        assert!(!m.is_live(1));
    }

    #[test]
    fn readmit_restores_rank_and_bumps_generation() {
        let mut m = Membership::new(3);
        m.remove(0).unwrap();
        m.readmit(0).unwrap();
        assert_eq!(m.generation(), 2);
        assert_eq!(m.live_ranks(), &[0, 1, 2]);
        assert_eq!(m.dense_of(0), Some(0));
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let mut m = Membership::new(2);
        assert_eq!(m.remove(5), Err(MembershipError::NotLive(5)));
        assert_eq!(m.readmit(1), Err(MembershipError::AlreadyLive(1)));
        assert_eq!(m.readmit(7), Err(MembershipError::UnknownRank(7)));
        m.remove(0).unwrap();
        assert_eq!(m.remove(1), Err(MembershipError::WouldEmptyGroup));
        assert_eq!(m.generation(), 1, "rejected transitions must not bump the generation");
    }
}
