//! Hierarchical (two-phase) all-to-all.
//!
//! On multi-server clusters a flat all-to-all sends `P−g` small cross-server
//! messages per rank (`g` = GPUs per server). NCCL-style hierarchical
//! algorithms first aggregate intra-server over the fast links, then
//! exchange one *bundled* message per server pair over the slow network,
//! then scatter intra-server — far fewer, larger network messages, a big win
//! in latency-bound regimes. [`hierarchical_all_to_all`] implements the real
//! data movement (equivalence-tested against the flat collective);
//! [`hierarchical_advantage`] prices both on the α–β model.

use crate::collectives::Communicator;
use crate::interconnect::ClusterTopology;

fn frame_one(src: usize, dest: usize, chunk: &[f32]) -> Vec<f32> {
    let mut b = Vec::with_capacity(chunk.len() + 3);
    b.push(src as f32);
    b.push(dest as f32);
    b.push(chunk.len() as f32);
    b.extend_from_slice(chunk);
    b
}

fn unframe_one(buf: &[f32]) -> (usize, usize, Vec<f32>) {
    let src = buf[0] as usize;
    let dest = buf[1] as usize;
    let len = buf[2] as usize;
    (src, dest, buf[3..3 + len].to_vec())
}

/// Split a concatenation of framed chunks.
fn unframe_all(buf: &[f32]) -> Vec<(usize, usize, Vec<f32>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < buf.len() {
        let len = buf[i + 2] as usize;
        out.push(unframe_one(&buf[i..i + 3 + len]));
        i += 3 + len;
    }
    out
}

/// Two-phase all-to-all over a world organised into servers of `group_size`
/// consecutive ranks. Returns exactly what [`Communicator::all_to_all`]
/// returns.
pub fn hierarchical_all_to_all(
    comm: &Communicator,
    chunks: Vec<Vec<f32>>,
    group_size: usize,
) -> Vec<Vec<f32>> {
    let p = comm.world_size();
    assert_eq!(chunks.len(), p);
    assert!(group_size >= 1 && p % group_size == 0, "ranks must fill servers");
    let g = group_size;
    let servers = p / g;
    if servers == 1 {
        return comm.all_to_all(chunks);
    }
    let rank = comm.rank();
    let my_server = rank / g;
    let gateway_for = |s: usize, t: usize| s * g + (t % g);

    let mut out: Vec<Vec<f32>> = (0..p).map(|_| Vec::new()).collect();
    let mut chunks: Vec<Option<Vec<f32>>> = chunks.into_iter().map(Some).collect();
    out[rank] = chunks[rank].take().unwrap();

    // Phase 1: intra-server. Direct delivery inside the server; remote
    // chunks go to the local gateway for their destination server, one
    // framed message per remote server (g chunks bundled).
    for dest in (my_server * g)..((my_server + 1) * g) {
        if dest != rank {
            comm.send_to(dest, chunks[dest].take().unwrap());
        }
    }
    for t in 0..servers {
        if t == my_server {
            continue;
        }
        let mut bundle = Vec::new();
        for local in 0..g {
            let dest = t * g + local;
            bundle.extend(frame_one(rank, dest, chunks[dest].as_ref().unwrap()));
        }
        let gw = gateway_for(my_server, t);
        comm.send_to(gw, bundle); // self-send works (loopback channel)
    }
    for src in (my_server * g)..((my_server + 1) * g) {
        if src != rank {
            out[src] = comm.recv_from(src);
        }
    }

    // Gateways: collect the per-server bundles from every local rank (self
    // included), in (t ascending, src ascending) order — matching the send
    // order above under per-pair FIFO.
    let served: Vec<usize> =
        (0..servers).filter(|&t| t != my_server && gateway_for(my_server, t) == rank).collect();
    let mut outbound: Vec<Vec<f32>> = Vec::new();
    for &t in &served {
        let mut mega = Vec::new();
        for local in 0..g {
            let src = my_server * g + local;
            let buf = comm.recv_from(src);
            mega.extend(buf);
        }
        outbound.push(mega);
        let _ = t;
    }

    // Phase 2: gateway pairs exchange mega-bundles.
    for (i, &t) in served.iter().enumerate() {
        let peer = gateway_for(t, my_server);
        comm.send_to(peer, std::mem::take(&mut outbound[i]));
    }
    // Receive bundles from every remote server's gateway for us, then
    // deliver locally (phase 3).
    for t in 0..servers {
        if t == my_server || gateway_for(my_server, t) != rank {
            continue;
        }
        let peer = gateway_for(t, my_server);
        let mega = comm.recv_from(peer);
        for (src, dest, chunk) in unframe_all(&mega) {
            if dest == rank {
                out[src] = chunk;
            } else {
                comm.send_to(dest, frame_one(src, dest, &chunk));
            }
        }
    }
    // Phase 3 receive: from each remote server t, expect g chunks delivered
    // by our local gateway for t (minus any we already unpacked ourselves).
    for t in 0..servers {
        if t == my_server {
            continue;
        }
        let gw = gateway_for(my_server, t);
        if gw == rank {
            continue; // already delivered above
        }
        for _ in 0..g {
            let buf = comm.recv_from(gw);
            let (src, dest, chunk) = unframe_one(&buf);
            debug_assert_eq!(dest, rank);
            out[src] = chunk;
        }
    }
    out
}

/// Simulated-time comparison `(flat_seconds, hierarchical_seconds)` for a
/// per-rank all-to-all payload of `bytes_per_rank` on a topology.
///
/// "Flat" here is the naive algorithm that pays one network-latency `α` per
/// remote peer message (what a direct P²-message all-to-all does); the
/// hierarchical algorithm's whole point is to aggregate those messages, so
/// the gap is largest for small payloads on high-latency links.
pub fn hierarchical_advantage(topo: &ClusterTopology, bytes_per_rank: usize) -> (f64, f64) {
    let p = topo.world_size();
    let g = topo.gpus_per_server;
    let servers = topo.servers;
    if servers <= 1 {
        let flat = topo.all_to_all_time(bytes_per_rank);
        return (flat, flat);
    }
    let per_peer = bytes_per_rank / p;
    // Naive flat: every remote chunk is its own network message.
    let remote_peers = p - g;
    let flat = remote_peers as f64 * topo.inter.alpha()
        + topo.inter.beta() * (remote_peers * per_peer) as f64
        + (g - 1) as f64 * topo.intra.p2p_time(per_peer);
    // Phase 1: one bundled intra-server message per remote server (g chunks)
    // plus the direct intra-server deliveries.
    let t1 = (servers - 1) as f64 * topo.intra.p2p_time(per_peer * g)
        + (g - 1) as f64 * topo.intra.p2p_time(per_peer);
    // Phase 2: each gateway exchanges ⌈(servers−1)/g⌉ mega-bundles of g²
    // chunks.
    let remote_per_gateway = (servers - 1).div_ceil(g);
    let t2 = remote_per_gateway as f64 * topo.inter.p2p_time(per_peer * g * g);
    // Phase 3 mirrors phase 1's bundled deliveries.
    (flat, t1 + t2 + t1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::DeviceGroup;

    fn reference_all_to_all(p: usize) -> Vec<Vec<Vec<f32>>> {
        // rank r's chunk for dest j = [r*100 + j, r as extra payload…]
        (0..p)
            .map(|j| {
                (0..p)
                    .map(|r| vec![(r * 100 + j) as f32, r as f32, j as f32])
                    .collect()
            })
            .collect()
    }

    fn run_hier(p: usize, g: usize) -> Vec<Vec<Vec<f32>>> {
        let group = DeviceGroup::new(p);
        group.run(|comm| {
            let r = comm.rank();
            let chunks: Vec<Vec<f32>> =
                (0..p).map(|j| vec![(r * 100 + j) as f32, r as f32, j as f32]).collect();
            hierarchical_all_to_all(&comm, chunks, g)
        })
    }

    #[test]
    fn matches_flat_all_to_all_various_shapes() {
        for (p, g) in [(4usize, 2usize), (8, 2), (8, 4), (6, 3), (9, 3)] {
            let expected = reference_all_to_all(p);
            let got = run_hier(p, g);
            for j in 0..p {
                assert_eq!(got[j], expected[j], "p={p} g={g} rank {j}");
            }
        }
    }

    #[test]
    fn single_server_falls_back_to_flat() {
        let expected = reference_all_to_all(4);
        let got = run_hier(4, 4);
        assert_eq!(got, expected);
    }

    #[test]
    fn advantage_on_latency_bound_ethernet() {
        // 3090 servers on 1 GbE with small payloads: fewer, larger network
        // messages must win.
        let topo = ClusterTopology::rtx3090(4);
        let (flat, hier) = hierarchical_advantage(&topo, 8 * 1024);
        assert!(hier < flat, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn single_server_advantage_is_neutral() {
        let topo = ClusterTopology::a100(1);
        let (flat, hier) = hierarchical_advantage(&topo, 1 << 20);
        assert_eq!(flat, hier);
    }
}
