//! Interconnect and cluster-topology cost models.
//!
//! The paper's two testbeds are (§IV, "Testbed"):
//!
//! 1. RTX 3090 servers — 8 GPUs over PCIe 4.0 ×16, servers linked by 1 Gbps
//!    Ethernet;
//! 2. A100 servers — 8 GPUs over NVLink, servers linked by 200 Gbps
//!    InfiniBand.
//!
//! Collective times follow the standard α–β model: a message of `b` bytes
//! over a link costs `α + β·b` where `α` is latency and `β = 1/bandwidth`.


torchgt_compat::json_enum! {
    /// A point-to-point link type with published latency/bandwidth figures.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub enum Interconnect {
        /// PCIe 4.0 ×16: ~32 GB/s, ~5 µs.
        Pcie4x16,
        /// NVLink (A100, aggregated): ~300 GB/s effective per pair, ~2 µs.
        NvLink,
        /// 1 Gbps Ethernet: 125 MB/s, ~50 µs.
        Ethernet1G,
        /// 200 Gbps InfiniBand: 25 GB/s, ~2 µs.
        Infiniband200G,
    }
}

impl Interconnect {
    /// Per-message latency α in seconds.
    pub fn alpha(self) -> f64 {
        match self {
            Interconnect::Pcie4x16 => 5e-6,
            Interconnect::NvLink => 2e-6,
            Interconnect::Ethernet1G => 50e-6,
            Interconnect::Infiniband200G => 2e-6,
        }
    }

    /// Inverse bandwidth β in seconds/byte.
    pub fn beta(self) -> f64 {
        match self {
            Interconnect::Pcie4x16 => 1.0 / 32e9,
            Interconnect::NvLink => 1.0 / 300e9,
            Interconnect::Ethernet1G => 1.0 / 0.125e9,
            Interconnect::Infiniband200G => 1.0 / 25e9,
        }
    }

    /// Time to move `bytes` point-to-point.
    pub fn p2p_time(self, bytes: usize) -> f64 {
        self.alpha() + self.beta() * bytes as f64
    }
}

/// Abstract α–β cost model of a cluster interconnect: the hook the perf
/// layer's overlap-aware iteration model plugs into. [`ClusterTopology`]
/// is the canonical implementation; analyses that want a hypothetical
/// fabric (or a measured one) implement this instead of hardcoding link
/// constants.
pub trait InterconnectModel {
    /// Number of ranks the model spans.
    fn world_size(&self) -> usize;
    /// Simulated time for one all-to-all moving `bytes_per_rank` per rank.
    fn all_to_all_time(&self, bytes_per_rank: usize) -> f64;
    /// Simulated time for an all-gather of `bytes_per_rank` from each rank.
    fn all_gather_time(&self, bytes_per_rank: usize) -> f64;
    /// Simulated time for a ring all-reduce over `bytes` per rank.
    fn all_reduce_time(&self, bytes: usize) -> f64;
    /// Simulated time for a ring reduce-scatter over `bytes` per rank.
    fn reduce_scatter_time(&self, bytes: usize) -> f64;
}

impl InterconnectModel for ClusterTopology {
    fn world_size(&self) -> usize {
        ClusterTopology::world_size(self)
    }

    fn all_to_all_time(&self, bytes_per_rank: usize) -> f64 {
        ClusterTopology::all_to_all_time(self, bytes_per_rank)
    }

    fn all_gather_time(&self, bytes_per_rank: usize) -> f64 {
        ClusterTopology::all_gather_time(self, bytes_per_rank)
    }

    fn all_reduce_time(&self, bytes: usize) -> f64 {
        ClusterTopology::all_reduce_time(self, bytes)
    }

    fn reduce_scatter_time(&self, bytes: usize) -> f64 {
        ClusterTopology::reduce_scatter_time(self, bytes)
    }
}

torchgt_compat::json_struct! {
    /// A multi-server GPU cluster layout.
    #[derive(Clone, Copy, Debug)]
    pub struct ClusterTopology {
        /// GPUs per server.
        pub gpus_per_server: usize,
        /// Number of servers.
        pub servers: usize,
        /// Intra-server link.
        pub intra: Interconnect,
        /// Inter-server link.
        pub inter: Interconnect,
    }
}

impl ClusterTopology {
    /// Paper testbed ① : RTX 3090 servers (PCIe intra, 1 GbE inter).
    pub fn rtx3090(servers: usize) -> Self {
        Self {
            gpus_per_server: 8,
            servers,
            intra: Interconnect::Pcie4x16,
            inter: Interconnect::Ethernet1G,
        }
    }

    /// Paper testbed ② : A100 servers (NVLink intra, 200 Gb IB inter).
    pub fn a100(servers: usize) -> Self {
        Self {
            gpus_per_server: 8,
            servers,
            intra: Interconnect::NvLink,
            inter: Interconnect::Infiniband200G,
        }
    }

    /// Total GPU count `P`.
    pub fn world_size(&self) -> usize {
        self.gpus_per_server * self.servers
    }

    /// Slowest link a pairwise exchange crosses when ranks span servers.
    pub fn bottleneck(&self) -> Interconnect {
        if self.servers > 1 {
            self.inter
        } else {
            self.intra
        }
    }

    /// Simulated time for one **all-to-all** where every rank exchanges
    /// `bytes_per_rank` in total (i.e. `bytes_per_rank / P` with each peer).
    ///
    /// This is the collective behind Cluster-aware Graph Parallelism: per-GPU
    /// volume `O(S/P)`, the paper's §III-C complexity analysis.
    pub fn all_to_all_time(&self, bytes_per_rank: usize) -> f64 {
        let p = self.world_size();
        if p <= 1 {
            return 0.0;
        }
        let per_peer = bytes_per_rank / p;
        // Peers on the same server go over `intra`, cross-server peers over
        // `inter`; exchanges proceed in parallel, so the time is the max of
        // the two serialized phases.
        let local_peers = self.gpus_per_server.min(p) - 1;
        let remote_peers = p - 1 - local_peers;
        let t_local = local_peers as f64 * self.intra.p2p_time(per_peer);
        // Cross-server traffic shares the server NIC: all remote bytes from
        // the rank's server funnel through one link.
        let t_remote = if remote_peers > 0 {
            self.inter.alpha() * (remote_peers as f64 / self.gpus_per_server as f64).max(1.0)
                + self.inter.beta() * (remote_peers * per_peer) as f64
        } else {
            0.0
        };
        t_local.max(t_remote)
    }

    /// Simulated time for an **all-gather** of `bytes_per_rank` from every
    /// rank (ring algorithm): each rank ends with `P × bytes_per_rank`.
    /// Communication complexity `O(S)` — this is why the paper prefers
    /// all-to-all.
    pub fn all_gather_time(&self, bytes_per_rank: usize) -> f64 {
        let p = self.world_size();
        if p <= 1 {
            return 0.0;
        }
        let link = self.bottleneck();
        (p - 1) as f64 * link.p2p_time(bytes_per_rank)
    }

    /// Simulated time for a ring **all-reduce** over `bytes` per rank
    /// (2(P−1)/P × bytes over the slowest link).
    pub fn all_reduce_time(&self, bytes: usize) -> f64 {
        let p = self.world_size();
        if p <= 1 {
            return 0.0;
        }
        let link = self.bottleneck();
        let steps = 2 * (p - 1);
        let chunk = bytes / p;
        steps as f64 * link.p2p_time(chunk.max(1))
    }

    /// Simulated time for a **reduce-scatter** (ring, (P−1)/P × bytes).
    pub fn reduce_scatter_time(&self, bytes: usize) -> f64 {
        let p = self.world_size();
        if p <= 1 {
            return 0.0;
        }
        let link = self.bottleneck();
        let chunk = bytes / p;
        (p - 1) as f64 * link.p2p_time(chunk.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_parameters_are_ordered_sanely() {
        // NVLink is the fastest, 1GbE the slowest.
        assert!(Interconnect::NvLink.beta() < Interconnect::Pcie4x16.beta());
        assert!(Interconnect::Pcie4x16.beta() < Interconnect::Ethernet1G.beta());
        assert!(Interconnect::Infiniband200G.beta() < Interconnect::Ethernet1G.beta());
    }

    #[test]
    fn p2p_time_scales_with_bytes() {
        let l = Interconnect::Pcie4x16;
        assert!(l.p2p_time(1 << 20) < l.p2p_time(1 << 24));
        // 1 GiB over 32 GB/s ≈ 33 ms.
        let t = l.p2p_time(1 << 30);
        assert!((0.02..0.05).contains(&t), "t = {t}");
    }

    #[test]
    fn single_gpu_collectives_are_free() {
        let topo = ClusterTopology { gpus_per_server: 1, servers: 1, ..ClusterTopology::a100(1) };
        assert_eq!(topo.all_to_all_time(1 << 20), 0.0);
        assert_eq!(topo.all_reduce_time(1 << 20), 0.0);
    }

    #[test]
    fn all_to_all_beats_all_gather_for_same_payload() {
        // The paper's §III-C claim: all-to-all is O(S/P) per GPU while
        // all-gather is O(S).
        let topo = ClusterTopology::a100(1);
        let bytes = 64 << 20;
        assert!(topo.all_to_all_time(bytes) < topo.all_gather_time(bytes));
    }

    #[test]
    fn multi_server_pays_ethernet_penalty_on_3090() {
        let one = ClusterTopology::rtx3090(1);
        let two = ClusterTopology::rtx3090(2);
        let bytes = 16 << 20;
        assert!(two.all_to_all_time(bytes) > 5.0 * one.all_to_all_time(bytes));
    }

    #[test]
    fn a100_multi_server_scales_gently() {
        let b = 64 << 20;
        let t2 = ClusterTopology::a100(2).all_to_all_time(b);
        let t8 = ClusterTopology::a100(8).all_to_all_time(b);
        // More servers spread the same per-rank volume: should not blow up.
        assert!(t8 < t2 * 4.0, "t2={t2}, t8={t8}");
    }

    #[test]
    fn world_size() {
        assert_eq!(ClusterTopology::a100(3).world_size(), 24);
    }
}
