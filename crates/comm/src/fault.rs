//! Deterministic, seeded fault injection for the simulated device group.
//!
//! Real NCCL jobs see delayed messages, dropped packets (retried by the
//! transport), and hard rank failures that abort the whole communicator.
//! [`FaultPlan`] reproduces all three against the channel mesh, keeping
//! every decision a pure function of `(seed, rank, op index)` so a faulty
//! run is exactly replayable:
//!
//! * **delay** — with probability `delay_prob`, a point-to-point send
//!   sleeps `delay_s` before enqueueing (numerics unchanged);
//! * **drop** — with probability `drop_prob`, a send is "lost" and retried
//!   after a receiver-side timeout, modelled sender-side as
//!   `retry_backoff_s` of latency per lost attempt (bounded by
//!   `max_retries`, after which the attempt always succeeds — the message
//!   is never silently lost, matching a reliable transport);
//! * **crash** — at the [`CrashPoint`]'s nth collective op on the chosen
//!   rank, the rank panics with a [`RankCrash`] payload. Peer ranks then
//!   fail their blocking receives ("peer hung up"), cascading exactly like
//!   a NCCL communicator abort. The crash is one-shot: a re-run of the
//!   same group (the recovery attempt) proceeds clean.
//!
//! Delay and drop never alter delivered data or ordering, so a faulty run
//! converges to bit-identical results — the point being reproduced is the
//! *schedule* surviving faults, not numerical drift. Every injected fault
//! is recorded as a `torchgt-obs` event on the group's recorder.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Where an injected rank crash fires: the `op`-th collective invocation
/// (0-based, counting nested collectives) on rank `rank`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// Rank that crashes.
    pub rank: usize,
    /// Collective-op index on that rank at which the crash fires.
    pub op: u64,
}

/// A deterministic fault schedule for one device group.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed all per-op fault decisions derive from.
    pub seed: u64,
    /// Per-send probability of an injected delay.
    pub delay_prob: f64,
    /// Duration of each injected delay, seconds.
    pub delay_s: f64,
    /// Per-send probability that an attempt is dropped.
    pub drop_prob: f64,
    /// Maximum lost attempts per message; the next attempt always succeeds.
    pub max_retries: u32,
    /// Latency charged per lost attempt (the receiver's timeout), seconds.
    pub retry_backoff_s: f64,
    /// Optional hard rank failure.
    pub crash: Option<CrashPoint>,
    /// Optional straggler: this global rank sleeps `slow_delay_s` before
    /// *every* send (deterministic, no probability — models a uniformly
    /// slow worker for the watchdog to flag).
    pub slow_rank: Option<usize>,
    /// Per-send slowdown of the straggler rank, seconds.
    pub slow_delay_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            delay_prob: 0.0,
            delay_s: 0.0,
            drop_prob: 0.0,
            max_retries: 3,
            retry_backoff_s: 0.0,
            crash: None,
            slow_rank: None,
            slow_delay_s: 0.0,
        }
    }
}

impl FaultPlan {
    /// Delay-only plan: each send delayed `delay_s` with probability `prob`.
    pub fn delays(seed: u64, prob: f64, delay_s: f64) -> Self {
        Self { seed, delay_prob: prob, delay_s, ..Self::default() }
    }

    /// Drop-only plan: each send attempt lost with probability `prob`,
    /// retried up to `max_retries` times.
    pub fn drops(seed: u64, prob: f64, max_retries: u32) -> Self {
        Self { seed, drop_prob: prob, max_retries, ..Self::default() }
    }

    /// Crash-only plan: rank `rank` dies at its `op`-th collective.
    pub fn crash_at(seed: u64, rank: usize, op: u64) -> Self {
        Self { seed, crash: Some(CrashPoint { rank, op }), ..Self::default() }
    }

    /// Straggler-only plan: global rank `rank` sleeps `delay_s` before
    /// every send.
    pub fn slow(rank: usize, delay_s: f64) -> Self {
        Self { slow_rank: Some(rank), slow_delay_s: delay_s, ..Self::default() }
    }

    /// Build a plan from the comm domain of a parsed
    /// [`torchgt_faults::FaultSpec`] (the `TORCHGT_FAULTS` / `--faults`
    /// wiring): delays, drops, and the deterministic straggler map
    /// one-to-one; crashes stay CLI-flag territory.
    pub fn from_spec(seed: u64, spec: &torchgt_faults::CommFaultSpec) -> Self {
        Self {
            seed,
            delay_prob: spec.delay_prob,
            delay_s: spec.delay_s,
            drop_prob: spec.drop_prob,
            slow_rank: spec.slow_rank,
            slow_delay_s: spec.slow_delay_s,
            ..Self::default()
        }
    }

    /// True when the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.delay_prob > 0.0
            || self.drop_prob > 0.0
            || self.crash.is_some()
            || (self.slow_rank.is_some() && self.slow_delay_s > 0.0)
    }
}

/// Panic payload of an injected rank crash (callers of
/// [`crate::DeviceGroup::try_run`] get it back as
/// [`RankFailure::Crash`](crate::RankFailure)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankCrash {
    /// The rank that crashed.
    pub rank: usize,
    /// The collective-op index at which it crashed.
    pub op: u64,
}

/// Shared fault bookkeeping for one device group: the plan plus per-rank
/// op counters (reset each run) and the one-shot crash arm.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    /// Per-rank collective-op counters.
    pub(crate) collective_ops: Vec<AtomicU64>,
    /// Per-rank point-to-point send counters.
    pub(crate) send_ops: Vec<AtomicU64>,
    /// Per-rank accumulated injected send delay, microseconds (the
    /// straggler watchdog's ledger; reset each run).
    pub(crate) delay_us: Vec<AtomicU64>,
    /// Cleared when the crash fires so the recovery run proceeds clean.
    pub(crate) crash_armed: AtomicBool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, world: usize) -> Self {
        Self {
            plan,
            collective_ops: (0..world).map(|_| AtomicU64::new(0)).collect(),
            send_ops: (0..world).map(|_| AtomicU64::new(0)).collect(),
            delay_us: (0..world).map(|_| AtomicU64::new(0)).collect(),
            crash_armed: AtomicBool::new(plan.crash.is_some()),
        }
    }

    /// Reset per-run counters (each `run`/`try_run` replays op indices from
    /// 0; the crash arm deliberately survives so it fires once per plan).
    pub(crate) fn reset_counters(&self) {
        for c in self.collective_ops.iter().chain(&self.send_ops).chain(&self.delay_us) {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Charge `seconds` of injected delay to `rank`'s straggler ledger.
    pub(crate) fn add_delay_s(&self, rank: usize, seconds: f64) {
        let us = (seconds * 1e6) as u64;
        self.delay_us[rank].fetch_add(us, Ordering::Relaxed);
    }

    /// Injected delay accumulated by `rank` since the last reset, seconds.
    pub(crate) fn delay_s(&self, rank: usize) -> f64 {
        self.delay_us[rank].load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Next collective-op index for `rank`.
    pub(crate) fn next_collective_op(&self, rank: usize) -> u64 {
        self.collective_ops[rank].fetch_add(1, Ordering::Relaxed)
    }

    /// Next send-op index for `rank`.
    pub(crate) fn next_send_op(&self, rank: usize) -> u64 {
        self.send_ops[rank].fetch_add(1, Ordering::Relaxed)
    }

    /// Fire the one-shot crash if `rank`/`op` match the plan.
    pub(crate) fn should_crash(&self, rank: usize, op: u64) -> bool {
        match self.plan.crash {
            Some(cp) if cp.rank == rank && cp.op == op => {
                self.crash_armed.swap(false, Ordering::SeqCst)
            }
            _ => false,
        }
    }
}

/// Deterministic fault decision: a pure hash of `(seed, rank, op, salt)`
/// mapped to `[0, 1)` and compared against `prob`. Delegates to the shared
/// fault plane (`torchgt-faults`), whose comm domain keys on rank exactly
/// as this crate always has — the decision stream is bit-identical to the
/// pre-extraction implementation.
pub(crate) fn decide(seed: u64, rank: usize, op: u64, salt: u64, prob: f64) -> bool {
    torchgt_faults::decide(seed, rank as u64, op, salt, prob)
}

/// Salt for delay decisions.
pub(crate) const SALT_DELAY: u64 = torchgt_faults::SALT_DELAY;
/// Salt for drop decisions (combined with the attempt number).
pub(crate) const SALT_DROP: u64 = torchgt_faults::SALT_DROP;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_distinct() {
        for rank in 0..4 {
            for op in 0..64 {
                assert_eq!(
                    decide(7, rank, op, SALT_DELAY, 0.3),
                    decide(7, rank, op, SALT_DELAY, 0.3),
                );
            }
        }
        // Different seeds / salts give different streams somewhere.
        let a: Vec<bool> = (0..256).map(|op| decide(7, 0, op, SALT_DELAY, 0.5)).collect();
        let b: Vec<bool> = (0..256).map(|op| decide(8, 0, op, SALT_DELAY, 0.5)).collect();
        let c: Vec<bool> = (0..256).map(|op| decide(7, 0, op, SALT_DROP, 0.5)).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn probability_roughly_respected() {
        let hits = (0..10_000).filter(|&op| decide(42, 1, op, SALT_DROP, 0.2)).count();
        assert!((1_500..2_500).contains(&hits), "0.2 prob gave {hits}/10000 hits");
    }

    #[test]
    fn edge_probabilities() {
        assert!(!decide(1, 0, 0, 0, 0.0));
        assert!(decide(1, 0, 0, 0, 1.0));
    }

    #[test]
    fn crash_is_one_shot() {
        let st = FaultState::new(FaultPlan::crash_at(1, 2, 5), 4);
        assert!(!st.should_crash(2, 4));
        assert!(!st.should_crash(1, 5));
        assert!(st.should_crash(2, 5));
        assert!(!st.should_crash(2, 5), "second firing must be suppressed");
    }

    #[test]
    fn counters_reset_but_crash_arm_survives() {
        let st = FaultState::new(FaultPlan::crash_at(1, 0, 3), 2);
        assert_eq!(st.next_collective_op(0), 0);
        assert_eq!(st.next_collective_op(0), 1);
        st.reset_counters();
        assert_eq!(st.next_collective_op(0), 0);
        assert!(st.should_crash(0, 3));
        st.reset_counters();
        assert!(!st.should_crash(0, 3), "crash arm must not re-arm on reset");
    }
}
