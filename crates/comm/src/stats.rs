//! Communication-volume accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Collective operation kinds tracked by [`CommStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// All-to-all exchange.
    AllToAll,
    /// All-gather.
    AllGather,
    /// All-reduce.
    AllReduce,
    /// Reduce-scatter.
    ReduceScatter,
    /// Broadcast.
    Broadcast,
    /// Barrier.
    Barrier,
}

impl CollectiveKind {
    /// Every tracked kind, in index order.
    pub const ALL: [CollectiveKind; 6] = [
        CollectiveKind::AllToAll,
        CollectiveKind::AllGather,
        CollectiveKind::AllReduce,
        CollectiveKind::ReduceScatter,
        CollectiveKind::Broadcast,
        CollectiveKind::Barrier,
    ];

    /// Stable snake_case label — the key used by recorder exports
    /// (`torchgt_obs::CollectiveStat::kind`).
    pub fn label(self) -> &'static str {
        match self {
            CollectiveKind::AllToAll => "all_to_all",
            CollectiveKind::AllGather => "all_gather",
            CollectiveKind::AllReduce => "all_reduce",
            CollectiveKind::ReduceScatter => "reduce_scatter",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Barrier => "barrier",
        }
    }

    fn index(self) -> usize {
        match self {
            CollectiveKind::AllToAll => 0,
            CollectiveKind::AllGather => 1,
            CollectiveKind::AllReduce => 2,
            CollectiveKind::ReduceScatter => 3,
            CollectiveKind::Broadcast => 4,
            CollectiveKind::Barrier => 5,
        }
    }
}

/// Thread-safe counters shared by all ranks of a device group.
#[derive(Debug, Default)]
pub struct CommStats {
    bytes_sent: AtomicU64,
    ops: [AtomicU64; 6],
    wire_bytes: [AtomicU64; 6],
    retries: AtomicU64,
}

impl CommStats {
    /// Record `bytes` of payload leaving a rank.
    pub fn record_bytes(&self, bytes: usize) {
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record `n` retransmissions caused by injected message drops.
    pub fn record_retries(&self, n: u64) {
        self.retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Total retransmissions across all ranks (0 without fault injection).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Record one collective invocation (counted once per participating
    /// rank).
    pub fn record_op(&self, kind: CollectiveKind) {
        self.ops[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Attribute `bytes` of cross-link traffic to a collective kind
    /// (counted at the sending rank, so group-wide sums don't double-count).
    pub fn record_wire_bytes(&self, kind: CollectiveKind, bytes: usize) {
        self.wire_bytes[kind.index()].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Total bytes sent across all ranks.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Per-rank invocation count of a collective kind.
    pub fn ops(&self, kind: CollectiveKind) -> u64 {
        self.ops[kind.index()].load(Ordering::Relaxed)
    }

    /// Cross-link bytes attributed to a collective kind.
    pub fn wire_bytes(&self, kind: CollectiveKind) -> u64 {
        self.wire_bytes[kind.index()].load(Ordering::Relaxed)
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        for o in &self.ops {
            o.store(0, Ordering::Relaxed);
        }
        for b in &self.wire_bytes {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = CommStats::default();
        s.record_bytes(100);
        s.record_bytes(28);
        s.record_op(CollectiveKind::AllToAll);
        s.record_op(CollectiveKind::AllToAll);
        s.record_op(CollectiveKind::Barrier);
        s.record_wire_bytes(CollectiveKind::AllToAll, 96);
        assert_eq!(s.bytes_sent(), 128);
        assert_eq!(s.ops(CollectiveKind::AllToAll), 2);
        assert_eq!(s.ops(CollectiveKind::Barrier), 1);
        assert_eq!(s.ops(CollectiveKind::Broadcast), 0);
        assert_eq!(s.wire_bytes(CollectiveKind::AllToAll), 96);
        assert_eq!(s.wire_bytes(CollectiveKind::Barrier), 0);
        s.reset();
        assert_eq!(s.bytes_sent(), 0);
        assert_eq!(s.ops(CollectiveKind::AllToAll), 0);
        assert_eq!(s.wire_bytes(CollectiveKind::AllToAll), 0);
    }

    #[test]
    fn labels_are_snake_case_and_unique() {
        let labels: Vec<&str> = CollectiveKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels[0], "all_to_all");
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
