//! # torchgt-comm
//!
//! Simulated multi-GPU communication for the TorchGT reproduction: real
//! data-movement collectives where every rank is a thread
//! ([`collectives::DeviceGroup`]), α–β interconnect cost models matching the
//! paper's two testbeds ([`interconnect`]), and volume accounting
//! ([`stats`]).

pub mod collectives;
pub mod hierarchical;
pub mod interconnect;
pub mod stats;

pub use collectives::{Communicator, DeviceGroup};
pub use hierarchical::{hierarchical_all_to_all, hierarchical_advantage};
pub use interconnect::{ClusterTopology, Interconnect};
pub use stats::{CollectiveKind, CommStats};
