//! # torchgt-comm
//!
//! Simulated multi-GPU communication for the TorchGT reproduction: real
//! data-movement collectives where every rank is a thread
//! ([`collectives::DeviceGroup`]), α–β interconnect cost models matching the
//! paper's two testbeds ([`interconnect`]), volume accounting ([`stats`]),
//! deterministic fault injection — message delay, drop-with-retry, straggler
//! slowdown, and rank crashes ([`fault`]) — and elastic group membership
//! with generation-tagged collectives ([`membership`]).

pub mod collectives;
pub mod fault;
pub mod hierarchical;
pub mod interconnect;
pub mod membership;
pub mod stats;

pub use collectives::{Communicator, DeviceGroup, PendingCollective, RankFailure, StragglerReport};
pub use fault::{CrashPoint, FaultPlan, RankCrash};
pub use hierarchical::{hierarchical_all_to_all, hierarchical_advantage};
pub use interconnect::{ClusterTopology, Interconnect, InterconnectModel};
pub use membership::{Membership, MembershipError};
pub use stats::{CollectiveKind, CommStats};
