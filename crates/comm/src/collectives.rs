//! Real data-movement collectives over simulated devices.
//!
//! The paper runs NCCL collectives across 8–64 GPUs. Here each *rank* is a
//! thread and each link is a crossbeam channel, so the collectives genuinely
//! move data (the runtime's distributed forward pass is checked against the
//! single-device forward bit-for-bit), while the α–β models in
//! [`crate::interconnect`] supply the simulated wall-clock the experiment
//! harnesses report.

use crate::fault::{decide, FaultPlan, FaultState, RankCrash, SALT_DELAY, SALT_DROP};
use crate::membership::{Membership, MembershipError};
use crate::stats::{CollectiveKind, CommStats};
use std::cell::OnceCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use torchgt_compat::sync::channel::{unbounded, Receiver, Sender};
use torchgt_obs::{Event, RecorderHandle};

/// One wire message: the payload plus the communicator generation it was
/// produced under. A receiver of a different generation rejects it — a
/// stale rank that missed a group reformation can never corrupt an
/// exchange of the new generation (the simulated analogue of NCCL's
/// communicator-id mismatch abort).
struct Msg {
    generation: u64,
    data: Vec<f32>,
}

/// One send handed to the communicator's background worker: the wire
/// message plus the injected fault latency already decided for it (all
/// fault *decisions* and ledger updates happen in the issuing thread; the
/// worker only serves the latency and pushes the message).
struct SendJob {
    peer: usize,
    msg: Msg,
    /// Total injected latency to serve before the send, microseconds.
    sleep_us: u64,
}

/// How a collective's sends are issued. `Inline` serves injected fault
/// latency on the calling thread before each send — the synchronous
/// schedule every blocking method keeps. `Background` hands the sends to
/// the communicator's worker thread so the caller can run independent
/// compute between `*_begin` and [`PendingCollective::wait`], overlapping
/// its own send latency the way an async NCCL launch overlaps the NIC.
#[derive(Clone, Copy, PartialEq, Eq)]
enum IssueMode {
    Inline,
    Background,
}

/// An in-flight collective returned by the `*_begin` methods. The sends
/// are already issued (over the background worker); the receives and any
/// reduction run when [`PendingCollective::wait`] is called, which every
/// handle **must** be — dropping one un-awaited panics loudly, because a
/// skipped completion desynchronizes the SPMD schedule for every peer.
///
/// The blocking collectives are literally `begin(...).wait()` with inline
/// issue, so waiting immediately reproduces the synchronous path
/// bit-for-bit.
pub struct PendingCollective<'c, T> {
    label: &'static str,
    complete: Option<Box<dyn FnOnce() -> T + 'c>>,
}

impl<'c, T> PendingCollective<'c, T> {
    fn new(label: &'static str, complete: impl FnOnce() -> T + 'c) -> Self {
        Self { label, complete: Some(Box::new(complete)) }
    }

    /// Block until the collective completes and return its result. The
    /// result is bit-identical to the blocking call's under the same
    /// fault plan: faults and overlap perturb the schedule, never the
    /// numerics.
    pub fn wait(mut self) -> T {
        (self.complete.take().expect("PendingCollective waited twice"))()
    }
}

impl<T> Drop for PendingCollective<'_, T> {
    fn drop(&mut self) {
        // Suppressed while unwinding (e.g. an injected RankCrash between
        // begin and wait) so the original panic is not turned into an
        // abort by a second one.
        if self.complete.is_some() && !std::thread::panicking() {
            panic!(
                "PendingCollective `{}` dropped without wait(): \
                 every begun collective must be awaited",
                self.label
            );
        }
    }
}

/// Per-rank handle for collective communication within a device group.
pub struct Communicator {
    /// Dense rank id: contiguous `0..live_world` for this generation.
    rank: usize,
    /// Stable global rank id (`0..initial_world`), survives reformations.
    global_rank: usize,
    world: usize,
    /// Membership generation this communicator belongs to.
    generation: u64,
    /// `senders[j]` transmits to dense rank `j` (entry for self is unused).
    senders: Vec<Sender<Msg>>,
    /// `receivers[j]` receives from dense rank `j`.
    receivers: Vec<Receiver<Msg>>,
    stats: Arc<CommStats>,
    /// Volume ledger of the current generation only (rolled up on close).
    gen_stats: Arc<CommStats>,
    recorder: RecorderHandle,
    /// Fault-injection bookkeeping shared by the whole group (`None` in a
    /// fault-free group: the common path pays one branch).
    fault: Option<Arc<FaultState>>,
    /// Job queue of the lazily spawned background send worker (the async
    /// `*_begin` issue path). Fault-free synchronous groups never spawn it.
    worker: OnceCell<Sender<SendJob>>,
    /// Sends handed to the worker and not yet on the wire. While nonzero,
    /// inline sends are routed through the worker too, preserving per-peer
    /// FIFO order between the two issue paths.
    pending_sends: Arc<AtomicU64>,
}

impl Communicator {
    /// This rank's dense id within the current generation.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This rank's stable global id (equal to [`Communicator::rank`] until
    /// the group shrinks).
    pub fn global_rank(&self) -> usize {
        self.global_rank
    }

    /// The membership generation this communicator was built for.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of live ranks in this generation.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Shared volume statistics for the whole group.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Fault-injection aid: pretend this rank belongs to generation `gen`
    /// from now on. Its next send carries the forged tag and the receiver
    /// aborts the exchange — used to test stale-rank rejection.
    pub fn forge_generation(&mut self, gen: u64) {
        self.generation = gen;
    }

    /// Account one collective invocation: `payload` is the logical volume
    /// this rank handles, `wire` the part it actually sends across links
    /// (sender-side counting — group-wide sums don't double-count).
    fn account(&self, kind: CollectiveKind, payload: usize, wire: usize) {
        self.fault_tick();
        self.stats.record_op(kind);
        self.gen_stats.record_op(kind);
        if wire > 0 {
            self.stats.record_wire_bytes(kind, wire);
            self.gen_stats.record_wire_bytes(kind, wire);
        }
        if self.recorder.enabled() {
            self.recorder.collective(kind.label(), 1, payload as u64, wire as u64);
        }
    }

    /// One collective invocation on this rank: advance the fault-plan op
    /// counter and fire an injected crash if this is the chosen op. The
    /// panic payload is a [`RankCrash`]; [`DeviceGroup::try_run`] converts
    /// it into a per-rank error while peers cascade-fail their receives,
    /// mirroring a NCCL communicator abort. Fault bookkeeping is keyed on
    /// the *global* rank so a plan keeps naming the same physical worker
    /// across reformations.
    fn fault_tick(&self) {
        let Some(fs) = &self.fault else { return };
        let op = fs.next_collective_op(self.global_rank);
        if fs.should_crash(self.global_rank, op) {
            if self.recorder.enabled() {
                self.recorder.event(Event::rank_crash(self.global_rank, op));
            }
            std::panic::panic_any(RankCrash { rank: self.global_rank, op });
        }
    }

    /// Injected per-send faults: seeded delay, deterministic straggler
    /// slowdown, and drop-with-retry. None of them changes what is
    /// ultimately delivered or its order — faults perturb the schedule,
    /// never the numerics. All *decisions* and bookkeeping (send-op
    /// allocation, straggler ledger, retry counters, obs events) happen
    /// here in the issuing thread so the fault schedule is a pure function
    /// of the plan regardless of issue mode; only the decided latency
    /// (returned in microseconds) moves to the worker in background mode.
    fn plan_send_faults(&self, peer: usize) -> u64 {
        let Some(fs) = &self.fault else { return 0 };
        let plan: &FaultPlan = &fs.plan;
        let slow = plan.slow_rank == Some(self.global_rank) && plan.slow_delay_s > 0.0;
        if !slow && plan.delay_prob <= 0.0 && plan.drop_prob <= 0.0 {
            return 0;
        }
        let op = fs.next_send_op(self.global_rank);
        let mut sleep_s = 0.0;
        if slow {
            sleep_s += plan.slow_delay_s;
            fs.add_delay_s(self.global_rank, plan.slow_delay_s);
        }
        if decide(plan.seed, self.global_rank, op, SALT_DELAY, plan.delay_prob) {
            if plan.delay_s > 0.0 {
                sleep_s += plan.delay_s;
                fs.add_delay_s(self.global_rank, plan.delay_s);
            }
            if self.recorder.enabled() {
                self.recorder.event(Event::fault_delay(self.global_rank, peer, op, plan.delay_s));
            }
        }
        let mut lost = 0u64;
        while lost < plan.max_retries as u64
            && decide(plan.seed, self.global_rank, op ^ (lost << 32), SALT_DROP, plan.drop_prob)
        {
            // The receiver times out waiting for the lost attempt; the
            // retransmission then goes through. Modelled sender-side as
            // backoff latency so no extra message ever hits the wire.
            lost += 1;
            if plan.retry_backoff_s > 0.0 {
                sleep_s += plan.retry_backoff_s;
            }
        }
        if lost > 0 {
            self.stats.record_retries(lost);
            if self.recorder.enabled() {
                self.recorder.event(Event::fault_drop(self.global_rank, peer, op, lost));
            }
        }
        (sleep_s * 1e6) as u64
    }

    /// The background send worker's job queue, spawned on first use. The
    /// worker owns clones of every outbound link; it serves each job's
    /// injected latency, then pushes the message. Dropping this
    /// communicator closes the queue, the worker drains what is left and
    /// exits, and only then do its link clones drop — so the "peer hung
    /// up" crash cascade fires exactly as it does on the inline path.
    fn worker_tx(&self) -> &Sender<SendJob> {
        self.worker.get_or_init(|| {
            let (tx, rx) = unbounded::<SendJob>();
            let senders = self.senders.clone();
            let pending = Arc::clone(&self.pending_sends);
            std::thread::spawn(move || {
                while let Ok(SendJob { peer, msg, sleep_us }) = rx.recv() {
                    if sleep_us > 0 {
                        std::thread::sleep(std::time::Duration::from_micros(sleep_us));
                    }
                    // A hung-up peer is reported by the receiving side of
                    // the exchange (the blocking recv), never the worker.
                    let _ = senders[peer].send(msg);
                    pending.fetch_sub(1, Ordering::AcqRel);
                }
            });
            tx
        })
    }

    /// Issue one point-to-point send in the given mode. Volume accounting
    /// and fault bookkeeping always happen in the calling thread; only
    /// where the injected latency is served differs between modes.
    fn issue_send(&self, peer: usize, data: Vec<f32>, mode: IssueMode) {
        let sleep_us = self.plan_send_faults(peer);
        self.stats.record_bytes(data.len() * 4);
        self.gen_stats.record_bytes(data.len() * 4);
        let msg = Msg { generation: self.generation, data };
        let background = mode == IssueMode::Background
            || self.pending_sends.load(Ordering::Acquire) > 0;
        if background {
            self.pending_sends.fetch_add(1, Ordering::AcqRel);
            self.worker_tx()
                .send(SendJob { peer, msg, sleep_us })
                .expect("send worker hung up");
        } else {
            if sleep_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(sleep_us));
            }
            self.senders[peer].send(msg).expect("peer hung up");
        }
    }

    /// Point-to-point send (building block for custom collective
    /// algorithms, e.g. [`crate::hierarchical`]). `peer` is a dense rank.
    pub fn send_to(&self, peer: usize, data: Vec<f32>) {
        self.issue_send(peer, data, IssueMode::Inline);
    }

    /// Point-to-point receive, blocking (FIFO per peer). Panics on a
    /// generation mismatch: a message from a stale (or forged) generation
    /// aborts the exchange instead of silently mixing into it.
    pub fn recv_from(&self, peer: usize) -> Vec<f32> {
        let msg = self.receivers[peer].recv().expect("peer hung up");
        if msg.generation != self.generation {
            panic!(
                "stale generation message from dense peer {}: got generation {}, expected {}",
                peer, msg.generation, self.generation
            );
        }
        msg.data
    }

    /// Shared issue path of [`Communicator::all_to_all`] and
    /// [`Communicator::all_to_all_begin`]: account, then send every chunk
    /// in rank order; the returned handle's completion receives in rank
    /// order, so the assembled result is identical in both modes.
    fn all_to_all_issue(
        &self,
        mut chunks: Vec<Vec<f32>>,
        mode: IssueMode,
    ) -> PendingCollective<'_, Vec<Vec<f32>>> {
        assert_eq!(chunks.len(), self.world, "all_to_all needs one chunk per rank");
        let payload: usize = chunks.iter().map(|c| c.len() * 4).sum();
        let wire = payload - chunks[self.rank].len() * 4;
        self.account(CollectiveKind::AllToAll, payload, wire);
        let own = std::mem::take(&mut chunks[self.rank]);
        for (j, chunk) in chunks.into_iter().enumerate() {
            if j != self.rank {
                self.issue_send(j, chunk, mode);
            }
        }
        PendingCollective::new("all_to_all", move || {
            let mut out: Vec<Vec<f32>> = (0..self.world).map(|_| Vec::new()).collect();
            out[self.rank] = own;
            for j in 0..self.world {
                if j != self.rank {
                    out[j] = self.recv_from(j);
                }
            }
            out
        })
    }

    /// All-to-all: `chunks[j]` goes to rank `j`; returns the chunks received
    /// from every rank (own chunk passed through untouched).
    pub fn all_to_all(&self, chunks: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        self.all_to_all_issue(chunks, IssueMode::Inline).wait()
    }

    /// Begin an asynchronous all-to-all: the sends are handed to the
    /// background worker and the call returns immediately; run independent
    /// compute, then [`PendingCollective::wait`] for the received chunks.
    pub fn all_to_all_begin(&self, chunks: Vec<Vec<f32>>) -> PendingCollective<'_, Vec<Vec<f32>>> {
        self.all_to_all_issue(chunks, IssueMode::Background)
    }

    /// Shared issue path of the blocking and async all-gather.
    fn all_gather_issue(
        &self,
        data: Vec<f32>,
        mode: IssueMode,
    ) -> PendingCollective<'_, Vec<Vec<f32>>> {
        let bytes = data.len() * 4;
        self.account(CollectiveKind::AllGather, bytes * self.world, bytes * (self.world - 1));
        for j in 0..self.world {
            if j != self.rank {
                self.issue_send(j, data.clone(), mode);
            }
        }
        PendingCollective::new("all_gather", move || {
            let mut out: Vec<Vec<f32>> = (0..self.world).map(|_| Vec::new()).collect();
            out[self.rank] = data;
            for j in 0..self.world {
                if j != self.rank {
                    out[j] = self.recv_from(j);
                }
            }
            out
        })
    }

    /// All-gather: every rank contributes `data`; returns all contributions
    /// indexed by rank.
    pub fn all_gather(&self, data: Vec<f32>) -> Vec<Vec<f32>> {
        self.all_gather_issue(data, IssueMode::Inline).wait()
    }

    /// Begin an asynchronous all-gather (see
    /// [`Communicator::all_to_all_begin`] for the begin/wait contract).
    pub fn all_gather_begin(&self, data: Vec<f32>) -> PendingCollective<'_, Vec<Vec<f32>>> {
        self.all_gather_issue(data, IssueMode::Background)
    }

    /// Shared issue path of the blocking and async all-reduce. The
    /// completion folds the gathered parts in rank order — the same fold
    /// the blocking path runs, so overlap never perturbs the sum.
    fn all_reduce_issue(&self, data: Vec<f32>, mode: IssueMode) -> PendingCollective<'_, Vec<f32>> {
        // Wire volume lands on the underlying all-gather's ledger.
        self.account(CollectiveKind::AllReduce, data.len() * 4, 0);
        let gather = self.all_gather_issue(data, mode);
        PendingCollective::new("all_reduce", move || {
            let parts = gather.wait();
            let len = parts[0].len();
            let mut acc = vec![0.0f32; len];
            for part in parts {
                debug_assert_eq!(part.len(), len);
                for (a, v) in acc.iter_mut().zip(part) {
                    *a += v;
                }
            }
            acc
        })
    }

    /// All-reduce (sum): element-wise sum of every rank's `data`.
    pub fn all_reduce_sum(&self, data: Vec<f32>) -> Vec<f32> {
        self.all_reduce_issue(data, IssueMode::Inline).wait()
    }

    /// Begin an asynchronous all-reduce (sum); `wait()` returns the
    /// element-wise sum of every rank's `data`.
    pub fn all_reduce_begin(&self, data: Vec<f32>) -> PendingCollective<'_, Vec<f32>> {
        self.all_reduce_issue(data, IssueMode::Background)
    }

    /// Shared issue path of the blocking and async reduce-scatter.
    fn reduce_scatter_issue(
        &self,
        chunks: Vec<Vec<f32>>,
        mode: IssueMode,
    ) -> PendingCollective<'_, Vec<f32>> {
        // Wire volume lands on the underlying all-to-all's ledger.
        self.account(CollectiveKind::ReduceScatter, chunks.iter().map(|c| c.len() * 4).sum(), 0);
        let scatter = self.all_to_all_issue(chunks, mode);
        PendingCollective::new("reduce_scatter", move || {
            let received = scatter.wait();
            let len = received[0].len();
            let mut acc = vec![0.0f32; len];
            for part in received {
                for (a, v) in acc.iter_mut().zip(part) {
                    *a += v;
                }
            }
            acc
        })
    }

    /// Reduce-scatter (sum): `chunks[j]` is this rank's contribution to rank
    /// `j`'s result; returns the element-wise sum of chunk `rank` across all
    /// ranks.
    pub fn reduce_scatter_sum(&self, chunks: Vec<Vec<f32>>) -> Vec<f32> {
        self.reduce_scatter_issue(chunks, IssueMode::Inline).wait()
    }

    /// Begin an asynchronous reduce-scatter (sum).
    pub fn reduce_scatter_begin(&self, chunks: Vec<Vec<f32>>) -> PendingCollective<'_, Vec<f32>> {
        self.reduce_scatter_issue(chunks, IssueMode::Background)
    }

    /// Shared issue path of the blocking and async broadcast. On the root
    /// the sends go out at begin; on every other rank the *receive* is the
    /// whole collective, so both the data movement and its accounting run
    /// at `wait()` — exactly the blocking schedule when waited immediately.
    fn broadcast_issue(
        &self,
        root: usize,
        data: Option<Vec<f32>>,
        mode: IssueMode,
    ) -> PendingCollective<'_, Vec<f32>> {
        if self.rank == root {
            let data = data.expect("root must supply data");
            let bytes = data.len() * 4;
            self.account(CollectiveKind::Broadcast, bytes, bytes * (self.world - 1));
            for j in 0..self.world {
                if j != root {
                    self.issue_send(j, data.clone(), mode);
                }
            }
            PendingCollective::new("broadcast", move || data)
        } else {
            PendingCollective::new("broadcast", move || {
                let data = self.recv_from(root);
                self.account(CollectiveKind::Broadcast, data.len() * 4, 0);
                data
            })
        }
    }

    /// Broadcast from `root`: the root passes `Some(data)`, everyone else
    /// `None`; all ranks return the root's data.
    pub fn broadcast(&self, root: usize, data: Option<Vec<f32>>) -> Vec<f32> {
        self.broadcast_issue(root, data, IssueMode::Inline).wait()
    }

    /// Begin an asynchronous broadcast from `root`.
    pub fn broadcast_begin(
        &self,
        root: usize,
        data: Option<Vec<f32>>,
    ) -> PendingCollective<'_, Vec<f32>> {
        self.broadcast_issue(root, data, IssueMode::Background)
    }

    /// Barrier: no rank proceeds until all ranks arrive.
    pub fn barrier(&self) {
        self.account(CollectiveKind::Barrier, 0, 0);
        for j in 0..self.world {
            if j != self.rank {
                self.send_to(j, Vec::new());
            }
        }
        for j in 0..self.world {
            if j != self.rank {
                let _ = self.recv_from(j);
            }
        }
    }
}

/// How one rank of a [`DeviceGroup::try_run`] call failed.
#[derive(Clone, Debug)]
pub enum RankFailure {
    /// An injected [`FaultPlan`] crash fired on this rank.
    Crash(RankCrash),
    /// The rank panicked for another reason (including the "peer hung up"
    /// cascade a crashed neighbour causes).
    Panic(String),
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankFailure::Crash(c) => {
                write!(f, "injected crash on rank {} at collective op {}", c.rank, c.op)
            }
            RankFailure::Panic(msg) => write!(f, "rank panicked: {msg}"),
        }
    }
}

/// A rank the straggler watchdog flagged: its accumulated injected send
/// delay against the group median.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerReport {
    /// Global rank id of the straggler.
    pub rank: usize,
    /// Injected delay accumulated by this rank since the last run started,
    /// seconds.
    pub delay_s: f64,
    /// Median injected delay across the live ranks, seconds.
    pub median_s: f64,
    /// How many times the median this rank's delay measured
    /// (`delay_s / median_s`, clamped to a finite value when the median
    /// is zero) — the observed severity, as opposed to the configured
    /// watchdog threshold.
    pub measured_multiple: f64,
}

/// A group of simulated devices. [`DeviceGroup::run`] executes one closure
/// per rank on its own thread and returns the per-rank results.
///
/// The group is *elastic*: [`DeviceGroup::remove_rank`] declares a rank
/// permanently lost and reforms the communicator set over the survivors
/// under a new [`Membership`] generation ([`DeviceGroup::readmit_rank`]
/// brings one back at an epoch boundary). Subsequent runs span only the
/// live ranks; closures see dense rank ids `0..live_world` plus the stable
/// [`Communicator::global_rank`].
pub struct DeviceGroup {
    world: usize,
    membership: Membership,
    stats: Arc<CommStats>,
    /// Ledger of the current generation, swapped fresh on reformation.
    gen_stats: Arc<CommStats>,
    recorder: RecorderHandle,
    fault: Option<Arc<FaultState>>,
}

impl DeviceGroup {
    /// Create a group of `world` simulated devices.
    pub fn new(world: usize) -> Self {
        Self::with_recorder(world, torchgt_obs::noop())
    }

    /// Create a group whose collectives report per-invocation ops/volume to
    /// `recorder` (in addition to the always-on [`CommStats`] counters).
    pub fn with_recorder(world: usize, recorder: RecorderHandle) -> Self {
        assert!(world >= 1);
        Self {
            world,
            membership: Membership::new(world),
            stats: Arc::new(CommStats::default()),
            gen_stats: Arc::new(CommStats::default()),
            recorder,
            fault: None,
        }
    }

    /// Swap the recorder collectives report to (applies to subsequent
    /// [`DeviceGroup::run`] calls).
    pub fn attach_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Install (or clear) a fault-injection plan for subsequent runs. An
    /// installed crash fires at most once across the group's lifetime, so a
    /// recovery re-run over the same group proceeds clean.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan.map(|p| Arc::new(FaultState::new(p, self.world)));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault.as_ref().map(|f| f.plan)
    }

    /// World size the group was created with (stable across reformations).
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Number of currently live ranks.
    pub fn live_world(&self) -> usize {
        self.membership.live_world()
    }

    /// Current membership generation.
    pub fn generation(&self) -> u64 {
        self.membership.generation()
    }

    /// The current membership (live global rank ids + generation).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Communication-volume statistics accumulated across runs.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Volume statistics of the current generation only.
    pub fn generation_stats(&self) -> &CommStats {
        &self.gen_stats
    }

    /// Emit a [`Event::generation_rollup`] for the current generation's
    /// accumulated collective volume. Called automatically when a
    /// reformation closes a generation; call it once more after the final
    /// run so the last generation is reported too.
    pub fn rollup_generation(&self) {
        if !self.recorder.enabled() {
            return;
        }
        let ops: u64 = CollectiveKind::ALL.iter().map(|&k| self.gen_stats.ops(k)).sum();
        let wire: u64 = CollectiveKind::ALL.iter().map(|&k| self.gen_stats.wire_bytes(k)).sum();
        self.recorder.event(Event::generation_rollup(
            self.membership.generation(),
            self.membership.live_world(),
            ops,
            wire,
            self.gen_stats.bytes_sent(),
        ));
    }

    /// Declare global rank `rank` permanently lost: roll up the closing
    /// generation, drop the rank from the live set, and open a fresh
    /// generation over the survivors (emits [`Event::GROUP_SHRUNK`]).
    pub fn remove_rank(&mut self, rank: usize) -> Result<(), MembershipError> {
        let from = self.membership.live_world();
        self.rollup_generation();
        self.membership.remove(rank)?;
        self.gen_stats = Arc::new(CommStats::default());
        if self.recorder.enabled() {
            self.recorder.event(Event::group_shrunk(
                self.membership.generation(),
                from,
                self.membership.live_world(),
                rank,
            ));
        }
        Ok(())
    }

    /// Re-admit a previously removed rank at an epoch boundary: roll up
    /// the closing generation and reform over the enlarged live set
    /// (emits [`Event::RANK_REJOINED`]).
    pub fn readmit_rank(&mut self, rank: usize) -> Result<(), MembershipError> {
        self.rollup_generation();
        self.membership.readmit(rank)?;
        self.gen_stats = Arc::new(CommStats::default());
        if self.recorder.enabled() {
            self.recorder.event(Event::rank_rejoined(
                rank,
                self.membership.generation(),
                self.membership.live_world(),
            ));
        }
        Ok(())
    }

    /// Straggler watchdog: compare each live rank's injected send delay
    /// (accumulated since the last run started) against the live-group
    /// median; ranks exceeding `multiple × median` are flagged with a
    /// [`Event::STRAGGLER`] event. Detection only — membership is not
    /// changed. Returns the flagged ranks.
    pub fn detect_stragglers(&self, multiple: f64) -> Vec<StragglerReport> {
        let Some(fs) = &self.fault else { return Vec::new() };
        let live = self.membership.live_ranks();
        let delays: Vec<f64> = live.iter().map(|&r| fs.delay_s(r)).collect();
        let mut sorted = delays.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median = if n == 0 {
            0.0
        } else if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mut flagged = Vec::new();
        for (&rank, &delay_s) in live.iter().zip(&delays) {
            if delay_s > 0.0 && delay_s > multiple * median {
                let measured = delay_s / median.max(f64::EPSILON);
                if self.recorder.enabled() {
                    self.recorder.event(Event::straggler(rank, delay_s, median, multiple, measured));
                }
                flagged.push(StragglerReport {
                    rank,
                    delay_s,
                    median_s: median,
                    measured_multiple: measured,
                });
            }
        }
        flagged
    }

    /// Injected send delay accumulated by every live rank since the last
    /// run started, seconds: `(global_rank, delay_s)` pairs. This is the
    /// same ledger the straggler watchdog reads — exposed so closed-loop
    /// policies (the runtime's `StepLedger`) can fold comm-side slowness
    /// into per-rank step-time estimates. Empty when no fault plan is
    /// installed.
    pub fn injected_delays(&self) -> Vec<(usize, f64)> {
        let Some(fs) = &self.fault else { return Vec::new() };
        self.membership.live_ranks().iter().map(|&r| (r, fs.delay_s(r))).collect()
    }

    /// Build the channel mesh over the live ranks and one [`Communicator`]
    /// per live rank (dense ids `0..live_world`, tagged with the current
    /// generation).
    fn build_comms(&self) -> Vec<Communicator> {
        let p = self.membership.live_world();
        let generation = self.membership.generation();
        if let Some(fs) = &self.fault {
            fs.reset_counters();
        }
        let mut txs: Vec<Vec<Option<Sender<Msg>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        let mut rxs: Vec<Vec<Option<Receiver<Msg>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for i in 0..p {
            for j in 0..p {
                if i == j {
                    continue;
                }
                let (tx, rx) = unbounded();
                txs[i][j] = Some(tx); // i → j
                rxs[j][i] = Some(rx); // j receives from i
            }
        }
        let mut comms: Vec<Communicator> = Vec::with_capacity(p);
        for (rank, (tx_row, rx_row)) in txs.into_iter().zip(rxs).enumerate() {
            let (dummy_tx, dummy_rx) = unbounded();
            let senders = tx_row.into_iter().map(|t| t.unwrap_or_else(|| dummy_tx.clone())).collect();
            let receivers = {
                let mut v: Vec<Receiver<Msg>> = Vec::with_capacity(p);
                for r in rx_row {
                    v.push(r.unwrap_or_else(|| dummy_rx.clone()));
                }
                v
            };
            comms.push(Communicator {
                rank,
                global_rank: self.membership.global_of(rank),
                world: p,
                generation,
                senders,
                receivers,
                stats: Arc::clone(&self.stats),
                gen_stats: Arc::clone(&self.gen_stats),
                recorder: Arc::clone(&self.recorder),
                fault: self.fault.clone(),
                worker: OnceCell::new(),
                pending_sends: Arc::new(AtomicU64::new(0)),
            });
        }
        comms
    }

    /// Run `f(communicator)` on every rank concurrently, returning results in
    /// rank order. Collective calls inside `f` must be made by *all* ranks in
    /// the same order (the usual SPMD contract). Panics if any rank panics;
    /// use [`DeviceGroup::try_run`] when a fault plan may crash a rank.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(Communicator) -> R + Sync,
        R: Send,
    {
        let comms = self.build_comms();
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(move || f(comm)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        })
    }

    /// Like [`DeviceGroup::run`] but crash-tolerant: each rank's panic is
    /// contained and reported as a [`RankFailure`] in that rank's slot
    /// instead of tearing the caller down. An injected crash surfaces as
    /// [`RankFailure::Crash`] on its rank while the peers it strands
    /// surface as the "peer hung up" cascade — the whole-group abort
    /// semantics of a real NCCL job, observable instead of fatal.
    pub fn try_run<F, R>(&self, f: F) -> Vec<Result<R, RankFailure>>
    where
        F: Fn(Communicator) -> R + Sync,
        R: Send,
    {
        let comms = self.build_comms();
        let f = &f;
        quiet_crash_panics(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = comms
                    .into_iter()
                    .map(|comm| scope.spawn(move || f(comm)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => Ok(r),
                        Err(payload) => Err(classify_panic(payload)),
                    })
                    .collect()
            })
        })
    }
}

/// Map a joined panic payload to a [`RankFailure`].
fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> RankFailure {
    match payload.downcast::<RankCrash>() {
        Ok(crash) => RankFailure::Crash(*crash),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            RankFailure::Panic(msg)
        }
    }
}

/// True for panics [`DeviceGroup::try_run`] expects and contains: injected
/// [`RankCrash`]es and the "peer hung up" cascade they cause.
fn is_expected_crash(info: &std::panic::PanicHookInfo<'_>) -> bool {
    if info.payload().downcast_ref::<RankCrash>().is_some() {
        return true;
    }
    let msg = info
        .payload()
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| info.payload().downcast_ref::<String>().cloned());
    msg.is_some_and(|m| m.contains("peer hung up") || m.contains("stale generation"))
}

/// Run `f` with a panic hook that silences the expected crash-cascade
/// panics (they are *handled* — per-rank results carry them), forwarding
/// everything else to the previously installed hook. Hook swaps are
/// serialized process-wide; the previous hook is restored afterwards.
fn quiet_crash_panics<T>(f: impl FnOnce() -> T) -> T {
    use std::sync::Mutex;
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev: Arc<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync> =
        Arc::from(std::panic::take_hook());
    let forward = Arc::clone(&prev);
    std::panic::set_hook(Box::new(move |info| {
        if !is_expected_crash(info) {
            forward(info);
        }
    }));
    let out = f();
    drop(std::panic::take_hook());
    std::panic::set_hook(Box::new(move |info| prev(info)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_permutes_chunks() {
        let group = DeviceGroup::new(4);
        let results = group.run(|comm| {
            let r = comm.rank() as f32;
            // Rank r sends [r*10 + j] to rank j.
            let chunks: Vec<Vec<f32>> = (0..4).map(|j| vec![r * 10.0 + j as f32]).collect();
            comm.all_to_all(chunks)
        });
        // Rank j receives r*10 + j from every rank r.
        for (j, recv) in results.iter().enumerate() {
            for (r, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk, &vec![r as f32 * 10.0 + j as f32]);
            }
        }
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let group = DeviceGroup::new(3);
        let results = group.run(|comm| comm.all_gather(vec![comm.rank() as f32; 2]));
        for recv in results {
            assert_eq!(recv, vec![vec![0.0; 2], vec![1.0; 2], vec![2.0; 2]]);
        }
    }

    #[test]
    fn all_reduce_sums() {
        let group = DeviceGroup::new(5);
        let results = group.run(|comm| comm.all_reduce_sum(vec![comm.rank() as f32, 1.0]));
        for recv in results {
            assert_eq!(recv, vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0, 5.0]);
        }
    }

    #[test]
    fn reduce_scatter_matches_manual_sum() {
        let group = DeviceGroup::new(3);
        let results = group.run(|comm| {
            let r = comm.rank() as f32;
            let chunks: Vec<Vec<f32>> = (0..3).map(|j| vec![r + j as f32]).collect();
            comm.reduce_scatter_sum(chunks)
        });
        // Rank j gets Σ_r (r + j) = 3 + 3j... with ranks 0,1,2: Σ r = 3.
        for (j, recv) in results.iter().enumerate() {
            assert_eq!(recv, &vec![3.0 + 3.0 * j as f32]);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let group = DeviceGroup::new(4);
        let results = group.run(|comm| {
            let data = if comm.rank() == 2 { Some(vec![7.0, 8.0]) } else { None };
            comm.broadcast(2, data)
        });
        for recv in results {
            assert_eq!(recv, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn barrier_completes() {
        let group = DeviceGroup::new(8);
        let results = group.run(|comm| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn stats_accumulate_volume() {
        let group = DeviceGroup::new(2);
        group.run(|comm| {
            comm.all_gather(vec![0.0; 256]);
        });
        // Each of 2 ranks sends 256 floats to 1 peer = 2 × 1024 bytes.
        assert_eq!(group.stats().bytes_sent(), 2 * 256 * 4);
        assert_eq!(group.stats().ops(CollectiveKind::AllGather), 2);
    }

    #[test]
    fn all_to_all_conserves_tokens_and_balances_volume() {
        // The graph-parallel pipeline redistributes S sequence tokens across
        // P ranks with one all-to-all. Token identity must be conserved
        // (nothing dropped or duplicated) and, with a balanced destination
        // map, every rank should end up holding ~S/P tokens.
        const P: usize = 8;
        const S: usize = 4096;
        const PER_RANK: usize = S / P;
        let group = DeviceGroup::new(P);
        let results = group.run(|comm| {
            let r = comm.rank();
            // Rank r starts with tokens [r*S/P, (r+1)*S/P); token t is bound
            // for rank (t % P).
            let mut chunks: Vec<Vec<f32>> = (0..P).map(|_| Vec::new()).collect();
            for t in (r * PER_RANK)..((r + 1) * PER_RANK) {
                chunks[t % P].push(t as f32);
            }
            comm.all_to_all(chunks)
        });
        let mut seen = vec![0u32; S];
        for (j, recv) in results.iter().enumerate() {
            let volume: usize = recv.iter().map(Vec::len).sum();
            assert_eq!(volume, PER_RANK, "rank {j} volume should be S/P");
            for chunk in recv {
                for &tok in chunk {
                    let t = tok as usize;
                    assert_eq!(t % P, j, "token {t} landed on wrong rank {j}");
                    seen[t] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "every token exactly once");
    }

    #[test]
    fn all_to_all_conserves_uneven_token_counts() {
        // Skewed destinations: every token goes to rank 0. Totals must still
        // be conserved even though the volume is maximally unbalanced.
        const P: usize = 4;
        const PER_RANK: usize = 32;
        let group = DeviceGroup::new(P);
        let results = group.run(|comm| {
            let r = comm.rank() as f32;
            let mut chunks: Vec<Vec<f32>> = (0..P).map(|_| Vec::new()).collect();
            chunks[0] = vec![r; PER_RANK];
            comm.all_to_all(chunks)
        });
        let rank0_total: usize = results[0].iter().map(Vec::len).sum();
        assert_eq!(rank0_total, P * PER_RANK);
        for (j, recv) in results.iter().enumerate().skip(1) {
            let volume: usize = recv.iter().map(Vec::len).sum();
            assert_eq!(volume, 0, "rank {j} should receive nothing");
        }
    }

    #[test]
    fn recorder_sees_per_kind_volume() {
        use torchgt_obs::MemoryRecorder;
        let mem = Arc::new(MemoryRecorder::default());
        let group = DeviceGroup::with_recorder(4, mem.clone());
        group.run(|comm| {
            // 4 chunks of 8 floats each: 128 B payload, 96 B cross-link.
            comm.all_to_all((0..4).map(|_| vec![0.0f32; 8]).collect());
            comm.barrier();
        });
        let report = mem.report();
        let a2a = report.collective("all_to_all").unwrap();
        assert_eq!(a2a.ops, 4, "one invocation per rank");
        assert_eq!(a2a.payload_bytes, 4 * 128);
        assert_eq!(a2a.wire_bytes, 4 * 96);
        assert_eq!(report.collective("barrier").unwrap().wire_bytes, 0);
        // The always-on stats ledger agrees with the recorder.
        assert_eq!(group.stats().wire_bytes(CollectiveKind::AllToAll), 4 * 96);
    }

    #[test]
    fn try_run_without_faults_matches_run() {
        let group = DeviceGroup::new(3);
        let results = group.try_run(|comm| comm.all_reduce_sum(vec![comm.rank() as f32]));
        for r in results {
            assert_eq!(r.unwrap(), vec![3.0]);
        }
    }

    #[test]
    fn injected_crash_is_contained_and_one_shot() {
        let mut group = DeviceGroup::new(4);
        // Rank 2 dies at its second collective op.
        group.set_fault_plan(Some(FaultPlan::crash_at(9, 2, 1)));
        let results = group.try_run(|comm| {
            comm.barrier();
            comm.all_reduce_sum(vec![1.0])
        });
        assert!(
            matches!(&results[2], Err(RankFailure::Crash(c)) if c.rank == 2 && c.op == 1),
            "rank 2 should report the injected crash, got {:?}",
            results[2]
        );
        let peer_failures =
            results.iter().filter(|r| matches!(r, Err(RankFailure::Panic(_)))).count();
        assert!(peer_failures > 0, "peers should cascade-fail when rank 2 dies");
        // Recovery attempt on the same group: crash already fired, all clean.
        let retry = group.try_run(|comm| {
            comm.barrier();
            comm.all_reduce_sum(vec![1.0])
        });
        for r in retry {
            assert_eq!(r.unwrap(), vec![4.0]);
        }
    }

    #[test]
    fn delays_and_drops_do_not_change_results() {
        let mut group = DeviceGroup::new(4);
        group.set_fault_plan(Some(FaultPlan {
            seed: 5,
            delay_prob: 0.3,
            delay_s: 0.0005,
            drop_prob: 0.4,
            max_retries: 3,
            retry_backoff_s: 0.0005,
            ..FaultPlan::default()
        }));
        let faulty = group.run(|comm| {
            let mut out = comm.all_reduce_sum(vec![comm.rank() as f32, 2.0]);
            out.extend(comm.all_gather(vec![comm.rank() as f32]).concat());
            out
        });
        let clean_group = DeviceGroup::new(4);
        let clean = clean_group.run(|comm| {
            let mut out = comm.all_reduce_sum(vec![comm.rank() as f32, 2.0]);
            out.extend(comm.all_gather(vec![comm.rank() as f32]).concat());
            out
        });
        assert_eq!(faulty, clean, "faults must never perturb delivered data");
        assert!(group.stats().retries() > 0, "drop plan should have caused retries");
    }

    #[test]
    fn faults_are_recorded_as_events() {
        use torchgt_obs::{Event, MemoryRecorder};
        let mem = Arc::new(MemoryRecorder::default());
        let mut group = DeviceGroup::with_recorder(3, mem.clone());
        group.set_fault_plan(Some(FaultPlan {
            seed: 11,
            drop_prob: 0.5,
            max_retries: 2,
            crash: Some(crate::fault::CrashPoint { rank: 1, op: 2 }),
            ..FaultPlan::default()
        }));
        let results = group.try_run(|comm| {
            comm.barrier();
            comm.barrier();
            comm.barrier();
            comm.rank()
        });
        assert!(results.iter().any(|r| r.is_err()));
        let report = mem.report();
        assert_eq!(report.events_of(Event::RANK_CRASH).len(), 1, "crash event recorded");
        let crash = &report.events_of(Event::RANK_CRASH)[0];
        assert_eq!(crash.num("rank"), Some(1.0));
        assert!(!report.events_of(Event::FAULT_DROP).is_empty(), "drop events recorded");
    }

    #[test]
    fn fault_decisions_replay_identically() {
        let run_once = || {
            let mut group = DeviceGroup::new(2);
            group.set_fault_plan(Some(FaultPlan::drops(3, 0.5, 4)));
            group.run(|comm| comm.all_gather(vec![comm.rank() as f32]));
            group.stats().retries()
        };
        assert_eq!(run_once(), run_once(), "same seed must give the same fault schedule");
    }

    #[test]
    fn single_rank_group_works() {
        let group = DeviceGroup::new(1);
        let results = group.run(|comm| {
            let out = comm.all_to_all(vec![vec![1.0, 2.0]]);
            let red = comm.all_reduce_sum(vec![3.0]);
            (out, red)
        });
        assert_eq!(results[0].0, vec![vec![1.0, 2.0]]);
        assert_eq!(results[0].1, vec![3.0]);
    }

    #[test]
    fn shrunk_group_runs_over_survivors_with_dense_ranks() {
        let mut group = DeviceGroup::new(4);
        group.remove_rank(1).unwrap();
        assert_eq!(group.generation(), 1);
        assert_eq!(group.live_world(), 3);
        let results = group.run(|comm| {
            assert_eq!(comm.world_size(), 3);
            assert_eq!(comm.generation(), 1);
            let sum = comm.all_reduce_sum(vec![comm.global_rank() as f32]);
            (comm.rank(), comm.global_rank(), sum)
        });
        // Dense ids are contiguous; global ids skip the lost rank 1.
        assert_eq!(
            results.iter().map(|(d, g, _)| (*d, *g)).collect::<Vec<_>>(),
            vec![(0, 0), (1, 2), (2, 3)]
        );
        for (_, _, sum) in results {
            assert_eq!(sum, vec![0.0 + 2.0 + 3.0]);
        }
    }

    #[test]
    fn readmitted_rank_restores_full_world() {
        let mut group = DeviceGroup::new(3);
        group.remove_rank(2).unwrap();
        group.readmit_rank(2).unwrap();
        assert_eq!(group.generation(), 2);
        assert_eq!(group.live_world(), 3);
        let results = group.run(|comm| comm.all_reduce_sum(vec![1.0]));
        for r in results {
            assert_eq!(r, vec![3.0]);
        }
    }

    #[test]
    fn stale_generation_message_aborts_the_exchange() {
        let group = DeviceGroup::new(2);
        let results = group.try_run(|mut comm| {
            if comm.rank() == 0 {
                // Rank 0 pretends it never saw a reformation: its messages
                // carry a stale generation tag.
                comm.forge_generation(comm.generation() + 7);
            }
            comm.all_gather(vec![comm.rank() as f32])
        });
        let stale_rejections = results
            .iter()
            .filter(|r| {
                matches!(r, Err(RankFailure::Panic(m)) if m.contains("stale generation"))
            })
            .count();
        assert!(stale_rejections >= 1, "receiver must reject the forged tag: {results:?}");
        assert!(results.iter().all(|r| r.is_err()), "no rank may complete on a corrupt exchange");
    }

    #[test]
    fn membership_transitions_emit_events_and_generation_rollups() {
        use torchgt_obs::MemoryRecorder;
        let mem = Arc::new(MemoryRecorder::default());
        let mut group = DeviceGroup::with_recorder(4, mem.clone());
        group.run(|comm| comm.all_gather(vec![0.0f32; 4]));
        group.remove_rank(3).unwrap();
        group.run(|comm| comm.all_gather(vec![0.0f32; 4]));
        group.readmit_rank(3).unwrap();
        group.rollup_generation();
        let report = mem.report();
        let shrunk = report.events_of(Event::GROUP_SHRUNK);
        assert_eq!(shrunk.len(), 1);
        assert_eq!(shrunk[0].num("from_world"), Some(4.0));
        assert_eq!(shrunk[0].num("to_world"), Some(3.0));
        assert_eq!(shrunk[0].num("lost_rank"), Some(3.0));
        let rejoined = report.events_of(Event::RANK_REJOINED);
        assert_eq!(rejoined.len(), 1);
        assert_eq!(rejoined[0].num("world"), Some(4.0));
        // One rollup per closed generation: gen 0 (4 ranks), gen 1
        // (3 ranks), and the final explicit rollup of gen 2 (idle).
        let rollups = report.events_of(Event::GENERATION_ROLLUP);
        assert_eq!(rollups.len(), 3);
        assert_eq!(rollups[0].num("world"), Some(4.0));
        assert_eq!(rollups[0].num("ops"), Some(4.0), "4 ranks × 1 all_gather");
        assert_eq!(rollups[1].num("world"), Some(3.0));
        assert_eq!(rollups[1].num("ops"), Some(3.0));
        assert_eq!(rollups[2].num("ops"), Some(0.0));
        // Per-generation wire volume: gen 0 moved 4×3×16B, gen 1 3×2×16B.
        assert_eq!(rollups[0].num("wire_bytes"), Some((4 * 3 * 16) as f64));
        assert_eq!(rollups[1].num("wire_bytes"), Some((3 * 2 * 16) as f64));
    }

    #[test]
    fn straggler_watchdog_flags_the_slow_rank_only() {
        use torchgt_obs::MemoryRecorder;
        let mem = Arc::new(MemoryRecorder::default());
        let mut group = DeviceGroup::with_recorder(4, mem.clone());
        group.set_fault_plan(Some(FaultPlan::slow(2, 0.002)));
        group.run(|comm| {
            comm.barrier();
            comm.barrier();
        });
        let flagged = group.detect_stragglers(4.0);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].rank, 2);
        assert!(flagged[0].delay_s > 0.0);
        let events = mem.report();
        let stragglers = events.events_of(Event::STRAGGLER);
        assert_eq!(stragglers.len(), 1);
        assert_eq!(stragglers[0].num("rank"), Some(2.0));
        // A healthy group flags nobody.
        group.set_fault_plan(Some(FaultPlan::default()));
        group.run(|comm| comm.barrier());
        assert!(group.detect_stragglers(4.0).is_empty());
    }

    #[test]
    fn straggler_detection_uses_global_ids_after_shrink() {
        let mut group = DeviceGroup::new(4);
        group.set_fault_plan(Some(FaultPlan::slow(3, 0.002)));
        group.remove_rank(1).unwrap();
        group.run(|comm| {
            comm.barrier();
            comm.barrier();
        });
        let flagged = group.detect_stragglers(2.0);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].rank, 3, "the flagged id is the stable global rank");
    }

    #[test]
    fn async_begin_wait_matches_blocking_collectives() {
        // Every collective issued asynchronously, with unrelated compute
        // between begin and wait, must deliver exactly what the blocking
        // call delivers — and account the same ops and volume.
        let run = |asynchronous: bool| {
            let group = DeviceGroup::new(4);
            let results = group.run(|comm| {
                let r = comm.rank() as f32;
                let chunks: Vec<Vec<f32>> = (0..4).map(|j| vec![r * 10.0 + j as f32]).collect();
                let bcast = if comm.rank() == 1 { Some(vec![5.0, 6.0]) } else { None };
                if asynchronous {
                    let a2a = comm.all_to_all_begin(chunks);
                    let red = comm.all_reduce_begin(vec![r, 1.0]);
                    let bc = comm.broadcast_begin(1, bcast);
                    // Unrelated compute between begin and wait.
                    let busy: f32 = (0..64).map(|i| i as f32).sum();
                    assert_eq!(busy, 2016.0);
                    (a2a.wait(), red.wait(), bc.wait())
                } else {
                    (
                        comm.all_to_all(chunks),
                        comm.all_reduce_sum(vec![r, 1.0]),
                        comm.broadcast(1, bcast),
                    )
                }
            });
            (results, group.stats().bytes_sent())
        };
        let (sync_results, sync_bytes) = run(false);
        let (async_results, async_bytes) = run(true);
        assert_eq!(sync_results, async_results);
        assert_eq!(sync_bytes, async_bytes);
    }

    #[test]
    fn async_faulty_run_matches_clean_sync_run() {
        // Delays and drops on the background issue path must not change
        // delivered data either.
        let mut group = DeviceGroup::new(3);
        group.set_fault_plan(Some(FaultPlan {
            seed: 13,
            delay_prob: 0.4,
            delay_s: 0.0004,
            drop_prob: 0.4,
            max_retries: 2,
            retry_backoff_s: 0.0004,
            ..FaultPlan::default()
        }));
        let faulty = group.run(|comm| {
            let pending = comm.all_reduce_begin(vec![comm.rank() as f32, 3.0]);
            pending.wait()
        });
        let clean = DeviceGroup::new(3).run(|comm| comm.all_reduce_sum(vec![comm.rank() as f32, 3.0]));
        assert_eq!(faulty, clean);
        assert!(group.stats().retries() > 0, "drop plan should have caused retries");
    }

    #[test]
    fn inline_send_after_background_begin_keeps_fifo_order() {
        // A point-to-point send issued while an async collective is still
        // in flight must not overtake the collective's queued sends.
        let group = DeviceGroup::new(2);
        let results = group.run(|comm| {
            let peer = 1 - comm.rank();
            let gather = comm.all_gather_begin(vec![comm.rank() as f32]);
            comm.send_to(peer, vec![42.0]);
            let gathered = gather.wait();
            let p2p = comm.recv_from(peer);
            (gathered, p2p)
        });
        for (gathered, p2p) in results {
            assert_eq!(gathered, vec![vec![0.0], vec![1.0]]);
            assert_eq!(p2p, vec![42.0]);
        }
    }

    #[test]
    fn dropping_pending_collective_without_wait_panics_loudly() {
        let group = DeviceGroup::new(1);
        let results = group.try_run(|comm| {
            let pending = comm.all_reduce_begin(vec![1.0]);
            drop(pending);
        });
        assert!(
            matches!(&results[0], Err(RankFailure::Panic(m)) if m.contains("dropped without wait()")),
            "un-awaited handle must panic loudly, got {:?}",
            results[0]
        );
    }

    #[test]
    fn crash_plan_keys_on_global_rank_after_shrink() {
        let mut group = DeviceGroup::new(4);
        // Global rank 2 dies at its second collective — also after rank 1
        // is gone and rank 2's dense id has shifted to 1.
        group.set_fault_plan(Some(FaultPlan::crash_at(9, 2, 1)));
        group.remove_rank(1).unwrap();
        let results = group.try_run(|comm| {
            comm.barrier();
            comm.all_reduce_sum(vec![1.0])
        });
        assert!(
            matches!(&results[1], Err(RankFailure::Crash(c)) if c.rank == 2),
            "dense slot 1 (global rank 2) should crash, got {:?}",
            results[1]
        );
    }
}
