//! Real data-movement collectives over simulated devices.
//!
//! The paper runs NCCL collectives across 8–64 GPUs. Here each *rank* is a
//! thread and each link is a crossbeam channel, so the collectives genuinely
//! move data (the runtime's distributed forward pass is checked against the
//! single-device forward bit-for-bit), while the α–β models in
//! [`crate::interconnect`] supply the simulated wall-clock the experiment
//! harnesses report.

use crate::stats::{CollectiveKind, CommStats};
use std::sync::Arc;
use torchgt_compat::sync::channel::{unbounded, Receiver, Sender};
use torchgt_obs::RecorderHandle;

/// Per-rank handle for collective communication within a device group.
pub struct Communicator {
    rank: usize,
    world: usize,
    /// `senders[j]` transmits to rank `j` (entry for self is unused).
    senders: Vec<Sender<Vec<f32>>>,
    /// `receivers[j]` receives from rank `j`.
    receivers: Vec<Receiver<Vec<f32>>>,
    stats: Arc<CommStats>,
    recorder: RecorderHandle,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Shared volume statistics for the whole group.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Account one collective invocation: `payload` is the logical volume
    /// this rank handles, `wire` the part it actually sends across links
    /// (sender-side counting — group-wide sums don't double-count).
    fn account(&self, kind: CollectiveKind, payload: usize, wire: usize) {
        self.stats.record_op(kind);
        if wire > 0 {
            self.stats.record_wire_bytes(kind, wire);
        }
        if self.recorder.enabled() {
            self.recorder.collective(kind.label(), 1, payload as u64, wire as u64);
        }
    }

    /// Point-to-point send (building block for custom collective
    /// algorithms, e.g. [`crate::hierarchical`]).
    pub fn send_to(&self, peer: usize, data: Vec<f32>) {
        self.stats.record_bytes(data.len() * 4);
        self.senders[peer].send(data).expect("peer hung up");
    }

    /// Point-to-point receive, blocking (FIFO per peer).
    pub fn recv_from(&self, peer: usize) -> Vec<f32> {
        self.receivers[peer].recv().expect("peer hung up")
    }

    /// All-to-all: `chunks[j]` goes to rank `j`; returns the chunks received
    /// from every rank (own chunk passed through untouched).
    pub fn all_to_all(&self, mut chunks: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        assert_eq!(chunks.len(), self.world, "all_to_all needs one chunk per rank");
        let payload: usize = chunks.iter().map(|c| c.len() * 4).sum();
        let wire = payload - chunks[self.rank].len() * 4;
        self.account(CollectiveKind::AllToAll, payload, wire);
        let own = std::mem::take(&mut chunks[self.rank]);
        for (j, chunk) in chunks.into_iter().enumerate() {
            if j != self.rank {
                self.send_to(j, chunk);
            }
        }
        let mut out: Vec<Vec<f32>> = (0..self.world).map(|_| Vec::new()).collect();
        out[self.rank] = own;
        for j in 0..self.world {
            if j != self.rank {
                out[j] = self.recv_from(j);
            }
        }
        out
    }

    /// All-gather: every rank contributes `data`; returns all contributions
    /// indexed by rank.
    pub fn all_gather(&self, data: Vec<f32>) -> Vec<Vec<f32>> {
        let bytes = data.len() * 4;
        self.account(CollectiveKind::AllGather, bytes * self.world, bytes * (self.world - 1));
        for j in 0..self.world {
            if j != self.rank {
                self.send_to(j, data.clone());
            }
        }
        let mut out: Vec<Vec<f32>> = (0..self.world).map(|_| Vec::new()).collect();
        out[self.rank] = data;
        for j in 0..self.world {
            if j != self.rank {
                out[j] = self.recv_from(j);
            }
        }
        out
    }

    /// All-reduce (sum): element-wise sum of every rank's `data`.
    pub fn all_reduce_sum(&self, data: Vec<f32>) -> Vec<f32> {
        // Wire volume lands on the underlying all-gather's ledger.
        self.account(CollectiveKind::AllReduce, data.len() * 4, 0);
        let parts = self.all_gather(data);
        let len = parts[0].len();
        let mut acc = vec![0.0f32; len];
        for part in parts {
            debug_assert_eq!(part.len(), len);
            for (a, v) in acc.iter_mut().zip(part) {
                *a += v;
            }
        }
        acc
    }

    /// Reduce-scatter (sum): `chunks[j]` is this rank's contribution to rank
    /// `j`'s result; returns the element-wise sum of chunk `rank` across all
    /// ranks.
    pub fn reduce_scatter_sum(&self, chunks: Vec<Vec<f32>>) -> Vec<f32> {
        // Wire volume lands on the underlying all-to-all's ledger.
        self.account(CollectiveKind::ReduceScatter, chunks.iter().map(|c| c.len() * 4).sum(), 0);
        let received = self.all_to_all(chunks);
        let len = received[0].len();
        let mut acc = vec![0.0f32; len];
        for part in received {
            for (a, v) in acc.iter_mut().zip(part) {
                *a += v;
            }
        }
        acc
    }

    /// Broadcast from `root`: the root passes `Some(data)`, everyone else
    /// `None`; all ranks return the root's data.
    pub fn broadcast(&self, root: usize, data: Option<Vec<f32>>) -> Vec<f32> {
        if self.rank == root {
            let data = data.expect("root must supply data");
            let bytes = data.len() * 4;
            self.account(CollectiveKind::Broadcast, bytes, bytes * (self.world - 1));
            for j in 0..self.world {
                if j != root {
                    self.send_to(j, data.clone());
                }
            }
            data
        } else {
            let data = self.recv_from(root);
            self.account(CollectiveKind::Broadcast, data.len() * 4, 0);
            data
        }
    }

    /// Barrier: no rank proceeds until all ranks arrive.
    pub fn barrier(&self) {
        self.account(CollectiveKind::Barrier, 0, 0);
        for j in 0..self.world {
            if j != self.rank {
                self.senders[j].send(Vec::new()).expect("peer hung up");
            }
        }
        for j in 0..self.world {
            if j != self.rank {
                let _ = self.recv_from(j);
            }
        }
    }
}

/// A group of simulated devices. [`DeviceGroup::run`] executes one closure
/// per rank on its own thread and returns the per-rank results.
pub struct DeviceGroup {
    world: usize,
    stats: Arc<CommStats>,
    recorder: RecorderHandle,
}

impl DeviceGroup {
    /// Create a group of `world` simulated devices.
    pub fn new(world: usize) -> Self {
        Self::with_recorder(world, torchgt_obs::noop())
    }

    /// Create a group whose collectives report per-invocation ops/volume to
    /// `recorder` (in addition to the always-on [`CommStats`] counters).
    pub fn with_recorder(world: usize, recorder: RecorderHandle) -> Self {
        assert!(world >= 1);
        Self { world, stats: Arc::new(CommStats::default()), recorder }
    }

    /// Swap the recorder collectives report to (applies to subsequent
    /// [`DeviceGroup::run`] calls).
    pub fn attach_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Number of ranks.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Communication-volume statistics accumulated across runs.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Run `f(communicator)` on every rank concurrently, returning results in
    /// rank order. Collective calls inside `f` must be made by *all* ranks in
    /// the same order (the usual SPMD contract).
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(Communicator) -> R + Sync,
        R: Send,
    {
        let p = self.world;
        // Build the p×p channel mesh.
        let mut txs: Vec<Vec<Option<Sender<Vec<f32>>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        let mut rxs: Vec<Vec<Option<Receiver<Vec<f32>>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for i in 0..p {
            for j in 0..p {
                if i == j {
                    continue;
                }
                let (tx, rx) = unbounded();
                txs[i][j] = Some(tx); // i → j
                rxs[j][i] = Some(rx); // j receives from i
            }
        }
        let mut comms: Vec<Communicator> = Vec::with_capacity(p);
        for (rank, (tx_row, rx_row)) in txs.into_iter().zip(rxs).enumerate() {
            let (dummy_tx, dummy_rx) = unbounded();
            let senders = tx_row.into_iter().map(|t| t.unwrap_or_else(|| dummy_tx.clone())).collect();
            let receivers = {
                let mut v: Vec<Receiver<Vec<f32>>> = Vec::with_capacity(p);
                for r in rx_row {
                    v.push(r.unwrap_or_else(|| dummy_rx.clone()));
                }
                v
            };
            comms.push(Communicator {
                rank,
                world: p,
                senders,
                receivers,
                stats: Arc::clone(&self.stats),
                recorder: Arc::clone(&self.recorder),
            });
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(move || f(comm)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_permutes_chunks() {
        let group = DeviceGroup::new(4);
        let results = group.run(|comm| {
            let r = comm.rank() as f32;
            // Rank r sends [r*10 + j] to rank j.
            let chunks: Vec<Vec<f32>> = (0..4).map(|j| vec![r * 10.0 + j as f32]).collect();
            comm.all_to_all(chunks)
        });
        // Rank j receives r*10 + j from every rank r.
        for (j, recv) in results.iter().enumerate() {
            for (r, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk, &vec![r as f32 * 10.0 + j as f32]);
            }
        }
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let group = DeviceGroup::new(3);
        let results = group.run(|comm| comm.all_gather(vec![comm.rank() as f32; 2]));
        for recv in results {
            assert_eq!(recv, vec![vec![0.0; 2], vec![1.0; 2], vec![2.0; 2]]);
        }
    }

    #[test]
    fn all_reduce_sums() {
        let group = DeviceGroup::new(5);
        let results = group.run(|comm| comm.all_reduce_sum(vec![comm.rank() as f32, 1.0]));
        for recv in results {
            assert_eq!(recv, vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0, 5.0]);
        }
    }

    #[test]
    fn reduce_scatter_matches_manual_sum() {
        let group = DeviceGroup::new(3);
        let results = group.run(|comm| {
            let r = comm.rank() as f32;
            let chunks: Vec<Vec<f32>> = (0..3).map(|j| vec![r + j as f32]).collect();
            comm.reduce_scatter_sum(chunks)
        });
        // Rank j gets Σ_r (r + j) = 3 + 3j... with ranks 0,1,2: Σ r = 3.
        for (j, recv) in results.iter().enumerate() {
            assert_eq!(recv, &vec![3.0 + 3.0 * j as f32]);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let group = DeviceGroup::new(4);
        let results = group.run(|comm| {
            let data = if comm.rank() == 2 { Some(vec![7.0, 8.0]) } else { None };
            comm.broadcast(2, data)
        });
        for recv in results {
            assert_eq!(recv, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn barrier_completes() {
        let group = DeviceGroup::new(8);
        let results = group.run(|comm| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn stats_accumulate_volume() {
        let group = DeviceGroup::new(2);
        group.run(|comm| {
            comm.all_gather(vec![0.0; 256]);
        });
        // Each of 2 ranks sends 256 floats to 1 peer = 2 × 1024 bytes.
        assert_eq!(group.stats().bytes_sent(), 2 * 256 * 4);
        assert_eq!(group.stats().ops(CollectiveKind::AllGather), 2);
    }

    #[test]
    fn all_to_all_conserves_tokens_and_balances_volume() {
        // The graph-parallel pipeline redistributes S sequence tokens across
        // P ranks with one all-to-all. Token identity must be conserved
        // (nothing dropped or duplicated) and, with a balanced destination
        // map, every rank should end up holding ~S/P tokens.
        const P: usize = 8;
        const S: usize = 4096;
        const PER_RANK: usize = S / P;
        let group = DeviceGroup::new(P);
        let results = group.run(|comm| {
            let r = comm.rank();
            // Rank r starts with tokens [r*S/P, (r+1)*S/P); token t is bound
            // for rank (t % P).
            let mut chunks: Vec<Vec<f32>> = (0..P).map(|_| Vec::new()).collect();
            for t in (r * PER_RANK)..((r + 1) * PER_RANK) {
                chunks[t % P].push(t as f32);
            }
            comm.all_to_all(chunks)
        });
        let mut seen = vec![0u32; S];
        for (j, recv) in results.iter().enumerate() {
            let volume: usize = recv.iter().map(Vec::len).sum();
            assert_eq!(volume, PER_RANK, "rank {j} volume should be S/P");
            for chunk in recv {
                for &tok in chunk {
                    let t = tok as usize;
                    assert_eq!(t % P, j, "token {t} landed on wrong rank {j}");
                    seen[t] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "every token exactly once");
    }

    #[test]
    fn all_to_all_conserves_uneven_token_counts() {
        // Skewed destinations: every token goes to rank 0. Totals must still
        // be conserved even though the volume is maximally unbalanced.
        const P: usize = 4;
        const PER_RANK: usize = 32;
        let group = DeviceGroup::new(P);
        let results = group.run(|comm| {
            let r = comm.rank() as f32;
            let mut chunks: Vec<Vec<f32>> = (0..P).map(|_| Vec::new()).collect();
            chunks[0] = vec![r; PER_RANK];
            comm.all_to_all(chunks)
        });
        let rank0_total: usize = results[0].iter().map(Vec::len).sum();
        assert_eq!(rank0_total, P * PER_RANK);
        for (j, recv) in results.iter().enumerate().skip(1) {
            let volume: usize = recv.iter().map(Vec::len).sum();
            assert_eq!(volume, 0, "rank {j} should receive nothing");
        }
    }

    #[test]
    fn recorder_sees_per_kind_volume() {
        use torchgt_obs::MemoryRecorder;
        let mem = Arc::new(MemoryRecorder::default());
        let group = DeviceGroup::with_recorder(4, mem.clone());
        group.run(|comm| {
            // 4 chunks of 8 floats each: 128 B payload, 96 B cross-link.
            comm.all_to_all((0..4).map(|_| vec![0.0f32; 8]).collect());
            comm.barrier();
        });
        let report = mem.report();
        let a2a = report.collective("all_to_all").unwrap();
        assert_eq!(a2a.ops, 4, "one invocation per rank");
        assert_eq!(a2a.payload_bytes, 4 * 128);
        assert_eq!(a2a.wire_bytes, 4 * 96);
        assert_eq!(report.collective("barrier").unwrap().wire_bytes, 0);
        // The always-on stats ledger agrees with the recorder.
        assert_eq!(group.stats().wire_bytes(CollectiveKind::AllToAll), 4 * 96);
    }

    #[test]
    fn single_rank_group_works() {
        let group = DeviceGroup::new(1);
        let results = group.run(|comm| {
            let out = comm.all_to_all(vec![vec![1.0, 2.0]]);
            let red = comm.all_reduce_sum(vec![3.0]);
            (out, red)
        });
        assert_eq!(results[0].0, vec![vec![1.0, 2.0]]);
        assert_eq!(results[0].1, vec![3.0]);
    }
}
