//! Real data-movement collectives over simulated devices.
//!
//! The paper runs NCCL collectives across 8–64 GPUs. Here each *rank* is a
//! thread and each link is a crossbeam channel, so the collectives genuinely
//! move data (the runtime's distributed forward pass is checked against the
//! single-device forward bit-for-bit), while the α–β models in
//! [`crate::interconnect`] supply the simulated wall-clock the experiment
//! harnesses report.

use crate::fault::{decide, FaultPlan, FaultState, RankCrash, SALT_DELAY, SALT_DROP};
use crate::stats::{CollectiveKind, CommStats};
use std::sync::Arc;
use torchgt_compat::sync::channel::{unbounded, Receiver, Sender};
use torchgt_obs::{Event, RecorderHandle};

/// Per-rank handle for collective communication within a device group.
pub struct Communicator {
    rank: usize,
    world: usize,
    /// `senders[j]` transmits to rank `j` (entry for self is unused).
    senders: Vec<Sender<Vec<f32>>>,
    /// `receivers[j]` receives from rank `j`.
    receivers: Vec<Receiver<Vec<f32>>>,
    stats: Arc<CommStats>,
    recorder: RecorderHandle,
    /// Fault-injection bookkeeping shared by the whole group (`None` in a
    /// fault-free group: the common path pays one branch).
    fault: Option<Arc<FaultState>>,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Shared volume statistics for the whole group.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Account one collective invocation: `payload` is the logical volume
    /// this rank handles, `wire` the part it actually sends across links
    /// (sender-side counting — group-wide sums don't double-count).
    fn account(&self, kind: CollectiveKind, payload: usize, wire: usize) {
        self.fault_tick();
        self.stats.record_op(kind);
        if wire > 0 {
            self.stats.record_wire_bytes(kind, wire);
        }
        if self.recorder.enabled() {
            self.recorder.collective(kind.label(), 1, payload as u64, wire as u64);
        }
    }

    /// One collective invocation on this rank: advance the fault-plan op
    /// counter and fire an injected crash if this is the chosen op. The
    /// panic payload is a [`RankCrash`]; [`DeviceGroup::try_run`] converts
    /// it into a per-rank error while peers cascade-fail their receives,
    /// mirroring a NCCL communicator abort.
    fn fault_tick(&self) {
        let Some(fs) = &self.fault else { return };
        let op = fs.next_collective_op(self.rank);
        if fs.should_crash(self.rank, op) {
            if self.recorder.enabled() {
                self.recorder.event(Event::rank_crash(self.rank, op));
            }
            std::panic::panic_any(RankCrash { rank: self.rank, op });
        }
    }

    /// Injected per-send faults: seeded delay and drop-with-retry. Neither
    /// changes what is ultimately delivered or its order — faults perturb
    /// the schedule, never the numerics.
    fn inject_send_faults(&self, peer: usize) {
        let Some(fs) = &self.fault else { return };
        let plan: &FaultPlan = &fs.plan;
        if plan.delay_prob <= 0.0 && plan.drop_prob <= 0.0 {
            return;
        }
        let op = fs.next_send_op(self.rank);
        if decide(plan.seed, self.rank, op, SALT_DELAY, plan.delay_prob) {
            if plan.delay_s > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(plan.delay_s));
            }
            if self.recorder.enabled() {
                self.recorder.event(Event::fault_delay(self.rank, peer, op, plan.delay_s));
            }
        }
        let mut lost = 0u64;
        while lost < plan.max_retries as u64
            && decide(plan.seed, self.rank, op ^ (lost << 32), SALT_DROP, plan.drop_prob)
        {
            // The receiver times out waiting for the lost attempt; the
            // retransmission then goes through. Modelled sender-side as
            // backoff latency so no extra message ever hits the wire.
            lost += 1;
            if plan.retry_backoff_s > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(plan.retry_backoff_s));
            }
        }
        if lost > 0 {
            self.stats.record_retries(lost);
            if self.recorder.enabled() {
                self.recorder.event(Event::fault_drop(self.rank, peer, op, lost));
            }
        }
    }

    /// Point-to-point send (building block for custom collective
    /// algorithms, e.g. [`crate::hierarchical`]).
    pub fn send_to(&self, peer: usize, data: Vec<f32>) {
        self.inject_send_faults(peer);
        self.stats.record_bytes(data.len() * 4);
        self.senders[peer].send(data).expect("peer hung up");
    }

    /// Point-to-point receive, blocking (FIFO per peer).
    pub fn recv_from(&self, peer: usize) -> Vec<f32> {
        self.receivers[peer].recv().expect("peer hung up")
    }

    /// All-to-all: `chunks[j]` goes to rank `j`; returns the chunks received
    /// from every rank (own chunk passed through untouched).
    pub fn all_to_all(&self, mut chunks: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        assert_eq!(chunks.len(), self.world, "all_to_all needs one chunk per rank");
        let payload: usize = chunks.iter().map(|c| c.len() * 4).sum();
        let wire = payload - chunks[self.rank].len() * 4;
        self.account(CollectiveKind::AllToAll, payload, wire);
        let own = std::mem::take(&mut chunks[self.rank]);
        for (j, chunk) in chunks.into_iter().enumerate() {
            if j != self.rank {
                self.send_to(j, chunk);
            }
        }
        let mut out: Vec<Vec<f32>> = (0..self.world).map(|_| Vec::new()).collect();
        out[self.rank] = own;
        for j in 0..self.world {
            if j != self.rank {
                out[j] = self.recv_from(j);
            }
        }
        out
    }

    /// All-gather: every rank contributes `data`; returns all contributions
    /// indexed by rank.
    pub fn all_gather(&self, data: Vec<f32>) -> Vec<Vec<f32>> {
        let bytes = data.len() * 4;
        self.account(CollectiveKind::AllGather, bytes * self.world, bytes * (self.world - 1));
        for j in 0..self.world {
            if j != self.rank {
                self.send_to(j, data.clone());
            }
        }
        let mut out: Vec<Vec<f32>> = (0..self.world).map(|_| Vec::new()).collect();
        out[self.rank] = data;
        for j in 0..self.world {
            if j != self.rank {
                out[j] = self.recv_from(j);
            }
        }
        out
    }

    /// All-reduce (sum): element-wise sum of every rank's `data`.
    pub fn all_reduce_sum(&self, data: Vec<f32>) -> Vec<f32> {
        // Wire volume lands on the underlying all-gather's ledger.
        self.account(CollectiveKind::AllReduce, data.len() * 4, 0);
        let parts = self.all_gather(data);
        let len = parts[0].len();
        let mut acc = vec![0.0f32; len];
        for part in parts {
            debug_assert_eq!(part.len(), len);
            for (a, v) in acc.iter_mut().zip(part) {
                *a += v;
            }
        }
        acc
    }

    /// Reduce-scatter (sum): `chunks[j]` is this rank's contribution to rank
    /// `j`'s result; returns the element-wise sum of chunk `rank` across all
    /// ranks.
    pub fn reduce_scatter_sum(&self, chunks: Vec<Vec<f32>>) -> Vec<f32> {
        // Wire volume lands on the underlying all-to-all's ledger.
        self.account(CollectiveKind::ReduceScatter, chunks.iter().map(|c| c.len() * 4).sum(), 0);
        let received = self.all_to_all(chunks);
        let len = received[0].len();
        let mut acc = vec![0.0f32; len];
        for part in received {
            for (a, v) in acc.iter_mut().zip(part) {
                *a += v;
            }
        }
        acc
    }

    /// Broadcast from `root`: the root passes `Some(data)`, everyone else
    /// `None`; all ranks return the root's data.
    pub fn broadcast(&self, root: usize, data: Option<Vec<f32>>) -> Vec<f32> {
        if self.rank == root {
            let data = data.expect("root must supply data");
            let bytes = data.len() * 4;
            self.account(CollectiveKind::Broadcast, bytes, bytes * (self.world - 1));
            for j in 0..self.world {
                if j != root {
                    self.send_to(j, data.clone());
                }
            }
            data
        } else {
            let data = self.recv_from(root);
            self.account(CollectiveKind::Broadcast, data.len() * 4, 0);
            data
        }
    }

    /// Barrier: no rank proceeds until all ranks arrive.
    pub fn barrier(&self) {
        self.account(CollectiveKind::Barrier, 0, 0);
        for j in 0..self.world {
            if j != self.rank {
                self.send_to(j, Vec::new());
            }
        }
        for j in 0..self.world {
            if j != self.rank {
                let _ = self.recv_from(j);
            }
        }
    }
}

/// How one rank of a [`DeviceGroup::try_run`] call failed.
#[derive(Clone, Debug)]
pub enum RankFailure {
    /// An injected [`FaultPlan`] crash fired on this rank.
    Crash(RankCrash),
    /// The rank panicked for another reason (including the "peer hung up"
    /// cascade a crashed neighbour causes).
    Panic(String),
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankFailure::Crash(c) => {
                write!(f, "injected crash on rank {} at collective op {}", c.rank, c.op)
            }
            RankFailure::Panic(msg) => write!(f, "rank panicked: {msg}"),
        }
    }
}

/// A group of simulated devices. [`DeviceGroup::run`] executes one closure
/// per rank on its own thread and returns the per-rank results.
pub struct DeviceGroup {
    world: usize,
    stats: Arc<CommStats>,
    recorder: RecorderHandle,
    fault: Option<Arc<FaultState>>,
}

impl DeviceGroup {
    /// Create a group of `world` simulated devices.
    pub fn new(world: usize) -> Self {
        Self::with_recorder(world, torchgt_obs::noop())
    }

    /// Create a group whose collectives report per-invocation ops/volume to
    /// `recorder` (in addition to the always-on [`CommStats`] counters).
    pub fn with_recorder(world: usize, recorder: RecorderHandle) -> Self {
        assert!(world >= 1);
        Self { world, stats: Arc::new(CommStats::default()), recorder, fault: None }
    }

    /// Swap the recorder collectives report to (applies to subsequent
    /// [`DeviceGroup::run`] calls).
    pub fn attach_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Install (or clear) a fault-injection plan for subsequent runs. An
    /// installed crash fires at most once across the group's lifetime, so a
    /// recovery re-run over the same group proceeds clean.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan.map(|p| Arc::new(FaultState::new(p, self.world)));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault.as_ref().map(|f| f.plan)
    }

    /// Number of ranks.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// Communication-volume statistics accumulated across runs.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Build the P×P channel mesh and one [`Communicator`] per rank.
    fn build_comms(&self) -> Vec<Communicator> {
        let p = self.world;
        if let Some(fs) = &self.fault {
            fs.reset_counters();
        }
        let mut txs: Vec<Vec<Option<Sender<Vec<f32>>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        let mut rxs: Vec<Vec<Option<Receiver<Vec<f32>>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for i in 0..p {
            for j in 0..p {
                if i == j {
                    continue;
                }
                let (tx, rx) = unbounded();
                txs[i][j] = Some(tx); // i → j
                rxs[j][i] = Some(rx); // j receives from i
            }
        }
        let mut comms: Vec<Communicator> = Vec::with_capacity(p);
        for (rank, (tx_row, rx_row)) in txs.into_iter().zip(rxs).enumerate() {
            let (dummy_tx, dummy_rx) = unbounded();
            let senders = tx_row.into_iter().map(|t| t.unwrap_or_else(|| dummy_tx.clone())).collect();
            let receivers = {
                let mut v: Vec<Receiver<Vec<f32>>> = Vec::with_capacity(p);
                for r in rx_row {
                    v.push(r.unwrap_or_else(|| dummy_rx.clone()));
                }
                v
            };
            comms.push(Communicator {
                rank,
                world: p,
                senders,
                receivers,
                stats: Arc::clone(&self.stats),
                recorder: Arc::clone(&self.recorder),
                fault: self.fault.clone(),
            });
        }
        comms
    }

    /// Run `f(communicator)` on every rank concurrently, returning results in
    /// rank order. Collective calls inside `f` must be made by *all* ranks in
    /// the same order (the usual SPMD contract). Panics if any rank panics;
    /// use [`DeviceGroup::try_run`] when a fault plan may crash a rank.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(Communicator) -> R + Sync,
        R: Send,
    {
        let comms = self.build_comms();
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(move || f(comm)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        })
    }

    /// Like [`DeviceGroup::run`] but crash-tolerant: each rank's panic is
    /// contained and reported as a [`RankFailure`] in that rank's slot
    /// instead of tearing the caller down. An injected crash surfaces as
    /// [`RankFailure::Crash`] on its rank while the peers it strands
    /// surface as the "peer hung up" cascade — the whole-group abort
    /// semantics of a real NCCL job, observable instead of fatal.
    pub fn try_run<F, R>(&self, f: F) -> Vec<Result<R, RankFailure>>
    where
        F: Fn(Communicator) -> R + Sync,
        R: Send,
    {
        let comms = self.build_comms();
        let f = &f;
        quiet_crash_panics(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = comms
                    .into_iter()
                    .map(|comm| scope.spawn(move || f(comm)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => Ok(r),
                        Err(payload) => Err(classify_panic(payload)),
                    })
                    .collect()
            })
        })
    }
}

/// Map a joined panic payload to a [`RankFailure`].
fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> RankFailure {
    match payload.downcast::<RankCrash>() {
        Ok(crash) => RankFailure::Crash(*crash),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            RankFailure::Panic(msg)
        }
    }
}

/// True for panics [`DeviceGroup::try_run`] expects and contains: injected
/// [`RankCrash`]es and the "peer hung up" cascade they cause.
fn is_expected_crash(info: &std::panic::PanicHookInfo<'_>) -> bool {
    if info.payload().downcast_ref::<RankCrash>().is_some() {
        return true;
    }
    let msg = info
        .payload()
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| info.payload().downcast_ref::<String>().cloned());
    msg.is_some_and(|m| m.contains("peer hung up"))
}

/// Run `f` with a panic hook that silences the expected crash-cascade
/// panics (they are *handled* — per-rank results carry them), forwarding
/// everything else to the previously installed hook. Hook swaps are
/// serialized process-wide; the previous hook is restored afterwards.
fn quiet_crash_panics<T>(f: impl FnOnce() -> T) -> T {
    use std::sync::Mutex;
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev: Arc<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync> =
        Arc::from(std::panic::take_hook());
    let forward = Arc::clone(&prev);
    std::panic::set_hook(Box::new(move |info| {
        if !is_expected_crash(info) {
            forward(info);
        }
    }));
    let out = f();
    drop(std::panic::take_hook());
    std::panic::set_hook(Box::new(move |info| prev(info)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_permutes_chunks() {
        let group = DeviceGroup::new(4);
        let results = group.run(|comm| {
            let r = comm.rank() as f32;
            // Rank r sends [r*10 + j] to rank j.
            let chunks: Vec<Vec<f32>> = (0..4).map(|j| vec![r * 10.0 + j as f32]).collect();
            comm.all_to_all(chunks)
        });
        // Rank j receives r*10 + j from every rank r.
        for (j, recv) in results.iter().enumerate() {
            for (r, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk, &vec![r as f32 * 10.0 + j as f32]);
            }
        }
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let group = DeviceGroup::new(3);
        let results = group.run(|comm| comm.all_gather(vec![comm.rank() as f32; 2]));
        for recv in results {
            assert_eq!(recv, vec![vec![0.0; 2], vec![1.0; 2], vec![2.0; 2]]);
        }
    }

    #[test]
    fn all_reduce_sums() {
        let group = DeviceGroup::new(5);
        let results = group.run(|comm| comm.all_reduce_sum(vec![comm.rank() as f32, 1.0]));
        for recv in results {
            assert_eq!(recv, vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0, 5.0]);
        }
    }

    #[test]
    fn reduce_scatter_matches_manual_sum() {
        let group = DeviceGroup::new(3);
        let results = group.run(|comm| {
            let r = comm.rank() as f32;
            let chunks: Vec<Vec<f32>> = (0..3).map(|j| vec![r + j as f32]).collect();
            comm.reduce_scatter_sum(chunks)
        });
        // Rank j gets Σ_r (r + j) = 3 + 3j... with ranks 0,1,2: Σ r = 3.
        for (j, recv) in results.iter().enumerate() {
            assert_eq!(recv, &vec![3.0 + 3.0 * j as f32]);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let group = DeviceGroup::new(4);
        let results = group.run(|comm| {
            let data = if comm.rank() == 2 { Some(vec![7.0, 8.0]) } else { None };
            comm.broadcast(2, data)
        });
        for recv in results {
            assert_eq!(recv, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn barrier_completes() {
        let group = DeviceGroup::new(8);
        let results = group.run(|comm| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn stats_accumulate_volume() {
        let group = DeviceGroup::new(2);
        group.run(|comm| {
            comm.all_gather(vec![0.0; 256]);
        });
        // Each of 2 ranks sends 256 floats to 1 peer = 2 × 1024 bytes.
        assert_eq!(group.stats().bytes_sent(), 2 * 256 * 4);
        assert_eq!(group.stats().ops(CollectiveKind::AllGather), 2);
    }

    #[test]
    fn all_to_all_conserves_tokens_and_balances_volume() {
        // The graph-parallel pipeline redistributes S sequence tokens across
        // P ranks with one all-to-all. Token identity must be conserved
        // (nothing dropped or duplicated) and, with a balanced destination
        // map, every rank should end up holding ~S/P tokens.
        const P: usize = 8;
        const S: usize = 4096;
        const PER_RANK: usize = S / P;
        let group = DeviceGroup::new(P);
        let results = group.run(|comm| {
            let r = comm.rank();
            // Rank r starts with tokens [r*S/P, (r+1)*S/P); token t is bound
            // for rank (t % P).
            let mut chunks: Vec<Vec<f32>> = (0..P).map(|_| Vec::new()).collect();
            for t in (r * PER_RANK)..((r + 1) * PER_RANK) {
                chunks[t % P].push(t as f32);
            }
            comm.all_to_all(chunks)
        });
        let mut seen = vec![0u32; S];
        for (j, recv) in results.iter().enumerate() {
            let volume: usize = recv.iter().map(Vec::len).sum();
            assert_eq!(volume, PER_RANK, "rank {j} volume should be S/P");
            for chunk in recv {
                for &tok in chunk {
                    let t = tok as usize;
                    assert_eq!(t % P, j, "token {t} landed on wrong rank {j}");
                    seen[t] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "every token exactly once");
    }

    #[test]
    fn all_to_all_conserves_uneven_token_counts() {
        // Skewed destinations: every token goes to rank 0. Totals must still
        // be conserved even though the volume is maximally unbalanced.
        const P: usize = 4;
        const PER_RANK: usize = 32;
        let group = DeviceGroup::new(P);
        let results = group.run(|comm| {
            let r = comm.rank() as f32;
            let mut chunks: Vec<Vec<f32>> = (0..P).map(|_| Vec::new()).collect();
            chunks[0] = vec![r; PER_RANK];
            comm.all_to_all(chunks)
        });
        let rank0_total: usize = results[0].iter().map(Vec::len).sum();
        assert_eq!(rank0_total, P * PER_RANK);
        for (j, recv) in results.iter().enumerate().skip(1) {
            let volume: usize = recv.iter().map(Vec::len).sum();
            assert_eq!(volume, 0, "rank {j} should receive nothing");
        }
    }

    #[test]
    fn recorder_sees_per_kind_volume() {
        use torchgt_obs::MemoryRecorder;
        let mem = Arc::new(MemoryRecorder::default());
        let group = DeviceGroup::with_recorder(4, mem.clone());
        group.run(|comm| {
            // 4 chunks of 8 floats each: 128 B payload, 96 B cross-link.
            comm.all_to_all((0..4).map(|_| vec![0.0f32; 8]).collect());
            comm.barrier();
        });
        let report = mem.report();
        let a2a = report.collective("all_to_all").unwrap();
        assert_eq!(a2a.ops, 4, "one invocation per rank");
        assert_eq!(a2a.payload_bytes, 4 * 128);
        assert_eq!(a2a.wire_bytes, 4 * 96);
        assert_eq!(report.collective("barrier").unwrap().wire_bytes, 0);
        // The always-on stats ledger agrees with the recorder.
        assert_eq!(group.stats().wire_bytes(CollectiveKind::AllToAll), 4 * 96);
    }

    #[test]
    fn try_run_without_faults_matches_run() {
        let group = DeviceGroup::new(3);
        let results = group.try_run(|comm| comm.all_reduce_sum(vec![comm.rank() as f32]));
        for r in results {
            assert_eq!(r.unwrap(), vec![3.0]);
        }
    }

    #[test]
    fn injected_crash_is_contained_and_one_shot() {
        let mut group = DeviceGroup::new(4);
        // Rank 2 dies at its second collective op.
        group.set_fault_plan(Some(FaultPlan::crash_at(9, 2, 1)));
        let results = group.try_run(|comm| {
            comm.barrier();
            comm.all_reduce_sum(vec![1.0])
        });
        assert!(
            matches!(&results[2], Err(RankFailure::Crash(c)) if c.rank == 2 && c.op == 1),
            "rank 2 should report the injected crash, got {:?}",
            results[2]
        );
        let peer_failures =
            results.iter().filter(|r| matches!(r, Err(RankFailure::Panic(_)))).count();
        assert!(peer_failures > 0, "peers should cascade-fail when rank 2 dies");
        // Recovery attempt on the same group: crash already fired, all clean.
        let retry = group.try_run(|comm| {
            comm.barrier();
            comm.all_reduce_sum(vec![1.0])
        });
        for r in retry {
            assert_eq!(r.unwrap(), vec![4.0]);
        }
    }

    #[test]
    fn delays_and_drops_do_not_change_results() {
        let mut group = DeviceGroup::new(4);
        group.set_fault_plan(Some(FaultPlan {
            seed: 5,
            delay_prob: 0.3,
            delay_s: 0.0005,
            drop_prob: 0.4,
            max_retries: 3,
            retry_backoff_s: 0.0005,
            ..FaultPlan::default()
        }));
        let faulty = group.run(|comm| {
            let mut out = comm.all_reduce_sum(vec![comm.rank() as f32, 2.0]);
            out.extend(comm.all_gather(vec![comm.rank() as f32]).concat());
            out
        });
        let clean_group = DeviceGroup::new(4);
        let clean = clean_group.run(|comm| {
            let mut out = comm.all_reduce_sum(vec![comm.rank() as f32, 2.0]);
            out.extend(comm.all_gather(vec![comm.rank() as f32]).concat());
            out
        });
        assert_eq!(faulty, clean, "faults must never perturb delivered data");
        assert!(group.stats().retries() > 0, "drop plan should have caused retries");
    }

    #[test]
    fn faults_are_recorded_as_events() {
        use torchgt_obs::{Event, MemoryRecorder};
        let mem = Arc::new(MemoryRecorder::default());
        let mut group = DeviceGroup::with_recorder(3, mem.clone());
        group.set_fault_plan(Some(FaultPlan {
            seed: 11,
            drop_prob: 0.5,
            max_retries: 2,
            crash: Some(crate::fault::CrashPoint { rank: 1, op: 2 }),
            ..FaultPlan::default()
        }));
        let results = group.try_run(|comm| {
            comm.barrier();
            comm.barrier();
            comm.barrier();
            comm.rank()
        });
        assert!(results.iter().any(|r| r.is_err()));
        let report = mem.report();
        assert_eq!(report.events_of(Event::RANK_CRASH).len(), 1, "crash event recorded");
        let crash = &report.events_of(Event::RANK_CRASH)[0];
        assert_eq!(crash.num("rank"), Some(1.0));
        assert!(!report.events_of(Event::FAULT_DROP).is_empty(), "drop events recorded");
    }

    #[test]
    fn fault_decisions_replay_identically() {
        let run_once = || {
            let mut group = DeviceGroup::new(2);
            group.set_fault_plan(Some(FaultPlan::drops(3, 0.5, 4)));
            group.run(|comm| comm.all_gather(vec![comm.rank() as f32]));
            group.stats().retries()
        };
        assert_eq!(run_once(), run_once(), "same seed must give the same fault schedule");
    }

    #[test]
    fn single_rank_group_works() {
        let group = DeviceGroup::new(1);
        let results = group.run(|comm| {
            let out = comm.all_to_all(vec![vec![1.0, 2.0]]);
            let red = comm.all_reduce_sum(vec![3.0]);
            (out, red)
        });
        assert_eq!(results[0].0, vec![vec![1.0, 2.0]]);
        assert_eq!(results[0].1, vec![3.0]);
    }
}
