//! Alternative node-reordering strategies.
//!
//! TorchGT's cluster-aware reordering (METIS-style, in [`crate::partition`])
//! is compared here against the classic bandwidth-minimising orderings used
//! in sparse linear algebra. These serve as ablation baselines: the paper's
//! claim is that *community* structure (not just bandwidth) is what the
//! attention kernels need.

use crate::csr::CsrGraph;
use std::collections::VecDeque;

/// Reverse Cuthill–McKee ordering: BFS from a pseudo-peripheral vertex,
/// visiting neighbours in increasing-degree order, then reversed. Returns
/// `perm` with `perm[new_id] = old_id` (feed to [`CsrGraph::permute`]).
pub fn reverse_cuthill_mckee(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut perm: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_unstable_by_key(|&v| g.degree(v as usize));
    for &start in &by_degree {
        if visited[start as usize] {
            continue;
        }
        // Pseudo-peripheral start: double sweep from the low-degree seed.
        let far = bfs_farthest(g, start, &visited);
        let mut queue = VecDeque::new();
        queue.push_back(far);
        visited[far as usize] = true;
        while let Some(v) = queue.pop_front() {
            perm.push(v);
            let mut nbrs: Vec<u32> = g
                .neighbors(v as usize)
                .iter()
                .copied()
                .filter(|&u| !visited[u as usize])
                .collect();
            nbrs.sort_unstable_by_key(|&u| g.degree(u as usize));
            for u in nbrs {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    perm.reverse();
    perm
}

fn bfs_farthest(g: &CsrGraph, start: u32, visited: &[bool]) -> u32 {
    let n = g.num_nodes();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    let mut far = start;
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v as usize) {
            if dist[u as usize] == u32::MAX && !visited[u as usize] {
                dist[u as usize] = dist[v as usize] + 1;
                if dist[u as usize] > dist[far as usize] {
                    far = u;
                }
                queue.push_back(u);
            }
        }
    }
    far
}

/// Degree-sorted ordering (hubs first) — a cheap locality heuristic used by
/// several GNN systems; another ablation baseline.
pub fn degree_order(g: &CsrGraph) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..g.num_nodes() as u32).collect();
    perm.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v as usize)));
    perm
}

/// Adjacency bandwidth: `max |i - j|` over edges — what RCM minimises.
pub fn bandwidth(g: &CsrGraph) -> usize {
    let mut bw = 0usize;
    for v in 0..g.num_nodes() {
        for &u in g.neighbors(v) {
            bw = bw.max((v as i64 - u as i64).unsigned_abs() as usize);
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clustered_power_law, erdos_renyi, path_graph, ClusteredConfig};

    fn is_permutation(perm: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        perm.iter().all(|&v| {
            let v = v as usize;
            v < n && !std::mem::replace(&mut seen[v], true)
        }) && perm.len() == n
    }

    #[test]
    fn rcm_is_a_permutation() {
        let g = erdos_renyi(200, 500, 3);
        let perm = reverse_cuthill_mckee(&g);
        assert!(is_permutation(&perm, 200));
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let g = CsrGraph::from_edges(10, &[(0, 1), (2, 3), (5, 6)]);
        let perm = reverse_cuthill_mckee(&g);
        assert!(is_permutation(&perm, 10));
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_path() {
        // A path permuted randomly has huge bandwidth; RCM restores ~1.
        let g = path_graph(128);
        let shuffle: Vec<u32> = {
            let mut v: Vec<u32> = (0..128).collect();
            // Deterministic LCG shuffle.
            let mut state = 12345u64;
            for i in (1..128usize).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                v.swap(i, j);
            }
            v
        };
        let shuffled = g.permute(&shuffle);
        let before = bandwidth(&shuffled);
        let rcm = reverse_cuthill_mckee(&shuffled);
        let after = bandwidth(&shuffled.permute(&rcm));
        assert!(after < before / 4, "bandwidth {before} → {after}");
        assert_eq!(after, 1, "a path's optimal bandwidth is 1");
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n: 300, communities: 3, avg_degree: 8.0, intra_fraction: 0.8 },
            1,
        );
        let perm = degree_order(&g);
        assert!(is_permutation(&perm, 300));
        let degs: Vec<usize> = perm.iter().map(|&v| g.degree(v as usize)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }
}
