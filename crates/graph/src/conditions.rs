//! The Dual-interleaved Attention safety conditions (§III-B of the paper).
//!
//! TorchGT uses the topology-induced sparse pattern only when three
//! conditions hold for the sequence's attention graph `G̃`:
//!
//! * **C1** — every node attends to itself (self-loops present);
//! * **C2** — a Hamiltonian path connects all nodes; checked heuristically
//!   with Dirac's theorem (`min_degree ≥ n/2` guarantees a Hamiltonian
//!   *cycle*) plus cheaper sufficient conditions, since the exact problem is
//!   NP-complete;
//! * **C3** — every node can reach every other within `L` attention layers,
//!   i.e. the graph is connected with diameter ≤ `L` hops of *some* path
//!   (the paper's "directly or indirectly after L layers").
//!
//! When the check fails, the runtime falls back to fully-connected attention
//! for that sequence, which trivially satisfies all three conditions.

use crate::csr::CsrGraph;
use crate::spd::diameter_estimate;

/// Outcome of evaluating the three conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConditionReport {
    /// C1: all self-loops present.
    pub c1_self_loops: bool,
    /// C2: Hamiltonian-path heuristic verdict.
    pub c2_hamiltonian: bool,
    /// C3: L-layer reachability.
    pub c3_reachable: bool,
}

impl ConditionReport {
    /// True when the sparse topology pattern may be used.
    pub fn sparse_ok(&self) -> bool {
        self.c1_self_loops && self.c2_hamiltonian && self.c3_reachable
    }
}

/// C1: does every node have a self-loop?
pub fn check_self_loops(g: &CsrGraph) -> bool {
    (0..g.num_nodes()).all(|v| g.has_edge(v, v))
}

/// C2 heuristic. Exact Hamiltonian-path detection is NP-complete; following
/// the paper we use Dirac's theorem as the fast certificate and accept two
/// other cheap sufficient conditions that cover the graphs the runtime
/// actually builds:
///
/// * Dirac: `n ≥ 3` and `min_degree ≥ n/2` (Hamiltonian cycle ⇒ path);
/// * Ore-style check on a degree-ordered sample of non-adjacent pairs;
/// * the sequence-order path `0—1—…—(n-1)` is already present (the runtime's
///   cluster ordering often provides this after augmentation).
///
/// Self-loops are ignored for degree purposes.
pub fn check_hamiltonian_heuristic(g: &CsrGraph) -> bool {
    let n = g.num_nodes();
    if n <= 2 {
        return true;
    }
    let simple_degree = |v: usize| {
        let d = g.degree(v);
        if g.has_edge(v, v) {
            d - 1
        } else {
            d
        }
    };
    // Dirac's certificate.
    let min_deg = (0..n).map(simple_degree).min().unwrap_or(0);
    if 2 * min_deg >= n {
        return true;
    }
    // Explicit sequence path.
    if (1..n).all(|v| g.has_edge(v - 1, v)) {
        return true;
    }
    // Ore's condition (deg u + deg v ≥ n for all non-adjacent u,v) checked
    // exactly on small graphs, sampled on large ones.
    let check_pair = |u: usize, v: usize| -> bool {
        g.has_edge(u, v) || simple_degree(u) + simple_degree(v) >= n
    };
    if n <= 256 {
        for u in 0..n {
            for v in (u + 1)..n {
                if !check_pair(u, v) {
                    return false;
                }
            }
        }
        true
    } else {
        // Large graph: Ore requires degree sums ≥ n everywhere, which sparse
        // graphs cannot meet; report false so the caller augments the graph.
        false
    }
}

/// C3: can every node attend to every other (directly or transitively) after
/// `l_layers` rounds of neighbourhood aggregation? Equivalent to: the graph
/// is connected and its diameter is ≤ `l_layers`... for the exact property;
/// we use the double-sweep diameter estimate which is exact on the
/// tree-like/cluster graphs in play and conservative otherwise.
pub fn check_l_hop_reachability(g: &CsrGraph, l_layers: u8) -> bool {
    if g.num_nodes() == 0 {
        return true;
    }
    if !g.is_connected() {
        return false;
    }
    diameter_estimate(g, l_layers.saturating_add(1)) <= l_layers
}

/// Evaluate all three conditions for an `l_layers`-deep model.
pub fn check_conditions(g: &CsrGraph, l_layers: u8) -> ConditionReport {
    ConditionReport {
        c1_self_loops: check_self_loops(g),
        c2_hamiltonian: check_hamiltonian_heuristic(g),
        c3_reachable: check_l_hop_reachability(g, l_layers),
    }
}

/// Augment a sequence graph so the conditions hold: add all self-loops (C1)
/// and the Hamiltonian sequence path `0—1—…—(n-1)` (C2), which also makes the
/// graph connected. This is how the runtime repairs a failing sequence graph
/// instead of paying for dense attention every time.
pub fn augment_for_conditions(g: &CsrGraph) -> CsrGraph {
    let n = g.num_nodes();
    let with_loops = g.with_self_loops();
    let mut extra: Vec<(u32, u32)> = Vec::new();
    for v in 1..n {
        if !with_loops.has_edge(v - 1, v) {
            extra.push(((v - 1) as u32, v as u32));
        }
    }
    if extra.is_empty() {
        return with_loops;
    }
    // Rebuild including the path edges.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(with_loops.num_arcs() / 2 + extra.len());
    for v in 0..n {
        for &nb in with_loops.neighbors(v) {
            if nb as usize >= v {
                edges.push((v as u32, nb));
            }
        }
    }
    edges.extend(extra);
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, erdos_renyi, path_graph, star_graph};

    #[test]
    fn complete_graph_satisfies_everything() {
        let g = complete_graph(8).with_self_loops();
        let rep = check_conditions(&g, 4);
        assert!(rep.c1_self_loops && rep.c2_hamiltonian && rep.c3_reachable);
        assert!(rep.sparse_ok());
    }

    #[test]
    fn missing_self_loops_fail_c1() {
        let g = complete_graph(8);
        assert!(!check_self_loops(&g));
        assert!(check_self_loops(&g.with_self_loops()));
    }

    #[test]
    fn dirac_certificate_fires() {
        // K5 minus nothing: min degree 4 ≥ 5/2.
        assert!(check_hamiltonian_heuristic(&complete_graph(5)));
        // A star has no Hamiltonian path for n ≥ 4 and fails the heuristics.
        assert!(!check_hamiltonian_heuristic(&star_graph(6)));
    }

    #[test]
    fn sequence_path_certificate_fires() {
        let g = path_graph(50);
        assert!(check_hamiltonian_heuristic(&g));
        // Cycles contain the sequence path too.
        assert!(check_hamiltonian_heuristic(&cycle_graph(50)));
    }

    #[test]
    fn c3_depends_on_depth() {
        let g = path_graph(10);
        assert!(!check_l_hop_reachability(&g, 4)); // diameter 9
        assert!(check_l_hop_reachability(&g, 9));
        assert!(check_l_hop_reachability(&star_graph(10), 2));
    }

    #[test]
    fn c3_fails_when_disconnected() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!check_l_hop_reachability(&g, 10));
    }

    #[test]
    fn augmentation_repairs_sparse_random_graph() {
        let g = erdos_renyi(200, 150, 4); // sparse, likely disconnected
        let aug = augment_for_conditions(&g);
        let rep = check_conditions(&aug, 200);
        assert!(rep.c1_self_loops, "self loops added");
        assert!(rep.c2_hamiltonian, "sequence path added");
        assert!(aug.is_connected());
        // Original edges are preserved.
        for v in 0..g.num_nodes() {
            for &nb in g.neighbors(v) {
                assert!(aug.has_edge(v, nb as usize));
            }
        }
    }

    #[test]
    fn augmentation_is_idempotent_on_good_graphs() {
        let g = augment_for_conditions(&path_graph(10));
        let g2 = augment_for_conditions(&g);
        assert_eq!(g.num_arcs(), g2.num_arcs());
    }

    #[test]
    fn c1_requires_every_node_looped() {
        // Hand-built 4-node graph where only nodes 0..3 carry self-loops.
        let g = CsrGraph::from_edges(
            4,
            &[(0, 0), (1, 1), (2, 2), (0, 1), (1, 2), (2, 3)],
        );
        assert!(!check_self_loops(&g), "node 3 has no self-loop");
        assert!(check_self_loops(&g.with_self_loops()));
    }

    #[test]
    fn c2_ore_certificate_fires_without_dirac() {
        // Six nodes: node 5 has degree 2 (defeats Dirac, 2·2 < 6), nodes
        // 0–4 have degree 4, and every non-adjacent pair sums to ≥ 6, so
        // Ore's condition certifies a Hamiltonian cycle. The sequence path
        // cannot fire either: 0—1 is absent.
        let g = CsrGraph::from_edges(
            6,
            &[
                (5, 0), (5, 1),
                (2, 0), (2, 1), (2, 3), (2, 4),
                (3, 0), (3, 1), (3, 4),
                (4, 0), (4, 1),
            ],
        );
        assert!(!g.has_edge(0, 1), "sequence-path certificate must not fire");
        assert!(check_hamiltonian_heuristic(&g));
        // Dropping an edge from node 5 leaves degree 1 — no Hamiltonian
        // path can visit it mid-sequence, and the heuristic rejects.
        let broken = CsrGraph::from_edges(
            6,
            &[
                (5, 0),
                (2, 0), (2, 1), (2, 3), (2, 4),
                (3, 0), (3, 1), (3, 4),
                (4, 0), (4, 1),
            ],
        );
        assert!(!check_hamiltonian_heuristic(&broken));
    }

    #[test]
    fn c2_rejects_bridge_star_without_certificates() {
        // Two stars joined by a bridge: no Hamiltonian path exists and none
        // of the three certificates can fire.
        let g = CsrGraph::from_edges(
            8,
            &[(0, 1), (0, 2), (0, 3), (4, 5), (4, 6), (4, 7), (0, 4)],
        );
        assert!(!check_hamiltonian_heuristic(&g));
    }

    #[test]
    fn c3_exact_at_diameter_boundary() {
        // Balanced binary-ish tree of depth 3 → diameter 6.
        let g = CsrGraph::from_edges(
            15,
            &[
                (0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6),
                (3, 7), (3, 8), (4, 9), (4, 10), (5, 11), (5, 12),
                (6, 13), (6, 14),
            ],
        );
        assert!(!check_l_hop_reachability(&g, 5), "diameter is 6, not ≤ 5");
        assert!(check_l_hop_reachability(&g, 6));
        assert!(check_l_hop_reachability(&g, 7));
    }

    #[test]
    fn report_reflects_partial_failures() {
        // Path graph with self-loops: C1 ✓, C2 ✓ (sequence path), C3 ✗ at
        // shallow depth — sparse_ok() must be false on any single failure.
        let g = path_graph(12).with_self_loops();
        let rep = check_conditions(&g, 3);
        assert!(rep.c1_self_loops);
        assert!(rep.c2_hamiltonian);
        assert!(!rep.c3_reachable);
        assert!(!rep.sparse_ok());

        // Same graph, deep enough model: all three hold.
        let rep_deep = check_conditions(&g, 11);
        assert!(rep_deep.sparse_ok());

        // Remove the loops: only C1 flips.
        let rep_noloop = check_conditions(&path_graph(12), 11);
        assert!(!rep_noloop.c1_self_loops);
        assert!(rep_noloop.c2_hamiltonian);
        assert!(!rep_noloop.sparse_ok());
    }
}
