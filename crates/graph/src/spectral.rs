//! Spectral graph partitioning.
//!
//! The paper's §III-C cites Newman's spectral community methods among the
//! classic approaches METIS-style multilevel partitioning competes with.
//! This module implements recursive spectral bisection — split at the median
//! of the Fiedler vector (second eigenvector of the symmetric normalised
//! Laplacian, found by deflated power iteration) — as an alternative backend
//! for the cluster-aware reordering and an ablation baseline for
//! [`crate::partition`].

use crate::csr::CsrGraph;

/// Approximate Fiedler vector of the symmetric normalised Laplacian via
/// power iteration on `2I − L_sym`, deflating the trivial `D^{1/2}·1`
/// eigenvector. Deterministic for a given `seed`.
pub fn fiedler_vector(g: &CsrGraph, iters: usize, seed: u64) -> Vec<f32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let inv_sqrt_deg: Vec<f32> =
        (0..n).map(|v| 1.0 / ((g.degree(v) as f32).max(1.0)).sqrt()).collect();
    let mut trivial: Vec<f32> =
        (0..n).map(|v| (g.degree(v) as f32).max(1.0).sqrt()).collect();
    normalize(&mut trivial);
    // Deterministic pseudo-random start.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut x: Vec<f32> = (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    let mut y = vec![0.0f32; n];
    for _ in 0..iters {
        // Deflate the trivial component.
        let dot: f32 = x.iter().zip(&trivial).map(|(a, b)| a * b).sum();
        for (xi, ti) in x.iter_mut().zip(&trivial) {
            *xi -= dot * ti;
        }
        normalize(&mut x);
        // y = (2I − L_sym)x = x + D^{-1/2} A D^{-1/2} x.
        for v in 0..n {
            let mut acc = 0.0f32;
            for &nb in g.neighbors(v) {
                let u = nb as usize;
                acc += inv_sqrt_deg[v] * inv_sqrt_deg[u] * x[u];
            }
            y[v] = x[v] + acc;
        }
        std::mem::swap(&mut x, &mut y);
    }
    normalize(&mut x);
    x
}

fn normalize(x: &mut [f32]) {
    let norm = x.iter().map(|v| v * v).sum::<f32>().sqrt().max(f32::MIN_POSITIVE);
    for v in x.iter_mut() {
        *v /= norm;
    }
}

/// Recursive spectral partition into `k` near-equal parts. Returns the part
/// id of every node, in `0..k`.
pub fn spectral_partition(g: &CsrGraph, k: usize, seed: u64) -> Vec<u32> {
    assert!(k >= 1);
    let n = g.num_nodes();
    let mut assignment = vec![0u32; n];
    if k == 1 || n == 0 {
        return assignment;
    }
    // Work queue: (node ids, part range).
    let mut stack: Vec<(Vec<u32>, usize, usize)> = vec![((0..n as u32).collect(), 0, k)];
    while let Some((ids, lo, parts)) = stack.pop() {
        if parts == 1 {
            for &v in &ids {
                assignment[v as usize] = lo as u32;
            }
            continue;
        }
        let sub = g.induced_subgraph(&ids);
        let f = fiedler_vector(&sub, 150, seed ^ (lo as u64) << 8 ^ parts as u64);
        // Split at the weighted median so part sizes follow the part split.
        let k0 = parts / 2;
        let frac0 = k0 as f64 / parts as f64;
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_unstable_by(|&a, &b| f[a].partial_cmp(&f[b]).unwrap());
        let cut = ((ids.len() as f64) * frac0).round() as usize;
        let mut ids0 = Vec::with_capacity(cut);
        let mut ids1 = Vec::with_capacity(ids.len() - cut);
        for (pos, &local) in order.iter().enumerate() {
            if pos < cut {
                ids0.push(ids[local]);
            } else {
                ids1.push(ids[local]);
            }
        }
        stack.push((ids0, lo, k0));
        stack.push((ids1, lo + k0, parts - k0));
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clustered_power_law, path_graph, ClusteredConfig};
    use crate::partition::edge_cut;

    #[test]
    fn fiedler_is_unit_and_deflated() {
        let g = path_graph(20);
        let f = fiedler_vector(&g, 200, 1);
        let norm: f32 = f.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-3);
        // Orthogonal to D^{1/2}·1.
        let dot: f32 = (0..20)
            .map(|v| f[v] * (g.degree(v) as f32).max(1.0).sqrt())
            .sum();
        assert!(dot.abs() < 1e-2, "trivial component {dot}");
    }

    #[test]
    fn path_bisection_cuts_one_edge() {
        let g = path_graph(64);
        let assign = spectral_partition(&g, 2, 3);
        assert!(edge_cut(&g, &assign) <= 6, "cut {}", edge_cut(&g, &assign));
        let c0 = assign.iter().filter(|&&c| c == 0).count();
        assert!((24..=40).contains(&c0), "balance {c0}");
    }

    #[test]
    fn recovers_planted_communities() {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n: 400, communities: 4, avg_degree: 12.0, intra_fraction: 0.95 },
            7,
        );
        let assign = spectral_partition(&g, 4, 2);
        let cut = edge_cut(&g, &assign);
        assert!(
            (cut as f64) < 0.5 * g.num_edges() as f64,
            "cut {cut} of {} — no better than random",
            g.num_edges()
        );
    }

    #[test]
    fn partition_is_valid_and_deterministic() {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n: 150, communities: 3, avg_degree: 6.0, intra_fraction: 0.8 },
            9,
        );
        let a = spectral_partition(&g, 3, 5);
        let b = spectral_partition(&g, 3, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| c < 3));
        for c in 0..3u32 {
            assert!(a.iter().any(|&x| x == c), "part {c} empty");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty = CsrGraph::from_edges(0, &[]);
        assert!(spectral_partition(&empty, 4, 0).is_empty());
        let single = CsrGraph::from_edges(1, &[]);
        assert_eq!(spectral_partition(&single, 1, 0), vec![0]);
    }
}
