//! Graph and cluster statistics.
//!
//! These drive the Elastic Computation Reformation decisions (per-cluster
//! sparsity β_C vs whole-graph sparsity β_G, §III-D) and the analyses behind
//! Figure 5.

use crate::csr::CsrGraph;
use crate::partition::ClusterOrder;

/// Degree distribution summary of a graph.
#[derive(Clone, Copy, Debug)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Gini coefficient of the degree distribution (0 = uniform, →1 =
    /// concentrated on hubs). Real-world power-law graphs score > 0.3.
    pub gini: f64,
}

/// Compute degree statistics.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_nodes();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, gini: 0.0 };
    }
    let mut degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let sum: usize = degrees.iter().sum();
    let mean = sum as f64 / n as f64;
    // Gini via the sorted formula: G = (2 Σ i·x_i) / (n Σ x) − (n+1)/n.
    let gini = if sum == 0 {
        0.0
    } else {
        let weighted: f64 =
            degrees.iter().enumerate().map(|(i, &d)| (i + 1) as f64 * d as f64).sum();
        (2.0 * weighted) / (n as f64 * sum as f64) - (n as f64 + 1.0) / n as f64
    };
    DegreeStats { min: degrees[0], max: degrees[n - 1], mean, gini }
}

/// Per-cluster-pair edge counts and sparsity of a clustered layout.
///
/// For a `k`-cluster ordering there are `k²` clusters in the attention-matrix
/// sense (cluster pairs); `counts[i][j]` is the number of adjacency nonzeros
/// between row-cluster `i` and column-cluster `j` (Figure 5(b) of the paper).
#[derive(Clone, Debug)]
pub struct ClusterMatrixStats {
    /// `k × k` nonzero counts.
    pub counts: Vec<Vec<usize>>,
    /// `k × k` sparsity β_C = nnz / (rows·cols) of each cluster pair.
    pub sparsity: Vec<Vec<f64>>,
    /// Whole-graph sparsity β_G.
    pub graph_sparsity: f64,
    /// Fraction of all nonzeros that land in the k diagonal clusters.
    pub diagonal_fraction: f64,
}

/// Compute cluster-pair statistics for a graph *already permuted* into
/// cluster order.
pub fn cluster_matrix_stats(g: &CsrGraph, order: &ClusterOrder) -> ClusterMatrixStats {
    let k = order.num_clusters();
    let mut counts = vec![vec![0usize; k]; k];
    for v in 0..g.num_nodes() {
        let cv = order.cluster_of(v) as usize;
        for &nb in g.neighbors(v) {
            let cn = order.cluster_of(nb as usize) as usize;
            counts[cv][cn] += 1;
        }
    }
    let mut sparsity = vec![vec![0.0f64; k]; k];
    let mut diag = 0usize;
    let mut total = 0usize;
    for i in 0..k {
        for j in 0..k {
            let cells = order.cluster_size(i) as f64 * order.cluster_size(j) as f64;
            sparsity[i][j] = if cells > 0.0 { counts[i][j] as f64 / cells } else { 0.0 };
            total += counts[i][j];
            if i == j {
                diag += counts[i][j];
            }
        }
    }
    ClusterMatrixStats {
        counts,
        sparsity,
        graph_sparsity: g.sparsity(),
        diagonal_fraction: if total > 0 { diag as f64 / total as f64 } else { 0.0 },
    }
}

/// Newman modularity of a partition (quality of community structure;
/// positive values mean denser-than-random intra-cluster connectivity).
pub fn modularity(g: &CsrGraph, assignment: &[u32]) -> f64 {
    let m2 = g.num_arcs() as f64; // = 2m
    if m2 == 0.0 {
        return 0.0;
    }
    let k = assignment.iter().copied().max().map(|v| v as usize + 1).unwrap_or(0);
    let mut intra = vec![0f64; k];
    let mut deg_sum = vec![0f64; k];
    for v in 0..g.num_nodes() {
        let c = assignment[v] as usize;
        deg_sum[c] += g.degree(v) as f64;
        for &nb in g.neighbors(v) {
            if assignment[nb as usize] as usize == c {
                intra[c] += 1.0;
            }
        }
    }
    (0..k).map(|c| intra[c] / m2 - (deg_sum[c] / m2).powi(2)).sum()
}

/// An irregularity score for a cluster pair: the mean gap between consecutive
/// nonzero columns within rows, normalised by cluster width. High values mean
/// scattered nonzeros ⇒ irregular (atomic-heavy) memory access; low values
/// mean the nonzeros are already compact.
pub fn irregularity(col_gaps: &[usize], width: usize) -> f64 {
    if col_gaps.is_empty() || width == 0 {
        return 0.0;
    }
    let mean_gap = col_gaps.iter().sum::<usize>() as f64 / col_gaps.len() as f64;
    (mean_gap / width as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clustered_power_law, complete_graph, star_graph, ClusteredConfig};
    use crate::partition::{cluster_order, partition};

    #[test]
    fn degree_stats_of_star() {
        let s = degree_stats(&star_graph(11));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert!(s.gini > 0.3, "star should be highly skewed, gini={}", s.gini);
    }

    #[test]
    fn degree_stats_of_regular_graph() {
        let s = degree_stats(&complete_graph(6));
        assert_eq!(s.min, s.max);
        assert!(s.gini.abs() < 1e-9);
    }

    #[test]
    fn cluster_stats_diagonal_dominates_on_clustered_graph() {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n: 600, communities: 6, avg_degree: 10.0, intra_fraction: 0.9 },
            1,
        );
        let assign = partition(&g, 6, 0);
        let order = cluster_order(&assign, 6);
        let rg = g.permute(&order.perm);
        let stats = cluster_matrix_stats(&rg, &order);
        assert!(stats.diagonal_fraction > 0.5, "diag frac {}", stats.diagonal_fraction);
        // Total counted nonzeros equal arcs.
        let total: usize = stats.counts.iter().flatten().sum();
        assert_eq!(total, rg.num_arcs());
        // Counts symmetric for undirected graphs.
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(stats.counts[i][j], stats.counts[j][i]);
            }
        }
    }

    #[test]
    fn modularity_prefers_planted_partition() {
        let (g, comm) = clustered_power_law(
            ClusteredConfig { n: 500, communities: 5, avg_degree: 10.0, intra_fraction: 0.9 },
            2,
        );
        let planted = modularity(&g, &comm);
        let garbage: Vec<u32> = (0..500).map(|v| (v % 5) as u32).collect();
        let random = modularity(&g, &garbage);
        assert!(planted > random + 0.2, "planted {planted} vs random {random}");
    }

    #[test]
    fn irregularity_bounds() {
        assert_eq!(irregularity(&[], 10), 0.0);
        assert!(irregularity(&[1, 1, 1], 10) < 0.2);
        assert!(irregularity(&[9, 9], 10) > 0.8);
        assert!(irregularity(&[100], 10) <= 1.0);
    }
}
