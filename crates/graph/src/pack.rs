//! Graph packing: batch several small graphs into one training sequence.
//!
//! For graph-level tasks the paper concatenates all nodes of each input
//! graph into a sequence (§II-B); batching packs *multiple* graphs into one
//! sequence with a block-diagonal adjacency, so the attention pattern keeps
//! the graphs independent while the FFN/projection kernels see one big
//! batch. `segments` records each graph's token range for per-graph
//! readout.

use crate::csr::CsrGraph;

/// A batch of graphs packed into one sequence.
#[derive(Clone, Debug)]
pub struct PackedGraphs {
    /// Block-diagonal union of the member graphs.
    pub graph: CsrGraph,
    /// `segments[i] = (start, end)` token range of graph `i`.
    pub segments: Vec<(usize, usize)>,
}

/// Pack graphs into one block-diagonal graph.
pub fn pack_graphs(graphs: &[&CsrGraph]) -> PackedGraphs {
    let total: usize = graphs.iter().map(|g| g.num_nodes()).sum();
    let total_arcs: usize = graphs.iter().map(|g| g.num_arcs()).sum();
    let mut row_ptr = Vec::with_capacity(total + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(total_arcs);
    let mut segments = Vec::with_capacity(graphs.len());
    let mut offset = 0u32;
    for g in graphs {
        let n = g.num_nodes();
        segments.push((offset as usize, offset as usize + n));
        for v in 0..n {
            col_idx.extend(g.neighbors(v).iter().map(|&u| u + offset));
            row_ptr.push(col_idx.len());
        }
        offset += n as u32;
    }
    PackedGraphs { graph: CsrGraph::from_raw(row_ptr, col_idx), segments }
}

/// Pack row-major feature buffers alongside [`pack_graphs`] (all graphs must
/// share `feat_dim`).
pub fn pack_features(features: &[&[f32]], feat_dim: usize) -> Vec<f32> {
    let total: usize = features.iter().map(|f| f.len()).sum();
    let mut out = Vec::with_capacity(total);
    for f in features {
        assert_eq!(f.len() % feat_dim, 0, "feature buffer not a multiple of feat_dim");
        out.extend_from_slice(f);
    }
    out
}

/// Mean over each segment of per-token values `[tokens, cols]` row-major;
/// returns `[segments, cols]` row-major. The backward is a broadcast of
/// `1/len` — see [`segment_mean_backward`].
pub fn segment_mean(values: &[f32], cols: usize, segments: &[(usize, usize)]) -> Vec<f32> {
    let mut out = vec![0.0f32; segments.len() * cols];
    for (s, &(start, end)) in segments.iter().enumerate() {
        let len = (end - start).max(1) as f32;
        for row in start..end {
            for c in 0..cols {
                out[s * cols + c] += values[row * cols + c] / len;
            }
        }
    }
    out
}

/// Backward of [`segment_mean`]: scatter `dout[s] / len(s)` to every token
/// of segment `s`.
pub fn segment_mean_backward(
    dout: &[f32],
    cols: usize,
    segments: &[(usize, usize)],
    tokens: usize,
) -> Vec<f32> {
    let mut dvalues = vec![0.0f32; tokens * cols];
    for (s, &(start, end)) in segments.iter().enumerate() {
        let inv = 1.0 / (end - start).max(1) as f32;
        for row in start..end {
            for c in 0..cols {
                dvalues[row * cols + c] = dout[s * cols + c] * inv;
            }
        }
    }
    dvalues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn packing_preserves_per_graph_edges_and_isolation() {
        let a = path_graph(4);
        let b = cycle_graph(5);
        let c = star_graph(3);
        let packed = pack_graphs(&[&a, &b, &c]);
        assert_eq!(packed.graph.num_nodes(), 12);
        assert_eq!(packed.segments, vec![(0, 4), (4, 9), (9, 12)]);
        // Intra-graph edges survive at their offsets.
        assert!(packed.graph.has_edge(0, 1)); // path
        assert!(packed.graph.has_edge(4, 5)); // cycle start
        assert!(packed.graph.has_edge(8, 4)); // cycle closure (4..9)
        assert!(packed.graph.has_edge(9, 10)); // star hub
        // No cross-graph edges.
        assert!(!packed.graph.has_edge(3, 4));
        assert!(!packed.graph.has_edge(8, 9));
        assert_eq!(
            packed.graph.num_arcs(),
            a.num_arcs() + b.num_arcs() + c.num_arcs()
        );
    }

    #[test]
    fn packed_components_equal_member_count() {
        let a = path_graph(4);
        let b = cycle_graph(5);
        let packed = pack_graphs(&[&a, &b]);
        let (_, comps) = packed.graph.connected_components();
        assert_eq!(comps, 2);
    }

    #[test]
    fn feature_packing_concatenates() {
        let f1 = [1.0f32, 2.0, 3.0, 4.0]; // 2 tokens × 2
        let f2 = [5.0f32, 6.0]; // 1 token × 2
        let packed = pack_features(&[&f1, &f2], 2);
        assert_eq!(packed, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn segment_mean_and_backward_roundtrip() {
        let values = [1.0f32, 2.0, 3.0, 4.0, 10.0, 20.0]; // 3 tokens × 2
        let segments = [(0usize, 2usize), (2, 3)];
        let means = segment_mean(&values, 2, &segments);
        assert_eq!(means, vec![2.0, 3.0, 10.0, 20.0]);
        let dout = [1.0f32, 1.0, 2.0, 2.0];
        let dv = segment_mean_backward(&dout, 2, &segments, 3);
        assert_eq!(dv, vec![0.5, 0.5, 0.5, 0.5, 2.0, 2.0]);
    }

    #[test]
    fn empty_segment_is_safe() {
        let values: [f32; 0] = [];
        let segments = [(0usize, 0usize)];
        let means = segment_mean(&values, 2, &segments);
        assert_eq!(means, vec![0.0, 0.0]);
    }
}
