//! Dataset registry mirroring Table III of the paper, backed by synthetic
//! generators.
//!
//! Each [`DatasetKind`] records the *published* statistics of the original
//! dataset and can [`DatasetKind::generate_node`] /
//! [`DatasetKind::generate_graphs`] a synthetic stand-in at a configurable
//! scale. Labels are planted so they are genuinely learnable:
//!
//! * node-level — a node's class is its community with label noise, and
//!   features are a class centroid plus Gaussian noise;
//! * graph-level — the class determines generator parameters (density/hub
//!   structure), so structure ↔ label; regression targets are smooth
//!   functions of graph statistics.

use crate::csr::CsrGraph;
use crate::generators::{
    callgraph_like, clustered_power_law_stream, molecule_like, ClusteredConfig,
};
use torchgt_compat::rng::rngs::SmallRng;
use torchgt_compat::rng::{Rng, SeedableRng};

torchgt_compat::json_enum! {
    /// Graph learning task types in the paper's evaluation.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TaskKind {
        /// Classify each node into one of `classes`.
        NodeClassification,
        /// Classify each graph into one of `classes`.
        GraphClassification,
        /// Regress one scalar per graph (ZINC-style, reported as MAE).
        GraphRegression,
    }
}

torchgt_compat::json_enum! {
    /// The datasets used across the paper's tables and figures.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub enum DatasetKind {
        /// Amazon product co-purchase graph (He & McAuley), 107-class.
        Amazon,
        /// ogbn-arxiv citation graph, 40-class.
        OgbnArxiv,
        /// ogbn-products co-purchase graph, 47-class.
        OgbnProducts,
        /// ogbn-papers100M citation graph, binary task in the paper.
        OgbnPapers100M,
        /// Flickr image-relation graph (Table I), 7-class.
        Flickr,
        /// AMiner-CS citation graph (Figure 1).
        AminerCS,
        /// Pokec social network (Figure 1).
        Pokec,
        /// ZINC molecule regression set.
        Zinc,
        /// ogbg-molpcba molecule multi-task set (treated as classification here).
        OgbgMolpcba,
        /// MalNet function-call-graph classification set, 5-class.
        MalNet,
    }
}

torchgt_compat::json_struct! {
    /// What [`DatasetKind::generate_node`] *actually* produces at a given
    /// scale, after the small-scale clamps: `n` is floored at 256 nodes, the
    /// class count at ≥16 nodes per class, and the feature dimension at 64.
    /// Shard manifests and the `datasets` CLI report these instead of the
    /// published [`DatasetSpec`] numbers so on-disk datasets describe
    /// themselves accurately.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct EffectiveSpec {
        /// Nodes generated (`max(spec.nodes * scale, 256)`).
        pub nodes: usize,
        /// Feature dimension generated (`min(spec.feats, 64)`).
        pub feat_dim: usize,
        /// Classes (= planted communities) generated.
        pub classes: usize,
        /// Target average degree carried over from the published statistics.
        pub avg_degree: f64,
    }
}

/// Receives a node-level dataset as a stream: first every edge (generator
/// order), then every node record in id order. Implemented by the collector
/// inside [`DatasetKind::generate_node`] and by the shard writers in
/// `torchgt-data`.
pub trait NodeSink {
    /// One undirected edge `u—v` (`u != v`), pre-deduplication: the final
    /// graph is [`CsrGraph::from_edges`] over the whole edge stream.
    fn edge(&mut self, u: u32, v: u32);

    /// Node `v`'s label, planted community, and feature row. Called once per
    /// node in ascending id order, after the last `edge` call; `features`
    /// is only valid for the duration of the call.
    fn node(&mut self, v: u32, label: u32, community: u32, features: &[f32]);
}

torchgt_compat::json_struct_ser! {
    /// Published statistics of a dataset (Table III of the paper).
    #[derive(Clone, Copy, Debug)]
    pub struct DatasetSpec {
        /// Dataset display name.
        pub name: &'static str,
        /// Task type.
        pub task: TaskKind,
        /// Nodes in the original (node-level) or average nodes per graph
        /// (graph-level).
        pub nodes: u64,
        /// Edges in the original, or average per graph.
        pub edges: u64,
        /// Feature dimension.
        pub feats: usize,
        /// Number of classes (1 for regression).
        pub classes: usize,
        /// Number of graphs (1 for node-level sets).
        pub num_graphs: u64,
    }
}

impl DatasetKind {
    /// Published statistics (Table III plus the figure-only datasets).
    pub fn spec(self) -> DatasetSpec {
        use DatasetKind::*;
        use TaskKind::*;
        match self {
            Amazon => DatasetSpec {
                name: "Amazon",
                task: NodeClassification,
                nodes: 1_598_960,
                edges: 132_169_734,
                feats: 200,
                classes: 107,
                num_graphs: 1,
            },
            OgbnArxiv => DatasetSpec {
                name: "ogbn-arxiv",
                task: NodeClassification,
                nodes: 169_343,
                edges: 1_166_243,
                feats: 128,
                classes: 40,
                num_graphs: 1,
            },
            OgbnProducts => DatasetSpec {
                name: "ogbn-products",
                task: NodeClassification,
                nodes: 2_449_029,
                edges: 61_859_140,
                feats: 100,
                classes: 47,
                num_graphs: 1,
            },
            OgbnPapers100M => DatasetSpec {
                name: "ogbn-papers100M",
                task: NodeClassification,
                nodes: 111_059_956,
                edges: 1_615_685_872,
                feats: 128,
                classes: 2,
                num_graphs: 1,
            },
            Flickr => DatasetSpec {
                name: "Flickr",
                task: NodeClassification,
                nodes: 89_250,
                edges: 899_756,
                feats: 500,
                classes: 7,
                num_graphs: 1,
            },
            AminerCS => DatasetSpec {
                name: "AMiner-CS",
                task: NodeClassification,
                nodes: 593_486,
                edges: 6_217_004,
                feats: 100,
                classes: 18,
                num_graphs: 1,
            },
            Pokec => DatasetSpec {
                name: "Pokec",
                task: NodeClassification,
                nodes: 1_632_803,
                edges: 30_622_564,
                feats: 65,
                classes: 2,
                num_graphs: 1,
            },
            Zinc => DatasetSpec {
                name: "ZINC",
                task: GraphRegression,
                nodes: 23,
                edges: 25,
                feats: 28,
                classes: 1,
                num_graphs: 12_000,
            },
            OgbgMolpcba => DatasetSpec {
                name: "ogbg-molpcba",
                task: GraphClassification,
                nodes: 26,
                edges: 28,
                feats: 9,
                classes: 128,
                num_graphs: 437_929,
            },
            MalNet => DatasetSpec {
                name: "MalNet",
                task: GraphClassification,
                nodes: 15_378,
                edges: 35_167,
                feats: 16,
                classes: 5,
                num_graphs: 10_833,
            },
        }
    }

    /// All node-level dataset kinds.
    pub fn node_level() -> &'static [DatasetKind] {
        use DatasetKind::*;
        &[Amazon, OgbnArxiv, OgbnProducts, OgbnPapers100M, Flickr, AminerCS, Pokec]
    }

    /// All graph-level dataset kinds.
    pub fn graph_level() -> &'static [DatasetKind] {
        use DatasetKind::*;
        &[Zinc, OgbgMolpcba, MalNet]
    }

    /// The post-clamp parameters [`DatasetKind::generate_node`] will use at
    /// `scale` — the values a shard manifest must record. Pure: no RNG, no
    /// generation. Panics on graph-level kinds.
    pub fn effective(self, scale: f64) -> EffectiveSpec {
        let spec = self.spec();
        assert_eq!(
            spec.task,
            TaskKind::NodeClassification,
            "{} is not a node-level dataset",
            spec.name
        );
        let n = ((spec.nodes as f64 * scale) as usize).max(256);
        let avg_degree = (2.0 * spec.edges as f64 / spec.nodes as f64).max(2.0);
        // Keep class count manageable at reduced scale: at least 16 nodes per
        // class on average. Cap the feature dimension to keep functional runs
        // cheap; statistics experiments use the spec value directly.
        EffectiveSpec {
            nodes: n,
            feat_dim: spec.feats.min(64),
            classes: spec.classes.min((n / 16).max(2)),
            avg_degree,
        }
    }

    /// XOR-mask deriving the split RNG seed from the dataset seed (the
    /// feature RNG uses `^ 0xD07A`). Public so out-of-core loaders can
    /// recompute [`Split::standard`] from a manifest instead of storing it.
    pub const SPLIT_SEED_XOR: u64 = 0x5917;

    /// Generate a synthetic node-level stand-in scaled by `scale` (1.0 would
    /// be the original size; benches use ~1e-2…1e-3). Panics on graph-level
    /// kinds.
    pub fn generate_node(self, scale: f64, seed: u64) -> NodeDataset {
        struct Collect {
            edges: Vec<(u32, u32)>,
            features: Vec<f32>,
            labels: Vec<u32>,
            community: Vec<u32>,
        }
        impl NodeSink for Collect {
            fn edge(&mut self, u: u32, v: u32) {
                self.edges.push((u, v));
            }
            fn node(&mut self, _v: u32, label: u32, community: u32, features: &[f32]) {
                self.labels.push(label);
                self.community.push(community);
                self.features.extend_from_slice(features);
            }
        }
        let eff = self.effective(scale);
        let mut sink = Collect {
            edges: Vec::new(),
            features: Vec::with_capacity(eff.nodes * eff.feat_dim),
            labels: Vec::with_capacity(eff.nodes),
            community: Vec::with_capacity(eff.nodes),
        };
        let eff = self.stream_node(scale, seed, &mut sink);
        let graph = CsrGraph::from_edges(eff.nodes, &sink.edges);
        let split = Split::standard(eff.nodes, seed ^ Self::SPLIT_SEED_XOR);
        NodeDataset {
            kind: self,
            graph,
            features: sink.features,
            feat_dim: eff.feat_dim,
            labels: sink.labels,
            num_classes: eff.classes,
            community: sink.community,
            split,
        }
    }

    /// Streaming core behind [`DatasetKind::generate_node`]: pushes every
    /// edge and then every node record into `sink` without materialising the
    /// graph or feature matrix, so a papers100M-scale stand-in can be written
    /// to disk shard-by-shard under an `O(n)` memory bound. Emits edges first
    /// (generator order, duplicates included — the final graph is
    /// [`CsrGraph::from_edges`] over the whole stream), then node records in
    /// id order. Returns the effective (post-clamp) generation parameters.
    ///
    /// Bit-compatible with `generate_node`: collecting this stream and
    /// reassembling reproduces the in-memory dataset exactly.
    pub fn stream_node(
        self,
        scale: f64,
        seed: u64,
        sink: &mut dyn NodeSink,
    ) -> EffectiveSpec {
        let eff = self.effective(scale);
        let EffectiveSpec { nodes: n, feat_dim, classes, avg_degree } = eff;
        let community = clustered_power_law_stream(
            ClusteredConfig { n, communities: classes, avg_degree, intra_fraction: 0.88 },
            seed,
            &mut |u, v| sink.edge(u, v),
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD07A);
        let centroids: Vec<f32> =
            (0..classes * feat_dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let noise_level = 0.7f32;
        let mut row = vec![0.0f32; feat_dim];
        for v in 0..n {
            // 10% label noise keeps the task non-trivial.
            let class =
                if rng.gen::<f32>() < 0.1 { rng.gen_range(0..classes as u32) } else { community[v] };
            let c = community[v] as usize; // features follow the *structure*
            for (f, slot) in row.iter_mut().enumerate() {
                *slot = centroids[c * feat_dim + f] + noise_level * gaussian(&mut rng);
            }
            sink.node(v as u32, class, community[v], &row);
        }
        eff
    }

    /// Generate a synthetic graph-level stand-in with `num_graphs` samples
    /// whose sizes are scaled by `scale`. Panics on node-level kinds.
    pub fn generate_graphs(self, num_graphs: usize, scale: f64, seed: u64) -> GraphDataset {
        let spec = self.spec();
        assert_ne!(
            spec.task,
            TaskKind::NodeClassification,
            "{} is not a graph-level dataset",
            spec.name
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let feat_dim = spec.feats.min(32);
        let mut samples = Vec::with_capacity(num_graphs);
        for i in 0..num_graphs {
            let gseed = seed.wrapping_add(1 + i as u64 * 7919);
            let sample = match self {
                DatasetKind::MalNet => {
                    // Class determines hub structure / density of the call
                    // graph: 5 malware families.
                    let class = (i % spec.classes) as u32;
                    let n = (((spec.nodes as f64 * scale) as usize).max(32) as f64
                        * rng.gen_range(0.6..1.4)) as usize;
                    let graph = callgraph_like(n.max(16), gseed ^ (class as u64) << 17);
                    // Family-specific extra edges: denser families get more.
                    let graph = densify(&graph, class as usize * n / 20, gseed);
                    make_sample(graph, feat_dim, GraphLabel::Class(class), gseed)
                }
                DatasetKind::Zinc => {
                    let n = rng.gen_range(12..36usize);
                    let rings = rng.gen_range(0..5usize);
                    let graph = molecule_like(n, rings, gseed);
                    // Regression target: a smooth function of structure
                    // (mimics constrained solubility).
                    let y = 0.3 * n as f32 / 36.0 + 0.5 * rings as f32 / 5.0
                        + 0.2 * graph.avg_degree() as f32 / 3.0;
                    make_sample(graph, feat_dim, GraphLabel::Value(y), gseed)
                }
                DatasetKind::OgbgMolpcba => {
                    // Cap classes at 6 so every class has a distinct ring
                    // count (the structural signal) at reduced scale.
                    let classes = spec.classes.min(6);
                    let class = (i % classes) as u32;
                    let n = rng.gen_range(14..40usize);
                    // Class controls ring count → structural signal.
                    let graph = molecule_like(n, class as usize, gseed);
                    make_sample(graph, feat_dim, GraphLabel::Class(class), gseed)
                }
                _ => unreachable!(),
            };
            samples.push(sample);
        }
        GraphDataset { kind: self, feat_dim, samples }
    }
}

fn gaussian(rng: &mut SmallRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

fn densify(g: &CsrGraph, extra: usize, seed: u64) -> CsrGraph {
    if extra == 0 {
        return g.clone();
    }
    let n = g.num_nodes();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(g.num_arcs() / 2 + extra);
    for v in 0..n {
        for &nb in g.neighbors(v) {
            if nb as usize >= v {
                edges.push((v as u32, nb));
            }
        }
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

fn make_sample(graph: CsrGraph, feat_dim: usize, label: GraphLabel, seed: u64) -> GraphSample {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFEA7);
    let n = graph.num_nodes();
    // Features encode normalised degree plus noise — structure-correlated,
    // like atom types correlate with valence.
    let max_deg = graph.max_degree().max(1) as f32;
    let mut features = vec![0.0f32; n * feat_dim];
    for v in 0..n {
        features[v * feat_dim] = graph.degree(v) as f32 / max_deg;
        for f in 1..feat_dim {
            features[v * feat_dim + f] = 0.3 * gaussian(&mut rng);
        }
    }
    GraphSample { graph, features, feat_dim, label }
}

torchgt_compat::json_struct! {
    /// Train/validation/test split masks.
    #[derive(Clone, Debug)]
    pub struct Split {
        /// Indices of training nodes (or graphs).
        pub train: Vec<u32>,
        /// Indices of validation nodes.
        pub val: Vec<u32>,
        /// Indices of test nodes.
        pub test: Vec<u32>,
    }
}

impl Split {
    /// Standard 60/20/20 random split.
    pub fn standard(n: usize, seed: u64) -> Self {
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let train_end = n * 6 / 10;
        let val_end = n * 8 / 10;
        Self {
            train: order[..train_end].to_vec(),
            val: order[train_end..val_end].to_vec(),
            test: order[val_end..].to_vec(),
        }
    }
}

/// A node-level dataset: one big graph with per-node features and labels.
#[derive(Clone, Debug)]
pub struct NodeDataset {
    /// Which dataset this stands in for.
    pub kind: DatasetKind,
    /// The graph.
    pub graph: CsrGraph,
    /// Row-major `[n, feat_dim]` features.
    pub features: Vec<f32>,
    /// Feature dimension.
    pub feat_dim: usize,
    /// Node labels.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Planted community of each node (ground truth for partition tests).
    pub community: Vec<u32>,
    /// Train/val/test split.
    pub split: Split,
}

impl NodeDataset {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Feature row of node `v`.
    pub fn feature_row(&self, v: usize) -> &[f32] {
        &self.features[v * self.feat_dim..(v + 1) * self.feat_dim]
    }
}

/// Label of one graph sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphLabel {
    /// Classification target.
    Class(u32),
    /// Regression target.
    Value(f32),
}

// Payload-carrying enum: encoded externally-tagged (`{"Class": 3}`), the
// same shape serde's default representation produced.
impl torchgt_compat::json::ToJson for GraphLabel {
    fn to_json(&self) -> torchgt_compat::json::Value {
        use torchgt_compat::json::Value;
        match self {
            GraphLabel::Class(c) => Value::Object(vec![("Class".to_string(), c.to_json())]),
            GraphLabel::Value(v) => Value::Object(vec![("Value".to_string(), v.to_json())]),
        }
    }
}

impl torchgt_compat::json::FromJson for GraphLabel {
    fn from_json(
        v: &torchgt_compat::json::Value,
    ) -> Result<Self, torchgt_compat::json::JsonError> {
        use torchgt_compat::json::JsonError;
        if let Some(c) = v.get("Class") {
            return Ok(GraphLabel::Class(u32::from_json(c)?));
        }
        if let Some(x) = v.get("Value") {
            return Ok(GraphLabel::Value(f32::from_json(x)?));
        }
        Err(JsonError("expected {\"Class\": _} or {\"Value\": _}".into()))
    }
}

/// One graph-level sample.
#[derive(Clone, Debug)]
pub struct GraphSample {
    /// The sample's graph.
    pub graph: CsrGraph,
    /// Row-major `[n, feat_dim]` node features.
    pub features: Vec<f32>,
    /// Feature dimension.
    pub feat_dim: usize,
    /// Target.
    pub label: GraphLabel,
}

/// A graph-level dataset: a collection of labelled graphs.
#[derive(Clone, Debug)]
pub struct GraphDataset {
    /// Which dataset this stands in for.
    pub kind: DatasetKind,
    /// Feature dimension shared by all samples.
    pub feat_dim: usize,
    /// The samples.
    pub samples: Vec<GraphSample>,
}

impl GraphDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_iii() {
        let arxiv = DatasetKind::OgbnArxiv.spec();
        assert_eq!(arxiv.nodes, 169_343);
        assert_eq!(arxiv.edges, 1_166_243);
        assert_eq!(arxiv.classes, 40);
        let papers = DatasetKind::OgbnPapers100M.spec();
        assert_eq!(papers.nodes, 111_059_956);
        let malnet = DatasetKind::MalNet.spec();
        assert_eq!(malnet.classes, 5);
        assert_eq!(malnet.num_graphs, 10_833);
        // Paper quotes arxiv sparsity ≈ 4.1e-5 (directed edges / N²); our
        // symmetric storage doubles the count, same order of magnitude.
        let s = 2.0 * arxiv.edges as f64 / (arxiv.nodes as f64 * arxiv.nodes as f64);
        assert!(s > 1e-5 && s < 2e-4);
    }

    #[test]
    fn node_generation_respects_scale_and_degree() {
        let d = DatasetKind::OgbnArxiv.generate_node(0.01, 1);
        let n = d.num_nodes();
        assert!((1400..2100).contains(&n), "n = {n}");
        // Average degree ≈ 2E/N of the original ≈ 13.8.
        assert!((d.graph.avg_degree() - 13.8).abs() < 4.0, "deg {}", d.graph.avg_degree());
        assert_eq!(d.labels.len(), n);
        assert_eq!(d.features.len(), n * d.feat_dim);
        assert!(d.num_classes >= 2);
        assert!(d.labels.iter().all(|&l| (l as usize) < d.num_classes));
    }

    #[test]
    fn node_generation_is_deterministic() {
        let a = DatasetKind::Flickr.generate_node(0.02, 9);
        let b = DatasetKind::Flickr.generate_node(0.02, 9);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features, b.features);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn labels_correlate_with_communities() {
        let d = DatasetKind::OgbnProducts.generate_node(0.001, 3);
        let agree = d
            .labels
            .iter()
            .zip(&d.community)
            .filter(|(&l, &c)| l == c)
            .count();
        // 10% label noise ⇒ ~90% agreement.
        assert!(agree as f64 / d.labels.len() as f64 > 0.8);
    }

    #[test]
    fn split_partitions_all_nodes() {
        let s = Split::standard(100, 7);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 100);
        let mut all: Vec<u32> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn zinc_generation_regression_targets() {
        let d = DatasetKind::Zinc.generate_graphs(50, 1.0, 5);
        assert_eq!(d.len(), 50);
        for s in &d.samples {
            assert!(s.graph.is_connected());
            match s.label {
                GraphLabel::Value(v) => assert!((0.0..2.0).contains(&v)),
                _ => panic!("ZINC must be regression"),
            }
        }
    }

    #[test]
    fn malnet_generation_classes_balanced() {
        let d = DatasetKind::MalNet.generate_graphs(25, 0.005, 2);
        let mut counts = [0usize; 5];
        for s in &d.samples {
            match s.label {
                GraphLabel::Class(c) => counts[c as usize] += 1,
                _ => panic!("MalNet must be classification"),
            }
        }
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    #[should_panic(expected = "not a node-level dataset")]
    fn graph_level_rejects_node_generation() {
        let _ = DatasetKind::Zinc.generate_node(0.1, 0);
    }

    #[test]
    fn effective_spec_reports_the_clamps() {
        // Tiny scale: n floors at 256, classes cap at n/16, feats cap at 64.
        let eff = DatasetKind::OgbnArxiv.effective(1e-9);
        assert_eq!(eff.nodes, 256);
        assert_eq!(eff.classes, 16); // min(40, 256/16)
        assert_eq!(eff.feat_dim, 64); // min(128, 64)
        // The generated dataset must agree with the advertised clamps.
        let d = DatasetKind::OgbnArxiv.generate_node(1e-9, 3);
        assert_eq!(d.num_nodes(), eff.nodes);
        assert_eq!(d.num_classes, eff.classes);
        assert_eq!(d.feat_dim, eff.feat_dim);
        // Above the clamp region the published classes survive.
        let big = DatasetKind::OgbnArxiv.effective(0.01);
        assert_eq!(big.classes, 40);
    }

    #[test]
    fn streamed_records_reassemble_into_generate_node() {
        struct Capture {
            edges: Vec<(u32, u32)>,
            nodes: Vec<(u32, u32, u32)>,
            features: Vec<f32>,
            edges_done: bool,
        }
        impl NodeSink for Capture {
            fn edge(&mut self, u: u32, v: u32) {
                assert!(!self.edges_done, "edges must all precede node records");
                self.edges.push((u, v));
            }
            fn node(&mut self, v: u32, label: u32, community: u32, features: &[f32]) {
                self.edges_done = true;
                self.nodes.push((v, label, community));
                self.features.extend_from_slice(features);
            }
        }
        let (kind, scale, seed) = (DatasetKind::Flickr, 0.02, 9);
        let mut cap =
            Capture { edges: Vec::new(), nodes: Vec::new(), features: Vec::new(), edges_done: false };
        let eff = kind.stream_node(scale, seed, &mut cap);
        let d = kind.generate_node(scale, seed);
        assert_eq!(eff.nodes, d.num_nodes());
        assert_eq!(CsrGraph::from_edges(eff.nodes, &cap.edges), d.graph);
        assert_eq!(cap.features, d.features);
        for (i, &(v, label, community)) in cap.nodes.iter().enumerate() {
            assert_eq!(v as usize, i, "node records arrive in id order");
            assert_eq!(label, d.labels[i]);
            assert_eq!(community, d.community[i]);
        }
    }
}
