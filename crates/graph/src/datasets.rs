//! Dataset registry mirroring Table III of the paper, backed by synthetic
//! generators.
//!
//! Each [`DatasetKind`] records the *published* statistics of the original
//! dataset and can [`DatasetKind::generate_node`] /
//! [`DatasetKind::generate_graphs`] a synthetic stand-in at a configurable
//! scale. Labels are planted so they are genuinely learnable:
//!
//! * node-level — a node's class is its community with label noise, and
//!   features are a class centroid plus Gaussian noise;
//! * graph-level — the class determines generator parameters (density/hub
//!   structure), so structure ↔ label; regression targets are smooth
//!   functions of graph statistics.

use crate::csr::CsrGraph;
use crate::generators::{
    callgraph_like, clustered_power_law, molecule_like, ClusteredConfig,
};
use torchgt_compat::rng::rngs::SmallRng;
use torchgt_compat::rng::{Rng, SeedableRng};

torchgt_compat::json_enum! {
    /// Graph learning task types in the paper's evaluation.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TaskKind {
        /// Classify each node into one of `classes`.
        NodeClassification,
        /// Classify each graph into one of `classes`.
        GraphClassification,
        /// Regress one scalar per graph (ZINC-style, reported as MAE).
        GraphRegression,
    }
}

torchgt_compat::json_enum! {
    /// The datasets used across the paper's tables and figures.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub enum DatasetKind {
        /// Amazon product co-purchase graph (He & McAuley), 107-class.
        Amazon,
        /// ogbn-arxiv citation graph, 40-class.
        OgbnArxiv,
        /// ogbn-products co-purchase graph, 47-class.
        OgbnProducts,
        /// ogbn-papers100M citation graph, binary task in the paper.
        OgbnPapers100M,
        /// Flickr image-relation graph (Table I), 7-class.
        Flickr,
        /// AMiner-CS citation graph (Figure 1).
        AminerCS,
        /// Pokec social network (Figure 1).
        Pokec,
        /// ZINC molecule regression set.
        Zinc,
        /// ogbg-molpcba molecule multi-task set (treated as classification here).
        OgbgMolpcba,
        /// MalNet function-call-graph classification set, 5-class.
        MalNet,
    }
}

torchgt_compat::json_struct_ser! {
    /// Published statistics of a dataset (Table III of the paper).
    #[derive(Clone, Copy, Debug)]
    pub struct DatasetSpec {
        /// Dataset display name.
        pub name: &'static str,
        /// Task type.
        pub task: TaskKind,
        /// Nodes in the original (node-level) or average nodes per graph
        /// (graph-level).
        pub nodes: u64,
        /// Edges in the original, or average per graph.
        pub edges: u64,
        /// Feature dimension.
        pub feats: usize,
        /// Number of classes (1 for regression).
        pub classes: usize,
        /// Number of graphs (1 for node-level sets).
        pub num_graphs: u64,
    }
}

impl DatasetKind {
    /// Published statistics (Table III plus the figure-only datasets).
    pub fn spec(self) -> DatasetSpec {
        use DatasetKind::*;
        use TaskKind::*;
        match self {
            Amazon => DatasetSpec {
                name: "Amazon",
                task: NodeClassification,
                nodes: 1_598_960,
                edges: 132_169_734,
                feats: 200,
                classes: 107,
                num_graphs: 1,
            },
            OgbnArxiv => DatasetSpec {
                name: "ogbn-arxiv",
                task: NodeClassification,
                nodes: 169_343,
                edges: 1_166_243,
                feats: 128,
                classes: 40,
                num_graphs: 1,
            },
            OgbnProducts => DatasetSpec {
                name: "ogbn-products",
                task: NodeClassification,
                nodes: 2_449_029,
                edges: 61_859_140,
                feats: 100,
                classes: 47,
                num_graphs: 1,
            },
            OgbnPapers100M => DatasetSpec {
                name: "ogbn-papers100M",
                task: NodeClassification,
                nodes: 111_059_956,
                edges: 1_615_685_872,
                feats: 128,
                classes: 2,
                num_graphs: 1,
            },
            Flickr => DatasetSpec {
                name: "Flickr",
                task: NodeClassification,
                nodes: 89_250,
                edges: 899_756,
                feats: 500,
                classes: 7,
                num_graphs: 1,
            },
            AminerCS => DatasetSpec {
                name: "AMiner-CS",
                task: NodeClassification,
                nodes: 593_486,
                edges: 6_217_004,
                feats: 100,
                classes: 18,
                num_graphs: 1,
            },
            Pokec => DatasetSpec {
                name: "Pokec",
                task: NodeClassification,
                nodes: 1_632_803,
                edges: 30_622_564,
                feats: 65,
                classes: 2,
                num_graphs: 1,
            },
            Zinc => DatasetSpec {
                name: "ZINC",
                task: GraphRegression,
                nodes: 23,
                edges: 25,
                feats: 28,
                classes: 1,
                num_graphs: 12_000,
            },
            OgbgMolpcba => DatasetSpec {
                name: "ogbg-molpcba",
                task: GraphClassification,
                nodes: 26,
                edges: 28,
                feats: 9,
                classes: 128,
                num_graphs: 437_929,
            },
            MalNet => DatasetSpec {
                name: "MalNet",
                task: GraphClassification,
                nodes: 15_378,
                edges: 35_167,
                feats: 16,
                classes: 5,
                num_graphs: 10_833,
            },
        }
    }

    /// All node-level dataset kinds.
    pub fn node_level() -> &'static [DatasetKind] {
        use DatasetKind::*;
        &[Amazon, OgbnArxiv, OgbnProducts, OgbnPapers100M, Flickr, AminerCS, Pokec]
    }

    /// All graph-level dataset kinds.
    pub fn graph_level() -> &'static [DatasetKind] {
        use DatasetKind::*;
        &[Zinc, OgbgMolpcba, MalNet]
    }

    /// Generate a synthetic node-level stand-in scaled by `scale` (1.0 would
    /// be the original size; benches use ~1e-2…1e-3). Panics on graph-level
    /// kinds.
    pub fn generate_node(self, scale: f64, seed: u64) -> NodeDataset {
        let spec = self.spec();
        assert_eq!(
            spec.task,
            TaskKind::NodeClassification,
            "{} is not a node-level dataset",
            spec.name
        );
        let n = ((spec.nodes as f64 * scale) as usize).max(256);
        let avg_degree = (2.0 * spec.edges as f64 / spec.nodes as f64).max(2.0);
        // Keep class count manageable at reduced scale: at least 16 nodes per
        // class on average.
        let classes = spec.classes.min((n / 16).max(2));
        let communities = classes;
        let (graph, community) = clustered_power_law(
            ClusteredConfig { n, communities, avg_degree, intra_fraction: 0.88 },
            seed,
        );
        // Cap the feature dimension at reduced scale to keep functional runs
        // cheap; statistics experiments use the spec value directly.
        let feat_dim = spec.feats.min(64);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD07A);
        let centroids: Vec<f32> =
            (0..classes * feat_dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let mut features = vec![0.0f32; n * feat_dim];
        let mut labels = vec![0u32; n];
        let noise_level = 0.7f32;
        for v in 0..n {
            // 10% label noise keeps the task non-trivial.
            let class =
                if rng.gen::<f32>() < 0.1 { rng.gen_range(0..classes as u32) } else { community[v] };
            labels[v] = class;
            let c = community[v] as usize; // features follow the *structure*
            for f in 0..feat_dim {
                features[v * feat_dim + f] =
                    centroids[c * feat_dim + f] + noise_level * gaussian(&mut rng);
            }
        }
        let split = Split::standard(n, seed ^ 0x5917);
        NodeDataset {
            kind: self,
            graph,
            features,
            feat_dim,
            labels,
            num_classes: classes,
            community,
            split,
        }
    }

    /// Generate a synthetic graph-level stand-in with `num_graphs` samples
    /// whose sizes are scaled by `scale`. Panics on node-level kinds.
    pub fn generate_graphs(self, num_graphs: usize, scale: f64, seed: u64) -> GraphDataset {
        let spec = self.spec();
        assert_ne!(
            spec.task,
            TaskKind::NodeClassification,
            "{} is not a graph-level dataset",
            spec.name
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let feat_dim = spec.feats.min(32);
        let mut samples = Vec::with_capacity(num_graphs);
        for i in 0..num_graphs {
            let gseed = seed.wrapping_add(1 + i as u64 * 7919);
            let sample = match self {
                DatasetKind::MalNet => {
                    // Class determines hub structure / density of the call
                    // graph: 5 malware families.
                    let class = (i % spec.classes) as u32;
                    let n = (((spec.nodes as f64 * scale) as usize).max(32) as f64
                        * rng.gen_range(0.6..1.4)) as usize;
                    let graph = callgraph_like(n.max(16), gseed ^ (class as u64) << 17);
                    // Family-specific extra edges: denser families get more.
                    let graph = densify(&graph, class as usize * n / 20, gseed);
                    make_sample(graph, feat_dim, GraphLabel::Class(class), gseed)
                }
                DatasetKind::Zinc => {
                    let n = rng.gen_range(12..36usize);
                    let rings = rng.gen_range(0..5usize);
                    let graph = molecule_like(n, rings, gseed);
                    // Regression target: a smooth function of structure
                    // (mimics constrained solubility).
                    let y = 0.3 * n as f32 / 36.0 + 0.5 * rings as f32 / 5.0
                        + 0.2 * graph.avg_degree() as f32 / 3.0;
                    make_sample(graph, feat_dim, GraphLabel::Value(y), gseed)
                }
                DatasetKind::OgbgMolpcba => {
                    // Cap classes at 6 so every class has a distinct ring
                    // count (the structural signal) at reduced scale.
                    let classes = spec.classes.min(6);
                    let class = (i % classes) as u32;
                    let n = rng.gen_range(14..40usize);
                    // Class controls ring count → structural signal.
                    let graph = molecule_like(n, class as usize, gseed);
                    make_sample(graph, feat_dim, GraphLabel::Class(class), gseed)
                }
                _ => unreachable!(),
            };
            samples.push(sample);
        }
        GraphDataset { kind: self, feat_dim, samples }
    }
}

fn gaussian(rng: &mut SmallRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

fn densify(g: &CsrGraph, extra: usize, seed: u64) -> CsrGraph {
    if extra == 0 {
        return g.clone();
    }
    let n = g.num_nodes();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(g.num_arcs() / 2 + extra);
    for v in 0..n {
        for &nb in g.neighbors(v) {
            if nb as usize >= v {
                edges.push((v as u32, nb));
            }
        }
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

fn make_sample(graph: CsrGraph, feat_dim: usize, label: GraphLabel, seed: u64) -> GraphSample {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFEA7);
    let n = graph.num_nodes();
    // Features encode normalised degree plus noise — structure-correlated,
    // like atom types correlate with valence.
    let max_deg = graph.max_degree().max(1) as f32;
    let mut features = vec![0.0f32; n * feat_dim];
    for v in 0..n {
        features[v * feat_dim] = graph.degree(v) as f32 / max_deg;
        for f in 1..feat_dim {
            features[v * feat_dim + f] = 0.3 * gaussian(&mut rng);
        }
    }
    GraphSample { graph, features, feat_dim, label }
}

torchgt_compat::json_struct! {
    /// Train/validation/test split masks.
    #[derive(Clone, Debug)]
    pub struct Split {
        /// Indices of training nodes (or graphs).
        pub train: Vec<u32>,
        /// Indices of validation nodes.
        pub val: Vec<u32>,
        /// Indices of test nodes.
        pub test: Vec<u32>,
    }
}

impl Split {
    /// Standard 60/20/20 random split.
    pub fn standard(n: usize, seed: u64) -> Self {
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let train_end = n * 6 / 10;
        let val_end = n * 8 / 10;
        Self {
            train: order[..train_end].to_vec(),
            val: order[train_end..val_end].to_vec(),
            test: order[val_end..].to_vec(),
        }
    }
}

/// A node-level dataset: one big graph with per-node features and labels.
#[derive(Clone, Debug)]
pub struct NodeDataset {
    /// Which dataset this stands in for.
    pub kind: DatasetKind,
    /// The graph.
    pub graph: CsrGraph,
    /// Row-major `[n, feat_dim]` features.
    pub features: Vec<f32>,
    /// Feature dimension.
    pub feat_dim: usize,
    /// Node labels.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Planted community of each node (ground truth for partition tests).
    pub community: Vec<u32>,
    /// Train/val/test split.
    pub split: Split,
}

impl NodeDataset {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Feature row of node `v`.
    pub fn feature_row(&self, v: usize) -> &[f32] {
        &self.features[v * self.feat_dim..(v + 1) * self.feat_dim]
    }
}

/// Label of one graph sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphLabel {
    /// Classification target.
    Class(u32),
    /// Regression target.
    Value(f32),
}

// Payload-carrying enum: encoded externally-tagged (`{"Class": 3}`), the
// same shape serde's default representation produced.
impl torchgt_compat::json::ToJson for GraphLabel {
    fn to_json(&self) -> torchgt_compat::json::Value {
        use torchgt_compat::json::Value;
        match self {
            GraphLabel::Class(c) => Value::Object(vec![("Class".to_string(), c.to_json())]),
            GraphLabel::Value(v) => Value::Object(vec![("Value".to_string(), v.to_json())]),
        }
    }
}

impl torchgt_compat::json::FromJson for GraphLabel {
    fn from_json(
        v: &torchgt_compat::json::Value,
    ) -> Result<Self, torchgt_compat::json::JsonError> {
        use torchgt_compat::json::JsonError;
        if let Some(c) = v.get("Class") {
            return Ok(GraphLabel::Class(u32::from_json(c)?));
        }
        if let Some(x) = v.get("Value") {
            return Ok(GraphLabel::Value(f32::from_json(x)?));
        }
        Err(JsonError("expected {\"Class\": _} or {\"Value\": _}".into()))
    }
}

/// One graph-level sample.
#[derive(Clone, Debug)]
pub struct GraphSample {
    /// The sample's graph.
    pub graph: CsrGraph,
    /// Row-major `[n, feat_dim]` node features.
    pub features: Vec<f32>,
    /// Feature dimension.
    pub feat_dim: usize,
    /// Target.
    pub label: GraphLabel,
}

/// A graph-level dataset: a collection of labelled graphs.
#[derive(Clone, Debug)]
pub struct GraphDataset {
    /// Which dataset this stands in for.
    pub kind: DatasetKind,
    /// Feature dimension shared by all samples.
    pub feat_dim: usize,
    /// The samples.
    pub samples: Vec<GraphSample>,
}

impl GraphDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_iii() {
        let arxiv = DatasetKind::OgbnArxiv.spec();
        assert_eq!(arxiv.nodes, 169_343);
        assert_eq!(arxiv.edges, 1_166_243);
        assert_eq!(arxiv.classes, 40);
        let papers = DatasetKind::OgbnPapers100M.spec();
        assert_eq!(papers.nodes, 111_059_956);
        let malnet = DatasetKind::MalNet.spec();
        assert_eq!(malnet.classes, 5);
        assert_eq!(malnet.num_graphs, 10_833);
        // Paper quotes arxiv sparsity ≈ 4.1e-5 (directed edges / N²); our
        // symmetric storage doubles the count, same order of magnitude.
        let s = 2.0 * arxiv.edges as f64 / (arxiv.nodes as f64 * arxiv.nodes as f64);
        assert!(s > 1e-5 && s < 2e-4);
    }

    #[test]
    fn node_generation_respects_scale_and_degree() {
        let d = DatasetKind::OgbnArxiv.generate_node(0.01, 1);
        let n = d.num_nodes();
        assert!((1400..2100).contains(&n), "n = {n}");
        // Average degree ≈ 2E/N of the original ≈ 13.8.
        assert!((d.graph.avg_degree() - 13.8).abs() < 4.0, "deg {}", d.graph.avg_degree());
        assert_eq!(d.labels.len(), n);
        assert_eq!(d.features.len(), n * d.feat_dim);
        assert!(d.num_classes >= 2);
        assert!(d.labels.iter().all(|&l| (l as usize) < d.num_classes));
    }

    #[test]
    fn node_generation_is_deterministic() {
        let a = DatasetKind::Flickr.generate_node(0.02, 9);
        let b = DatasetKind::Flickr.generate_node(0.02, 9);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features, b.features);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn labels_correlate_with_communities() {
        let d = DatasetKind::OgbnProducts.generate_node(0.001, 3);
        let agree = d
            .labels
            .iter()
            .zip(&d.community)
            .filter(|(&l, &c)| l == c)
            .count();
        // 10% label noise ⇒ ~90% agreement.
        assert!(agree as f64 / d.labels.len() as f64 > 0.8);
    }

    #[test]
    fn split_partitions_all_nodes() {
        let s = Split::standard(100, 7);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 100);
        let mut all: Vec<u32> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn zinc_generation_regression_targets() {
        let d = DatasetKind::Zinc.generate_graphs(50, 1.0, 5);
        assert_eq!(d.len(), 50);
        for s in &d.samples {
            assert!(s.graph.is_connected());
            match s.label {
                GraphLabel::Value(v) => assert!((0.0..2.0).contains(&v)),
                _ => panic!("ZINC must be regression"),
            }
        }
    }

    #[test]
    fn malnet_generation_classes_balanced() {
        let d = DatasetKind::MalNet.generate_graphs(25, 0.005, 2);
        let mut counts = [0usize; 5];
        for s in &d.samples {
            match s.label {
                GraphLabel::Class(c) => counts[c as usize] += 1,
                _ => panic!("MalNet must be classification"),
            }
        }
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    #[should_panic(expected = "not a node-level dataset")]
    fn graph_level_rejects_node_generation() {
        let _ = DatasetKind::Zinc.generate_node(0.1, 0);
    }
}
