//! METIS-style multilevel graph partitioning.
//!
//! TorchGT uses METIS to reorder nodes so that clusters (communities) become
//! contiguous id ranges, improving spatial locality of the attention kernels
//! (§III-C). METIS itself is C code; this module reimplements the same
//! multilevel recursive-bisection scheme:
//!
//! 1. **Coarsening** by heavy-edge matching,
//! 2. **Initial partition** by greedy BFS region growing,
//! 3. **Refinement** during uncoarsening with a boundary Kernighan–Lin /
//!    Fiduccia–Mattheyses pass.

use crate::csr::CsrGraph;
use torchgt_compat::rng::rngs::SmallRng;
use torchgt_compat::rng::{Rng, SeedableRng};

/// Intermediate weighted graph used during coarsening.
#[derive(Clone, Debug)]
struct WeightedGraph {
    /// Node weights (number of original nodes collapsed into each).
    vwgt: Vec<u64>,
    /// Adjacency with edge weights; parallel edges merged.
    adj: Vec<Vec<(u32, u64)>>,
}

impl WeightedGraph {
    fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_nodes();
        let mut adj = Vec::with_capacity(n);
        for v in 0..n {
            adj.push(
                g.neighbors(v)
                    .iter()
                    .filter(|&&nb| nb as usize != v)
                    .map(|&nb| (nb, 1u64))
                    .collect::<Vec<_>>(),
            );
        }
        Self { vwgt: vec![1; n], adj }
    }

    fn len(&self) -> usize {
        self.vwgt.len()
    }

    fn total_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }
}

/// Heavy-edge matching: repeatedly match each unmatched node with its
/// heaviest unmatched neighbour. Returns the mapping old → coarse id and the
/// coarse graph.
fn coarsen(g: &WeightedGraph, rng: &mut SmallRng) -> (Vec<u32>, WeightedGraph) {
    let n = g.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut mate = vec![u32::MAX; n];
    for &v in &order {
        let v = v as usize;
        if mate[v] != u32::MAX {
            continue;
        }
        let mut best: Option<(u32, u64)> = None;
        for &(nb, w) in &g.adj[v] {
            if mate[nb as usize] == u32::MAX && nb as usize != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((nb, w)),
                }
            }
        }
        match best {
            Some((nb, _)) => {
                mate[v] = nb;
                mate[nb as usize] = v as u32;
            }
            None => mate[v] = v as u32,
        }
    }
    // Assign coarse ids.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if map[v] != u32::MAX {
            continue;
        }
        map[v] = next;
        let m = mate[v] as usize;
        if m != v {
            map[m] = next;
        }
        next += 1;
    }
    // Build coarse graph.
    let cn = next as usize;
    let mut vwgt = vec![0u64; cn];
    for v in 0..n {
        vwgt[map[v] as usize] += g.vwgt[v];
    }
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); cn];
    let mut accum: Vec<u64> = vec![0; cn];
    let mut touched: Vec<u32> = Vec::new();
    for v in 0..n {
        let cv = map[v] as usize;
        for &(nb, w) in &g.adj[v] {
            let cn_id = map[nb as usize];
            if cn_id as usize == cv {
                continue;
            }
            if accum[cn_id as usize] == 0 {
                touched.push(cn_id);
            }
            accum[cn_id as usize] += w;
        }
        // Flush when v is the last member mapping to cv — simpler: flush per
        // original node into a map keyed by coarse target, merging later.
        // To merge across the pair, only flush after processing both members:
        // we instead rebuild per coarse node below.
        if !touched.is_empty() && is_last_member(v, &mate) {
            for &t in &touched {
                adj[cv].push((t, accum[t as usize]));
                accum[t as usize] = 0;
            }
            touched.clear();
        }
    }
    // The incremental flush above only handles matched pairs laid out
    // consecutively; to be robust, rebuild by merging duplicates.
    for list in adj.iter_mut() {
        list.sort_unstable_by_key(|&(t, _)| t);
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(list.len());
        for &(t, w) in list.iter() {
            match merged.last_mut() {
                Some((lt, lw)) if *lt == t => *lw += w,
                _ => merged.push((t, w)),
            }
        }
        *list = merged;
    }
    (map, WeightedGraph { vwgt, adj })
}

/// True when `v` is the second (or only) member of its matched pair in id
/// order — the point at which its coarse adjacency is complete.
fn is_last_member(v: usize, mate: &[u32]) -> bool {
    let m = mate[v] as usize;
    m <= v
}

/// Greedy BFS region growing: grow part 0 from a pseudo-peripheral seed until
/// it holds ~`target` weight.
fn initial_bisection(g: &WeightedGraph, target: u64, rng: &mut SmallRng) -> Vec<u8> {
    let n = g.len();
    let mut side = vec![1u8; n];
    if n == 0 {
        return side;
    }
    let start = rng.gen_range(0..n);
    let mut grown = 0u64;
    let mut queue = std::collections::VecDeque::new();
    let mut visited = vec![false; n];
    queue.push_back(start);
    visited[start] = true;
    while grown < target {
        let v = match queue.pop_front() {
            Some(v) => v,
            None => match visited.iter().position(|&d| !d) {
                Some(v) => {
                    visited[v] = true;
                    v
                }
                None => break,
            },
        };
        side[v] = 0;
        grown += g.vwgt[v];
        for &(nb, _) in &g.adj[v] {
            if !visited[nb as usize] {
                visited[nb as usize] = true;
                queue.push_back(nb as usize);
            }
        }
    }
    side
}

/// One boundary-FM refinement pass: move nodes whose gain (reduction in cut)
/// is positive, respecting a balance tolerance.
fn refine(g: &WeightedGraph, side: &mut [u8], target0: u64, tolerance: f64) {
    let n = g.len();
    let mut w0: u64 = (0..n).filter(|&v| side[v] == 0).map(|v| g.vwgt[v]).sum();
    let total = g.total_weight();
    let max0 = (target0 as f64 * (1.0 + tolerance)) as u64;
    let min0 = (target0 as f64 * (1.0 - tolerance)) as u64;
    for _pass in 0..4 {
        let mut moved = false;
        for v in 0..n {
            let mut internal = 0i64;
            let mut external = 0i64;
            for &(nb, w) in &g.adj[v] {
                if side[nb as usize] == side[v] {
                    internal += w as i64;
                } else {
                    external += w as i64;
                }
            }
            let gain = external - internal;
            if gain <= 0 {
                continue;
            }
            // Check balance after the prospective move.
            let (new_w0, ok) = if side[v] == 0 {
                let nw = w0 - g.vwgt[v];
                (nw, nw >= min0)
            } else {
                let nw = w0 + g.vwgt[v];
                (nw, nw <= max0)
            };
            if ok {
                side[v] ^= 1;
                w0 = new_w0;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let _ = total;
}

/// Multilevel bisection of a weighted graph; returns the side (0/1) of every
/// node. `frac0` is the weight fraction that should land on side 0.
fn multilevel_bisect(g: &WeightedGraph, frac0: f64, rng: &mut SmallRng) -> Vec<u8> {
    const COARSE_LIMIT: usize = 64;
    if g.len() <= COARSE_LIMIT {
        let target = (g.total_weight() as f64 * frac0) as u64;
        let mut side = initial_bisection(g, target, rng);
        refine(g, &mut side, target.max(1), 0.1);
        return side;
    }
    let (map, coarse) = coarsen(g, rng);
    let coarse_side = if coarse.len() < g.len() {
        multilevel_bisect(&coarse, frac0, rng)
    } else {
        // Matching failed to shrink the graph (e.g. no edges): fall back to a
        // direct partition.
        let target = (coarse.total_weight() as f64 * frac0) as u64;
        let mut side = initial_bisection(&coarse, target, rng);
        refine(&coarse, &mut side, target.max(1), 0.1);
        side
    };
    // Project and refine at this level.
    let mut side: Vec<u8> = (0..g.len()).map(|v| coarse_side[map[v] as usize]).collect();
    let target = (g.total_weight() as f64 * frac0) as u64;
    refine(g, &mut side, target.max(1), 0.05);
    side
}

/// Partition `g` into `k` parts of near-equal size by multilevel recursive
/// bisection. Returns the part id of every node, in `0..k`.
pub fn partition(g: &CsrGraph, k: usize, seed: u64) -> Vec<u32> {
    assert!(k >= 1);
    let n = g.num_nodes();
    let mut assignment = vec![0u32; n];
    if k == 1 || n == 0 {
        return assignment;
    }
    let wg = WeightedGraph::from_csr(g);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Work queue of (node ids, part id range).
    let mut stack: Vec<(Vec<u32>, WeightedGraph, usize, usize)> =
        vec![((0..n as u32).collect(), wg, 0, k)];
    while let Some((ids, sub, lo, parts)) = stack.pop() {
        if parts == 1 {
            for &v in &ids {
                assignment[v as usize] = lo as u32;
            }
            continue;
        }
        let k0 = parts / 2;
        let frac0 = k0 as f64 / parts as f64;
        let side = multilevel_bisect(&sub, frac0, &mut rng);
        // Split into two weighted subgraphs.
        let mut ids0 = Vec::new();
        let mut ids1 = Vec::new();
        let mut local0 = vec![u32::MAX; sub.len()];
        let mut local1 = vec![u32::MAX; sub.len()];
        for v in 0..sub.len() {
            if side[v] == 0 {
                local0[v] = ids0.len() as u32;
                ids0.push(ids[v]);
            } else {
                local1[v] = ids1.len() as u32;
                ids1.push(ids[v]);
            }
        }
        let build = |locals: &[u32], count: usize| -> WeightedGraph {
            let mut vwgt = vec![0u64; count];
            let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); count];
            for v in 0..sub.len() {
                let lv = locals[v];
                if lv == u32::MAX {
                    continue;
                }
                vwgt[lv as usize] = sub.vwgt[v];
                for &(nb, w) in &sub.adj[v] {
                    let lnb = locals[nb as usize];
                    if lnb != u32::MAX {
                        adj[lv as usize].push((lnb, w));
                    }
                }
            }
            WeightedGraph { vwgt, adj }
        };
        let sub0 = build(&local0, ids0.len());
        let sub1 = build(&local1, ids1.len());
        stack.push((ids0, sub0, lo, k0));
        stack.push((ids1, sub1, lo + k0, parts - k0));
    }
    assignment
}

/// Result of cluster-aware reordering: the paper's node relabelling that makes
/// each cluster a contiguous id range.
#[derive(Clone, Debug)]
pub struct ClusterOrder {
    /// `perm[new_id] = old_id`.
    pub perm: Vec<u32>,
    /// `inverse[old_id] = new_id`.
    pub inverse: Vec<u32>,
    /// Cluster id of each *new* position (non-decreasing).
    pub cluster_of_new: Vec<u32>,
    /// `offsets[c]..offsets[c+1]` is cluster `c`'s new-id range.
    pub offsets: Vec<usize>,
}

impl ClusterOrder {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Size of cluster `c`.
    pub fn cluster_size(&self, c: usize) -> usize {
        self.offsets[c + 1] - self.offsets[c]
    }

    /// Cluster containing new id `v`.
    pub fn cluster_of(&self, v: usize) -> u32 {
        self.cluster_of_new[v]
    }
}

/// Build the cluster-grouping permutation from a partition assignment (stable
/// within each cluster, so locality inside communities is preserved).
pub fn cluster_order(assignment: &[u32], k: usize) -> ClusterOrder {
    let n = assignment.len();
    let mut counts = vec![0usize; k];
    for &c in assignment {
        counts[c as usize] += 1;
    }
    let mut offsets = vec![0usize; k + 1];
    for c in 0..k {
        offsets[c + 1] = offsets[c] + counts[c];
    }
    let mut cursor = offsets[..k].to_vec();
    let mut perm = vec![0u32; n];
    let mut inverse = vec![0u32; n];
    for old in 0..n {
        let c = assignment[old] as usize;
        let new = cursor[c];
        cursor[c] += 1;
        perm[new] = old as u32;
        inverse[old] = new as u32;
    }
    let mut cluster_of_new = vec![0u32; n];
    for c in 0..k {
        for slot in offsets[c]..offsets[c + 1] {
            cluster_of_new[slot] = c as u32;
        }
    }
    ClusterOrder { perm, inverse, cluster_of_new, offsets }
}

/// Edge-cut of a partition: number of arcs crossing parts / 2.
pub fn edge_cut(g: &CsrGraph, assignment: &[u32]) -> usize {
    let mut cut = 0usize;
    for v in 0..g.num_nodes() {
        for &nb in g.neighbors(v) {
            if assignment[v] != assignment[nb as usize] {
                cut += 1;
            }
        }
    }
    cut / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clustered_power_law, path_graph, ClusteredConfig};

    #[test]
    fn partition_covers_all_parts_and_balances() {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n: 1200, communities: 8, avg_degree: 8.0, intra_fraction: 0.9 },
            5,
        );
        let k = 8;
        let assign = partition(&g, k, 1);
        let mut counts = vec![0usize; k];
        for &c in &assign {
            assert!((c as usize) < k);
            counts[c as usize] += 1;
        }
        let avg = 1200 / k;
        for (c, &cnt) in counts.iter().enumerate() {
            assert!(
                cnt > avg / 3 && cnt < avg * 3,
                "part {c} badly imbalanced: {cnt} vs avg {avg}"
            );
        }
    }

    #[test]
    fn partition_recovers_planted_communities_better_than_random() {
        let (g, comm) = clustered_power_law(
            ClusteredConfig { n: 1000, communities: 4, avg_degree: 12.0, intra_fraction: 0.95 },
            7,
        );
        let assign = partition(&g, 4, 2);
        let cut = edge_cut(&g, &assign);
        // Random 4-way assignment cuts ~75% of edges; the planted structure
        // lets the partitioner do far better.
        let total = g.num_edges();
        assert!(
            (cut as f64) < 0.5 * total as f64,
            "cut {cut} of {total} edges — no better than random"
        );
        // Sanity: compare against the planted communities' own cut.
        let planted_cut = edge_cut(&g, &comm);
        assert!(cut as f64 <= planted_cut as f64 * 3.0 + 100.0);
    }

    #[test]
    fn path_graph_bisection_is_contiguousish() {
        let g = path_graph(100);
        let assign = partition(&g, 2, 3);
        // A path's optimal bisection cuts exactly 1 edge; accept ≤ 5.
        assert!(edge_cut(&g, &assign) <= 5, "cut = {}", edge_cut(&g, &assign));
    }

    #[test]
    fn partition_k1_is_trivial() {
        let g = path_graph(10);
        let assign = partition(&g, 1, 0);
        assert!(assign.iter().all(|&c| c == 0));
    }

    #[test]
    fn partition_is_deterministic() {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n: 400, communities: 4, avg_degree: 6.0, intra_fraction: 0.85 },
            9,
        );
        assert_eq!(partition(&g, 4, 42), partition(&g, 4, 42));
    }

    #[test]
    fn cluster_order_groups_contiguously() {
        let assign = vec![2u32, 0, 1, 0, 2, 1, 0];
        let order = cluster_order(&assign, 3);
        assert_eq!(order.num_clusters(), 3);
        assert_eq!(order.cluster_size(0), 3);
        assert_eq!(order.cluster_size(1), 2);
        assert_eq!(order.cluster_size(2), 2);
        // perm is a permutation.
        let mut seen = vec![false; 7];
        for &old in &order.perm {
            assert!(!seen[old as usize]);
            seen[old as usize] = true;
        }
        // inverse really inverts perm.
        for new in 0..7 {
            assert_eq!(order.inverse[order.perm[new] as usize] as usize, new);
        }
        // cluster_of_new is sorted.
        assert!(order.cluster_of_new.windows(2).all(|w| w[0] <= w[1]));
        // Stability: old ids within a cluster stay in order.
        assert_eq!(&order.perm[0..3], &[1, 3, 6]);
    }

    #[test]
    fn reordered_graph_concentrates_edges_in_diagonal_blocks() {
        let (g, _) = clustered_power_law(
            ClusteredConfig { n: 800, communities: 8, avg_degree: 10.0, intra_fraction: 0.9 },
            13,
        );
        let assign = partition(&g, 8, 1);
        let order = cluster_order(&assign, 8);
        let rg = g.permute(&order.perm);
        // Count arcs within diagonal blocks of the reordered graph.
        let mut diag = 0usize;
        let mut total = 0usize;
        for v in 0..rg.num_nodes() {
            let cv = order.cluster_of(v);
            for &nb in rg.neighbors(v) {
                total += 1;
                if order.cluster_of(nb as usize) == cv {
                    diag += 1;
                }
            }
        }
        assert!(
            diag as f64 / total as f64 > 0.5,
            "diagonal fraction {}",
            diag as f64 / total as f64
        );
    }
}
