//! Shortest-path-distance (SPD) computation for Graphormer's spatial
//! encoding (Eq. 3 of the paper: `bias_{φ(vi,vj)}` indexed by the shortest
//! hop count between node pairs).

use crate::csr::CsrGraph;
use torchgt_compat::par::prelude::*;

/// Sentinel for "unreachable within the cap".
pub const UNREACHABLE: u8 = u8::MAX;

/// All-pairs shortest path distances, capped at `max_dist` hops (distances
/// beyond the cap are reported as [`UNREACHABLE`]). Only intended for the
/// small graphs of graph-level tasks — the matrix is `n × n` bytes.
pub fn spd_matrix(g: &CsrGraph, max_dist: u8) -> Vec<u8> {
    let n = g.num_nodes();
    let mut out = vec![UNREACHABLE; n * n];
    out.par_chunks_mut(n).enumerate().for_each(|(src, row)| {
        bfs_into(g, src, max_dist, row);
    });
    out
}

/// Single-source BFS distances capped at `max_dist` into a caller-provided
/// buffer of length `n` (pre-filled entries are overwritten).
pub fn bfs_into(g: &CsrGraph, src: usize, max_dist: u8, out: &mut [u8]) {
    let n = g.num_nodes();
    debug_assert_eq!(out.len(), n);
    out.iter_mut().for_each(|d| *d = UNREACHABLE);
    let mut frontier = vec![src as u32];
    let mut next = Vec::new();
    out[src] = 0;
    let mut dist = 0u8;
    while !frontier.is_empty() && dist < max_dist {
        dist += 1;
        next.clear();
        for &v in &frontier {
            for &nb in g.neighbors(v as usize) {
                if out[nb as usize] == UNREACHABLE {
                    out[nb as usize] = dist;
                    next.push(nb);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
}

/// Single-source BFS distances (allocating convenience wrapper).
pub fn bfs_distances(g: &CsrGraph, src: usize, max_dist: u8) -> Vec<u8> {
    let mut out = vec![UNREACHABLE; g.num_nodes()];
    bfs_into(g, src, max_dist, &mut out);
    out
}

/// Eccentricity lower bound: the largest finite BFS distance from `src`.
pub fn eccentricity(g: &CsrGraph, src: usize, max_dist: u8) -> u8 {
    bfs_distances(g, src, max_dist)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Estimate the graph diameter by double-sweep BFS (exact on trees, a good
/// lower bound in general). Used by the C3 reachability check.
pub fn diameter_estimate(g: &CsrGraph, max_dist: u8) -> u8 {
    if g.num_nodes() == 0 {
        return 0;
    }
    let d0 = bfs_distances(g, 0, max_dist);
    let far = d0
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v)
        .unwrap_or(0);
    eccentricity(g, far, max_dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn path_distances() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0, 10);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cap_truncates() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0, 2);
        assert_eq!(d, vec![0, 1, 2, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    fn spd_matrix_is_symmetric() {
        let g = cycle_graph(6);
        let m = spd_matrix(&g, 10);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(m[i * 6 + j], m[j * 6 + i]);
            }
        }
        // Opposite points on a 6-cycle are 3 apart.
        assert_eq!(m[3], 3);
    }

    #[test]
    fn disconnected_pairs_are_unreachable() {
        let g = CsrGraphHelper::two_components();
        let m = spd_matrix(&g, 10);
        assert_eq!(m[1], 1); // 0-1 connected
        assert_eq!(m[2], UNREACHABLE); // 0-2 not
    }

    struct CsrGraphHelper;
    impl CsrGraphHelper {
        fn two_components() -> crate::csr::CsrGraph {
            crate::csr::CsrGraph::from_edges(4, &[(0, 1), (2, 3)])
        }
    }

    #[test]
    fn diameter_of_known_shapes() {
        assert_eq!(diameter_estimate(&path_graph(10), 20), 9);
        assert_eq!(diameter_estimate(&star_graph(10), 20), 2);
        let d = diameter_estimate(&cycle_graph(10), 20);
        assert!(d == 5, "cycle diameter {d}");
    }
}
