//! Compressed-sparse-row graph representation.
//!
//! All graphs in the reproduction are undirected and stored symmetrically;
//! node ids are `u32` (the paper's largest graph, ogbn-papers100M, has 111 M
//! nodes, well within `u32`).

use std::collections::BTreeSet;

/// An undirected graph in CSR form.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    /// `row_ptr[v]..row_ptr[v+1]` indexes `col_idx` with `v`'s neighbours.
    row_ptr: Vec<usize>,
    /// Flattened adjacency lists, sorted within each row.
    col_idx: Vec<u32>,
}

impl CsrGraph {
    /// Build from an edge list. Edges are symmetrised and deduplicated;
    /// self-loops in the input are kept (once).
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        // Sort-based construction: O(E log E), much faster than per-node sets
        // for the multi-million-edge synthetic graphs used in the benches.
        let mut arcs = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            assert!(
                (u as usize) < num_nodes && (v as usize) < num_nodes,
                "edge endpoint out of range"
            );
            arcs.push((u, v));
            if u != v {
                arcs.push((v, u));
            }
        }
        arcs.sort_unstable();
        arcs.dedup();
        let mut row_ptr = vec![0usize; num_nodes + 1];
        for &(u, _) in &arcs {
            row_ptr[u as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = arcs.into_iter().map(|(_, v)| v).collect();
        Self { row_ptr, col_idx }
    }

    fn from_adj(adj: &[BTreeSet<u32>]) -> Self {
        let mut row_ptr = Vec::with_capacity(adj.len() + 1);
        row_ptr.push(0usize);
        let total: usize = adj.iter().map(|s| s.len()).sum();
        let mut col_idx = Vec::with_capacity(total);
        for s in adj {
            col_idx.extend(s.iter().copied());
            row_ptr.push(col_idx.len());
        }
        Self { row_ptr, col_idx }
    }

    /// Build directly from CSR arrays (must be well-formed: monotone
    /// `row_ptr`, sorted rows, in-range columns).
    pub fn from_raw(row_ptr: Vec<usize>, col_idx: Vec<u32>) -> Self {
        assert!(!row_ptr.is_empty());
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        Self { row_ptr, col_idx }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored directed arcs (2× undirected edges, self-loops count
    /// once).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of undirected edges (self-loops count once).
    pub fn num_edges(&self) -> usize {
        let self_loops = (0..self.num_nodes() as u32)
            .filter(|&v| self.neighbors(v as usize).binary_search(&v).is_ok())
            .count();
        (self.col_idx.len() - self_loops) / 2 + self_loops
    }

    /// Neighbour slice of node `v` (sorted).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// Degree of node `v` (self-loop counts once).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// Whether the (undirected) edge `u—v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Raw row pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Sparsity: the fraction of nonzero entries in the `N×N` adjacency
    /// matrix (the paper's β_G; ogbn-arxiv quotes `4.1e-5`).
    pub fn sparsity(&self) -> f64 {
        let n = self.num_nodes() as f64;
        if n == 0.0 {
            return 0.0;
        }
        self.num_arcs() as f64 / (n * n)
    }

    /// Return a copy with a self-loop on every node (paper condition C1:
    /// every token attends to itself).
    pub fn with_self_loops(&self) -> CsrGraph {
        let n = self.num_nodes();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.col_idx.len() + n);
        for v in 0..n {
            let nbrs = self.neighbors(v);
            let vv = v as u32;
            let mut inserted = false;
            for &u in nbrs {
                if !inserted && u >= vv {
                    if u != vv {
                        col_idx.push(vv);
                    }
                    inserted = true;
                }
                col_idx.push(u);
            }
            if !inserted {
                col_idx.push(vv);
            }
            row_ptr.push(col_idx.len());
        }
        CsrGraph { row_ptr, col_idx }
    }

    /// Induced subgraph on `nodes` (which become `0..nodes.len()` in order).
    /// Returns the subgraph and the mapping used.
    pub fn induced_subgraph(&self, nodes: &[u32]) -> CsrGraph {
        let mut remap = vec![u32::MAX; self.num_nodes()];
        for (new, &old) in nodes.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut adj: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nodes.len()];
        for (new, &old) in nodes.iter().enumerate() {
            for &nb in self.neighbors(old as usize) {
                let m = remap[nb as usize];
                if m != u32::MAX {
                    adj[new].insert(m);
                }
            }
        }
        CsrGraph::from_adj(&adj)
    }

    /// Relabel nodes by a permutation: `perm[new_id] = old_id`. The returned
    /// graph is isomorphic to `self`.
    pub fn permute(&self, perm: &[u32]) -> CsrGraph {
        let n = self.num_nodes();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut inverse = vec![u32::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(inverse[old as usize] == u32::MAX, "perm is not a permutation");
            inverse[old as usize] = new as u32;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.col_idx.len());
        let mut scratch: Vec<u32> = Vec::new();
        for new in 0..n {
            let old = perm[new] as usize;
            scratch.clear();
            scratch.extend(self.neighbors(old).iter().map(|&nb| inverse[nb as usize]));
            scratch.sort_unstable();
            col_idx.extend_from_slice(&scratch);
            row_ptr.push(col_idx.len());
        }
        CsrGraph { row_ptr, col_idx }
    }

    /// Connected components labelling (BFS). Returns `(labels, count)`.
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let n = self.num_nodes();
        let mut label = vec![u32::MAX; n];
        let mut count = 0u32;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if label[start] != u32::MAX {
                continue;
            }
            label[start] = count;
            queue.push_back(start as u32);
            while let Some(v) = queue.pop_front() {
                for &nb in self.neighbors(v as usize) {
                    if label[nb as usize] == u32::MAX {
                        label[nb as usize] = count;
                        queue.push_back(nb);
                    }
                }
            }
            count += 1;
        }
        (label, count as usize)
    }

    /// Whether the graph is connected (an empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.num_nodes() == 0 || self.connected_components().1 == 1
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.num_nodes()).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_nodes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 2-0 triangle plus 2-3 tail.
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn from_edges_symmetrises() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.degree(2), 3);
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = CsrGraph::from_edges(5, &[(3, 1), (3, 4), (3, 0), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
    }

    #[test]
    fn self_loops_added_once_and_sorted() {
        let g = triangle_plus_tail().with_self_loops();
        for v in 0..4 {
            assert!(g.has_edge(v, v), "missing self-loop on {v}");
            let nbrs = g.neighbors(v);
            let mut sorted = nbrs.to_vec();
            sorted.sort_unstable();
            assert_eq!(nbrs, &sorted[..]);
        }
        assert_eq!(g.num_edges(), 4 + 4);
        // Idempotent.
        let g2 = g.with_self_loops();
        assert_eq!(g.num_arcs(), g2.num_arcs());
    }

    #[test]
    fn sparsity_matches_definition() {
        let g = triangle_plus_tail();
        assert!((g.sparsity() - 8.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = triangle_plus_tail();
        let sub = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        // edges 1-2 and 2-3 survive (as 0-1, 1-2); 0-x edges drop.
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn permute_preserves_structure() {
        let g = triangle_plus_tail();
        let perm = vec![3, 2, 1, 0];
        let p = g.permute(&perm);
        assert_eq!(p.num_edges(), g.num_edges());
        // old edge 2-3 becomes new edge 1-0.
        assert!(p.has_edge(0, 1));
        // old degree of node 2 (=3) is now degree of new node 1.
        assert_eq!(p.degree(1), 3);
    }

    #[test]
    fn connected_components_counts() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let (labels, count) = g.connected_components();
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert!(!g.is_connected());
        assert!(triangle_plus_tail().is_connected());
    }

    #[test]
    fn degree_statistics() {
        let g = triangle_plus_tail();
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_sane() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert!(g.is_connected());
        assert_eq!(g.sparsity(), 0.0);
    }
}
