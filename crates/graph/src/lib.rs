//! # torchgt-graph
//!
//! Graph substrate for the TorchGT reproduction: CSR graphs, synthetic
//! dataset generators mirroring the paper's Table III, METIS-style multilevel
//! partitioning and cluster reordering, shortest-path distances for
//! Graphormer's spatial encoding, the Dual-interleaved Attention safety
//! conditions (C1–C3), and the sparsity/cluster statistics that drive the
//! Elastic Computation Reformation.

pub mod conditions;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod pack;
pub mod partition;
pub mod reorder;
pub mod spd;
pub mod spectral;
pub mod stats;

pub use conditions::{augment_for_conditions, check_conditions, ConditionReport};
pub use csr::CsrGraph;
pub use datasets::{
    DatasetKind, DatasetSpec, EffectiveSpec, GraphDataset, GraphLabel, GraphSample, NodeDataset,
    NodeSink, Split, TaskKind,
};
pub use pack::{pack_graphs, PackedGraphs};
pub use partition::{cluster_order, edge_cut, partition, ClusterOrder};
pub use reorder::{bandwidth, degree_order, reverse_cuthill_mckee};
pub use spectral::{fiedler_vector, spectral_partition};
pub use stats::{cluster_matrix_stats, degree_stats, modularity, ClusterMatrixStats, DegreeStats};
