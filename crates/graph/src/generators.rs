//! Synthetic graph generators.
//!
//! The paper evaluates on OGB / Amazon / MalNet graphs which are not
//! redistributable here; DESIGN.md documents the substitution. These
//! generators produce graphs whose *statistics* (sparsity, degree skew,
//! community structure) match the originals at a configurable scale, which is
//! what the system-level results depend on.

use crate::csr::CsrGraph;
use torchgt_compat::rng::rngs::SmallRng;
use torchgt_compat::rng::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, m)` graph: `m` uniformly random distinct edges.
/// `m` larger than the `n·(n-1)/2` possible undirected edges is clamped.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    if n < 2 {
        return CsrGraph::from_edges(n, &[]);
    }
    let m = m.min(n * (n - 1) / 2);
    let mut seen = std::collections::HashSet::with_capacity(m);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && seen.insert((u.min(v), u.max(v))) {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_attach` existing nodes with probability proportional to degree.
/// Produces the power-law degree skew characteristic of citation and
/// co-purchase graphs.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let m0 = (m_attach + 1).min(n);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m_attach);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);
    for v in 1..m0 {
        edges.push((v as u32, (v - 1) as u32));
        endpoints.push(v as u32);
        endpoints.push((v - 1) as u32);
    }
    for v in m0..n {
        let mut targets = Vec::with_capacity(m_attach);
        while targets.len() < m_attach.min(v) {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t as usize != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((v as u32, t));
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Parameters for the clustered power-law generator used to stand in for the
/// OGB node-classification graphs.
#[derive(Clone, Copy, Debug)]
pub struct ClusteredConfig {
    /// Total number of nodes.
    pub n: usize,
    /// Number of planted communities (clusters).
    pub communities: usize,
    /// Average degree (so edges ≈ `n * avg_degree / 2`).
    pub avg_degree: f64,
    /// Fraction of edge endpoints that stay inside their community.
    /// Real-world graphs in the paper have strong cluster structure, i.e.
    /// values near 0.9.
    pub intra_fraction: f64,
}

/// Stochastic-block-model × preferential-attachment hybrid.
///
/// Node degrees follow a heavy-tailed distribution (Zipf-like weights) and
/// `intra_fraction` of edges land inside the node's planted community; the
/// remainder connect uniformly at random. Communities are contiguous in the
/// *planted* labelling but node ids are shuffled, so METIS-style reordering
/// has real work to do — exactly the situation Figure 5 of the paper depicts.
///
/// Returns the graph and the planted community of each node.
pub fn clustered_power_law(cfg: ClusteredConfig, seed: u64) -> (CsrGraph, Vec<u32>) {
    let target_edges = ((cfg.n as f64) * cfg.avg_degree / 2.0) as usize;
    let mut edges = Vec::with_capacity(target_edges + 16);
    let community = clustered_power_law_stream(cfg, seed, &mut |u, v| edges.push((u, v)));
    (CsrGraph::from_edges(cfg.n, &edges), community)
}

/// Streaming core of [`clustered_power_law`]: every generated edge is pushed
/// into `sink` instead of being collected, so callers (the `torchgt-data`
/// shard writers) can spill edges to disk without ever holding the edge
/// list. Peak memory is `O(n)` — community labels, member lists, the hub
/// shuffle, and a touched bitmap.
///
/// Draws from the RNG in exactly the same order as the collecting wrapper,
/// so for a given `(cfg, seed)` the edge stream reassembles (via
/// [`CsrGraph::from_edges`]) into the identical graph.
pub fn clustered_power_law_stream(
    cfg: ClusteredConfig,
    seed: u64,
    sink: &mut dyn FnMut(u32, u32),
) -> Vec<u32> {
    let ClusteredConfig { n, communities, avg_degree, intra_fraction } = cfg;
    assert!(communities >= 1 && n >= communities);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Shuffled community assignment, near-equal sizes.
    let mut community: Vec<u32> = (0..n).map(|i| (i % communities) as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        community.swap(i, j);
    }
    // Member lists per community for intra-edge sampling.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); communities];
    for (v, &c) in community.iter().enumerate() {
        members[c as usize].push(v as u32);
    }
    // Heavy-tailed degree weights: w_i ∝ (i+1)^-0.8 over a shuffled order.
    let target_edges = ((n as f64) * avg_degree / 2.0) as usize;
    // Zipf sampling via inverse-CDF over weights would be costly; instead use
    // the standard trick: pick u = floor(n * r^gamma) which yields a
    // power-law-ish frequency of low indices, then map through a shuffle.
    let gamma = 2.5f64;
    let mut shuffle: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        shuffle.swap(i, j);
    }
    let draw_hub = |rng: &mut SmallRng| -> u32 {
        let r: f64 = rng.gen::<f64>();
        let idx = ((n as f64) * r.powf(gamma)) as usize;
        shuffle[idx.min(n - 1)]
    };
    // Every emitted edge has `u != v`, so a node is isolated in the
    // reassembled graph iff it never appeared as an endpoint — a bitmap
    // replaces the intermediate `CsrGraph` the repair pass used to build.
    let mut touched = vec![false; n];
    let mut emitted = 0usize;
    while emitted < target_edges {
        let u = draw_hub(&mut rng);
        let v = if rng.gen::<f64>() < intra_fraction {
            // Intra-community endpoint.
            let c = community[u as usize] as usize;
            members[c][rng.gen_range(0..members[c].len())]
        } else {
            rng.gen_range(0..n as u32)
        };
        if u != v {
            touched[u as usize] = true;
            touched[v as usize] = true;
            sink(u, v);
            emitted += 1;
        }
    }
    // Guarantee no isolated nodes: chain each degree-0 node to a random
    // member of its community (keeps C3 reachability plausible). Repair
    // edges deliberately do not update `touched`: the collecting path
    // checked degrees against the graph built *before* any repairs.
    for v in 0..n {
        if !touched[v] {
            let c = community[v] as usize;
            let mut other = members[c][rng.gen_range(0..members[c].len())];
            if other as usize == v {
                other = ((v + 1) % n) as u32;
            }
            sink(v as u32, other);
        }
    }
    community
}

/// A random connected "molecule-like" small graph: a random spanning tree plus
/// a few extra ring-closing edges. Stands in for ZINC / ogbg-molpcba
/// molecules (the paper's Table III quotes ~23 nodes, ~25 edges on average).
pub fn molecule_like(n: usize, extra_edges: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n + extra_edges);
    for v in 1..n {
        // Attach to a recent node: molecules are chain-like, not star-like.
        let lo = v.saturating_sub(4);
        let parent = rng.gen_range(lo..v) as u32;
        edges.push((v as u32, parent));
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra_edges && n > 2 && guard < extra_edges * 20 {
        guard += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            edges.push((u, v));
            added += 1;
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// A "function-call-graph-like" graph standing in for MalNet samples:
/// a few hub functions (high out-degree) plus chains of helpers. MalNet
/// graphs average 15K nodes / 35K edges.
pub fn callgraph_like(n: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let hubs = (n / 100).max(1);
    let mut edges = Vec::with_capacity(n * 2);
    for v in 1..n {
        // Mostly chain to the previous node (sequential calls)…
        if rng.gen::<f64>() < 0.7 {
            edges.push((v as u32, (v - 1) as u32));
        } else {
            // …otherwise call into a hub.
            edges.push((v as u32, rng.gen_range(0..hubs as u32)));
        }
        // Occasional extra call edge.
        if rng.gen::<f64>() < 0.6 {
            let t = rng.gen_range(0..n as u32);
            if t as usize != v {
                edges.push((v as u32, t));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Simple path graph `0—1—…—(n-1)`.
pub fn path_graph(n: usize) -> CsrGraph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// Cycle graph.
pub fn cycle_graph(n: usize) -> CsrGraph {
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    if n > 2 {
        edges.push((n as u32 - 1, 0));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Star graph with node 0 at the centre.
pub fn star_graph(n: usize) -> CsrGraph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_has_requested_size() {
        let g = erdos_renyi(100, 300, 1);
        assert_eq!(g.num_nodes(), 100);
        assert!(g.num_edges() <= 300 && g.num_edges() > 250);
    }

    #[test]
    fn erdos_renyi_edges_are_distinct() {
        // Regression: the doc promises `m` *distinct* edges, but duplicates
        // used to be pushed freely and silently merged by `from_edges`.
        for seed in 0..8 {
            let g = erdos_renyi(100, 300, seed);
            assert_eq!(g.num_edges(), 300, "seed {seed}");
        }
        // Requests beyond the n*(n-1)/2 possible edges clamp instead of
        // spinning forever.
        assert_eq!(erdos_renyi(10, 1_000, 2).num_edges(), 45);
    }

    #[test]
    fn barabasi_albert_is_connected_and_skewed() {
        let g = barabasi_albert(500, 2, 7);
        assert!(g.is_connected());
        // Power-law: max degree far above average.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn clustered_power_law_statistics() {
        let cfg = ClusteredConfig {
            n: 2000,
            communities: 8,
            avg_degree: 10.0,
            intra_fraction: 0.9,
        };
        let (g, comm) = clustered_power_law(cfg, 3);
        assert_eq!(g.num_nodes(), 2000);
        assert_eq!(comm.len(), 2000);
        assert!(g.min_degree() >= 1, "no isolated nodes");
        // Average degree within 25% of target.
        assert!((g.avg_degree() - 10.0).abs() < 2.5, "avg {}", g.avg_degree());
        // Community structure: intra-community arc fraction should be high.
        let mut intra = 0usize;
        let mut total = 0usize;
        for v in 0..g.num_nodes() {
            for &nb in g.neighbors(v) {
                total += 1;
                if comm[v] == comm[nb as usize] {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.7, "intra fraction {frac}");
    }

    #[test]
    fn clustered_power_law_is_deterministic() {
        let cfg = ClusteredConfig { n: 300, communities: 4, avg_degree: 6.0, intra_fraction: 0.8 };
        let (g1, c1) = clustered_power_law(cfg, 11);
        let (g2, c2) = clustered_power_law(cfg, 11);
        assert_eq!(g1, g2);
        assert_eq!(c1, c2);
        let (g3, _) = clustered_power_law(cfg, 12);
        assert_ne!(g1, g3);
    }

    #[test]
    fn streamed_edges_reassemble_into_the_collected_graph() {
        // The streaming core and the collecting wrapper must be the same
        // generator: same community labels, and the emitted edge stream must
        // build the identical CSR.
        let cfg = ClusteredConfig { n: 500, communities: 5, avg_degree: 8.0, intra_fraction: 0.85 };
        let (g, comm) = clustered_power_law(cfg, 21);
        let mut edges = Vec::new();
        let comm2 = clustered_power_law_stream(cfg, 21, &mut |u, v| edges.push((u, v)));
        assert_eq!(comm, comm2);
        assert_eq!(g, CsrGraph::from_edges(cfg.n, &edges));
    }

    #[test]
    fn molecule_like_is_connected_and_small() {
        for seed in 0..10 {
            let g = molecule_like(23, 3, seed);
            assert!(g.is_connected());
            assert!(g.num_edges() >= 22);
        }
    }

    #[test]
    fn callgraph_like_shape() {
        let g = callgraph_like(1000, 5);
        assert_eq!(g.num_nodes(), 1000);
        assert!(g.avg_degree() > 1.5 && g.avg_degree() < 8.0);
    }

    #[test]
    fn classic_topologies() {
        assert_eq!(path_graph(5).num_edges(), 4);
        assert_eq!(cycle_graph(5).num_edges(), 5);
        assert_eq!(star_graph(5).num_edges(), 4);
        assert_eq!(complete_graph(5).num_edges(), 10);
        assert_eq!(complete_graph(5).min_degree(), 4);
    }
}
