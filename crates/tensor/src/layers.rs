//! Differentiable layers with hand-written backward passes.
//!
//! Each layer caches whatever it needs from the forward pass, so the usage
//! protocol is the usual `forward → backward → optimizer step → zero_grad`
//! loop. Gradients accumulate into [`Param::grad`].

use crate::backend;
use crate::init;
use crate::ops;
use crate::param::Param;
use crate::rng::{derive_seed, rng};
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use torchgt_compat::rng::Rng;

/// Common interface over trainable layers.
///
/// The `_ws` variants are the allocation-free hot path: outputs are checked
/// out of the caller's [`Workspace`] (the caller gives them back when done)
/// and intermediates are recycled through it. The plain `forward`/`backward`
/// entry points delegate to the `_ws` implementations through a throwaway
/// arena, so both paths run identical arithmetic.
pub trait Layer {
    /// Run the layer forward, caching state for backward.
    fn forward(&mut self, x: &Tensor) -> Tensor;
    /// Propagate the upstream gradient, accumulating parameter gradients, and
    /// return the gradient with respect to the input.
    fn backward(&mut self, dy: &Tensor) -> Tensor;
    /// [`Layer::forward`] drawing its output and scratch from `ws`.
    fn forward_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let _ = ws;
        self.forward(x)
    }
    /// [`Layer::backward`] drawing its output and scratch from `ws`.
    fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let _ = ws;
        self.backward(dy)
    }
    /// Mutable access to the layer's parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Param>;
    /// Clear all accumulated gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
    /// Total scalar parameter count.
    fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

/// Fully-connected layer `y = x W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix of shape `[in, out]`.
    pub w: Param,
    /// Bias row of shape `[1, out]`.
    pub b: Param,
    cached_x: Option<Tensor>,
}

impl Linear {
    /// Construct with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            w: Param::new(init::xavier_uniform(in_dim, out_dim, derive_seed(seed, 1))),
            b: Param::new(Tensor::zeros(1, out_dim)),
            cached_x: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.forward_ws(x, &mut Workspace::new())
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.backward_ws(dy, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.cols(), self.in_dim(), "Linear input dim mismatch");
        match &mut self.cached_x {
            Some(c) if c.shape() == x.shape() => ops::copy_into(x, c),
            slot => *slot = Some(x.clone()),
        }
        let mut out = ws.take(x.rows(), self.out_dim());
        ops::matmul_into(x, &self.w.value, &mut out);
        ops::add_row_broadcast_inplace(&mut out, &self.b.value);
        out
    }

    fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self.cached_x.as_ref().expect("Linear backward before forward");
        let mut dw = ws.take(x.cols(), dy.cols());
        ops::matmul_at_into(x, dy, &mut dw);
        self.w.accumulate(&dw);
        ws.give(dw);
        let mut db = ws.take(1, dy.cols());
        ops::col_sum_into(dy, &mut db);
        self.b.accumulate(&db);
        ws.give(db);
        let mut dx = ws.take(dy.rows(), self.w.value.rows());
        ops::matmul_bt_into(dy, &self.w.value, &mut dx);
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// Layer normalisation over the last dimension with learnable gain/shift.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    /// Learnable gain `γ` of shape `[1, dim]`.
    pub gamma: Param,
    /// Learnable shift `β` of shape `[1, dim]`.
    pub beta: Param,
    eps: f32,
    cached_xhat: Option<Tensor>,
    cached_inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Construct with `γ = 1`, `β = 0`.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::full(1, dim, 1.0)),
            beta: Param::new(Tensor::zeros(1, dim)),
            eps: 1e-5,
            cached_xhat: None,
            cached_inv_std: Vec::new(),
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.forward_ws(x, &mut Workspace::new())
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.backward_ws(dy, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let (rows, cols) = x.shape();
        assert_eq!(cols, self.gamma.value.cols(), "LayerNorm dim mismatch");
        // Recycle the layer-owned x̂ cache when the shape is stable; the
        // stats kernel overwrites every element.
        let mut xhat = match self.cached_xhat.take() {
            Some(t) if t.shape() == (rows, cols) => t,
            _ => Tensor::zeros(rows, cols),
        };
        let mut out = ws.take(rows, cols);
        ops::layer_norm_stats_into_with(
            crate::backend::active(),
            x,
            &self.gamma.value,
            &self.beta.value,
            self.eps,
            &mut out,
            &mut xhat,
            &mut self.cached_inv_std,
        );
        self.cached_xhat = Some(xhat);
        out
    }

    fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let xhat = self.cached_xhat.as_ref().expect("LayerNorm backward before forward");
        let (rows, cols) = dy.shape();
        assert_eq!(xhat.shape(), dy.shape());
        let mut dgamma = ws.take(1, cols);
        let mut dbeta = ws.take(1, cols);
        let mut dx = ws.take(rows, cols);
        ops::layer_norm_backward_into(
            xhat,
            &self.cached_inv_std,
            &self.gamma.value,
            dy,
            &mut dx,
            &mut dgamma,
            &mut dbeta,
        );
        self.gamma.accumulate(&dgamma);
        self.beta.accumulate(&dbeta);
        ws.give(dgamma);
        ws.give(dbeta);
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

/// GELU activation (tanh approximation, as in PyTorch's default for
/// transformer FFNs).
#[derive(Clone, Debug, Default)]
pub struct Gelu {
    cached_x: Option<Tensor>,
}

impl Gelu {
    /// Construct a GELU activation layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.forward_ws(x, &mut Workspace::new())
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.backward_ws(dy, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        match &mut self.cached_x {
            Some(c) if c.shape() == x.shape() => ops::copy_into(x, c),
            slot => *slot = Some(x.clone()),
        }
        let mut out = ws.take(x.rows(), x.cols());
        ops::gelu_into(x, &mut out);
        out
    }

    fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self.cached_x.as_ref().expect("Gelu backward before forward");
        assert_eq!(x.shape(), dy.shape());
        let mut out = ws.take(x.rows(), x.cols());
        ops::gelu_backward_into(x, dy, &mut out);
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// ReLU activation.
///
/// The mask is stored as `1.0`/`0.0` floats rather than bools so both
/// forward and backward are a single dispatched element-wise multiply
/// (ROADMAP item 1: no undispatched scalar loops on the forward path).
#[derive(Clone, Debug, Default)]
pub struct Relu {
    cached_mask: Option<Vec<f32>>,
}

impl Relu {
    /// Construct a ReLU activation layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.forward_ws(x, &mut Workspace::new())
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.backward_ws(dy, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let mask = self.cached_mask.get_or_insert_with(Vec::new);
        mask.clear();
        mask.extend(x.data().iter().map(|&v| if v > 0.0 { 1.0f32 } else { 0.0 }));
        let mut out = ws.take(x.rows(), x.cols());
        backend::active().mul(x.data(), mask, out.data_mut());
        out
    }

    fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let mask = self.cached_mask.as_ref().expect("Relu backward before forward");
        assert_eq!(mask.len(), dy.len());
        let mut out = ws.take(dy.rows(), dy.cols());
        backend::active().mul(dy.data(), mask, out.data_mut());
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// Inverted dropout. A probability of `0.0` (or eval mode) is the identity.
#[derive(Clone, Debug)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    /// When false, dropout is a no-op (evaluation mode).
    pub training: bool,
    seed: u64,
    calls: u64,
    cached_mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Construct with drop probability `p` and a seed for mask generation.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1)");
        Self { p, training: true, seed, calls: 0, cached_mask: None }
    }

    /// How many training-mode forward passes have drawn a mask. Each call
    /// derives a fresh RNG from `(seed, calls)`, so this counter *is* the
    /// layer's PRNG state for snapshot/restore purposes.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Restore the mask-draw counter from a snapshot so the next forward
    /// pass draws the same mask the uninterrupted run would have drawn.
    pub fn set_calls(&mut self, calls: u64) {
        self.calls = calls;
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.forward_ws(x, &mut Workspace::new())
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.backward_ws(dy, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.cached_mask = None;
            let mut out = ws.take(x.rows(), x.cols());
            ops::copy_into(x, &mut out);
            return out;
        }
        self.calls += 1;
        let mut r = rng(derive_seed(self.seed, self.calls));
        let keep = 1.0 - self.p;
        let inv_keep = 1.0 / keep;
        let mut mask = self.cached_mask.take().unwrap_or_default();
        mask.clear();
        mask.extend((0..x.len()).map(|_| if r.gen::<f32>() < keep { inv_keep } else { 0.0 }));
        let mut out = ws.take(x.rows(), x.cols());
        backend::active().mul(x.data(), &mask, out.data_mut());
        self.cached_mask = Some(mask);
        out
    }

    fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut out = ws.take(dy.rows(), dy.cols());
        match &self.cached_mask {
            None => ops::copy_into(dy, &mut out),
            Some(mask) => backend::active().mul(dy.data(), mask, out.data_mut()),
        }
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// Lookup-table embedding: maps index sequences to learnable rows.
///
/// Used for Graphormer's degree ("centrality") encodings, Eq. (2) of the
/// paper.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// Table of shape `[vocab, dim]`.
    pub table: Param,
    cached_indices: Option<Vec<usize>>,
}

impl Embedding {
    /// Construct with small Gaussian-initialised rows.
    pub fn new(vocab: usize, dim: usize, seed: u64) -> Self {
        Self {
            table: Param::new(init::normal(vocab, dim, 0.0, 0.02, derive_seed(seed, 2))),
            cached_indices: None,
        }
    }

    /// Look up a batch of indices (clamped to the table size, which
    /// implements the "max degree bucket" behaviour of Graphormer).
    pub fn forward_indices(&mut self, indices: &[usize]) -> Tensor {
        self.forward_indices_ws(indices, &mut Workspace::new())
    }

    /// [`Embedding::forward_indices`] drawing its output from `ws` and
    /// recycling the clamped-index cache.
    pub fn forward_indices_ws(&mut self, indices: &[usize], ws: &mut Workspace) -> Tensor {
        let vocab = self.table.value.rows();
        let mut clamped = self.cached_indices.take().unwrap_or_default();
        clamped.clear();
        clamped.extend(indices.iter().map(|&i| i.min(vocab - 1)));
        let mut out = ws.take(indices.len(), self.table.value.cols());
        for (dst, &src) in clamped.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.table.value.row(src));
        }
        self.cached_indices = Some(clamped);
        out
    }

    /// Backward for [`Embedding::forward_indices`].
    pub fn backward_indices(&mut self, dy: &Tensor) {
        self.backward_indices_ws(dy, &mut Workspace::new());
    }

    /// [`Embedding::backward_indices`] building the scatter buffer in `ws`.
    pub fn backward_indices_ws(&mut self, dy: &Tensor, ws: &mut Workspace) {
        let idx = self.cached_indices.take().expect("Embedding backward before forward");
        assert_eq!(idx.len(), dy.rows());
        let mut g = ws.take(self.table.value.rows(), self.table.value.cols());
        g.scatter_add_rows(&idx, dy);
        self.table.accumulate(&g);
        ws.give(g);
        self.cached_indices = Some(idx);
    }
}

impl Layer for Embedding {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        // Interpret the first column as indices; convenience for Layer-trait
        // composition. Most callers use `forward_indices` directly.
        let idx: Vec<usize> = (0..x.rows()).map(|r| x.get(r, 0) as usize).collect();
        self.forward_indices(&idx)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.backward_indices(dy);
        Tensor::zeros(dy.rows(), 1)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }
}

/// Transformer feed-forward block: `Linear → GELU → Linear` with the
/// conventional 4× (configurable) expansion.
#[derive(Clone, Debug)]
pub struct FeedForward {
    /// Expansion projection.
    pub fc1: Linear,
    /// Contraction projection.
    pub fc2: Linear,
    act: Gelu,
}

impl FeedForward {
    /// Construct with hidden width `dim` and inner width `inner`.
    pub fn new(dim: usize, inner: usize, seed: u64) -> Self {
        Self {
            fc1: Linear::new(dim, inner, derive_seed(seed, 10)),
            fc2: Linear::new(inner, dim, derive_seed(seed, 11)),
            act: Gelu::new(),
        }
    }
}

impl Layer for FeedForward {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.forward_ws(x, &mut Workspace::new())
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.backward_ws(dy, &mut Workspace::new())
    }

    fn forward_ws(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let h = self.fc1.forward_ws(x, ws);
        let a = self.act.forward_ws(&h, ws);
        ws.give(h);
        let out = self.fc2.forward_ws(&a, ws);
        ws.give(a);
        out
    }

    fn backward_ws(&mut self, dy: &Tensor, ws: &mut Workspace) -> Tensor {
        let da = self.fc2.backward_ws(dy, ws);
        let dh = self.act.backward_ws(&da, ws);
        ws.give(da);
        let dx = self.fc1.backward_ws(&dh, ws);
        ws.give(dh);
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.fc1.params_mut();
        v.extend(self.fc2.params_mut());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{max_abs_diff, numerical_grad};

    fn sample_input() -> Tensor {
        init::normal(4, 6, 0.0, 1.0, 99)
    }

    /// Scalar loss used by the gradient checks: weighted sum of outputs.
    fn loss_weights(rows: usize, cols: usize) -> Tensor {
        init::normal(rows, cols, 0.0, 1.0, 123)
    }

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut l = Linear::new(6, 3, 7);
        l.b.value = Tensor::row_vector(vec![1.0, 2.0, 3.0]);
        let y = l.forward(&Tensor::zeros(2, 6));
        assert_eq!(y.shape(), (2, 3));
        assert_eq!(y.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn linear_input_grad_matches_numerical() {
        let mut l = Linear::new(6, 3, 7);
        let x = sample_input();
        let w = loss_weights(4, 3);
        let y = l.forward(&x);
        let dx = l.backward(&w);
        let _ = y;
        let mut probe_layer = l.clone();
        let numeric = numerical_grad(
            &x,
            |p| {
                let out = probe_layer.forward(p);
                out.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
            },
            1e-2,
        );
        assert!(max_abs_diff(&dx, &numeric) < 1e-2);
    }

    #[test]
    fn linear_weight_grad_matches_numerical() {
        let mut l = Linear::new(5, 2, 3);
        let x = init::normal(3, 5, 0.0, 1.0, 5);
        let w = loss_weights(3, 2);
        let _ = l.forward(&x);
        let _ = l.backward(&w);
        let analytic = l.w.grad.clone();
        let l0 = l.clone();
        let numeric = numerical_grad(
            &l.w.value,
            |probe_w| {
                let mut tmp = l0.clone();
                tmp.w.value = probe_w.clone();
                let out = tmp.forward(&x);
                out.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
            },
            1e-2,
        );
        assert!(max_abs_diff(&analytic, &numeric) < 1e-2);
    }

    #[test]
    fn layernorm_output_is_normalised() {
        let mut ln = LayerNorm::new(6);
        let y = ln.forward(&sample_input());
        for r in 0..y.rows() {
            let mean = y.row(r).iter().sum::<f32>() / 6.0;
            let var = y.row(r).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_input_grad_matches_numerical() {
        let mut ln = LayerNorm::new(6);
        ln.gamma.value = init::normal(1, 6, 1.0, 0.2, 4);
        ln.beta.value = init::normal(1, 6, 0.0, 0.2, 5);
        let x = sample_input();
        let w = loss_weights(4, 6);
        let _ = ln.forward(&x);
        let dx = ln.backward(&w);
        let mut probe = ln.clone();
        let numeric = numerical_grad(
            &x,
            |p| {
                let out = probe.forward(p);
                out.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
            },
            1e-2,
        );
        assert!(max_abs_diff(&dx, &numeric) < 2e-2);
    }

    #[test]
    fn gelu_matches_reference_points() {
        use crate::backend::scalar::gelu_scalar;
        // Reference values from the tanh approximation.
        assert!((gelu_scalar(0.0)).abs() < 1e-7);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_numerical() {
        let mut g = Gelu::new();
        let x = sample_input();
        let w = loss_weights(4, 6);
        let _ = g.forward(&x);
        let dx = g.backward(&w);
        let mut probe = Gelu::new();
        let numeric = numerical_grad(
            &x,
            |p| {
                let out = probe.forward(p);
                out.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
            },
            1e-3,
        );
        assert!(max_abs_diff(&dx, &numeric) < 1e-2);
    }

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Tensor::full(1, 4, 1.0);
        let dx = r.backward(&dy);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.training = false;
        let x = sample_input();
        assert_eq!(d.forward(&x).data(), x.data());
    }

    #[test]
    fn dropout_preserves_expected_value() {
        let mut d = Dropout::new(0.3, 42);
        let x = Tensor::full(100, 100, 1.0);
        let y = d.forward(&x);
        // E[y] = 1 with inverted dropout; the sample mean should be close.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Backward uses the same mask.
        let dy = Tensor::full(100, 100, 1.0);
        let dx = d.backward(&dy);
        assert_eq!(dx.data(), y.data());
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let mut e = Embedding::new(10, 4, 8);
        let out = e.forward_indices(&[3, 3, 7]);
        assert_eq!(out.shape(), (3, 4));
        assert_eq!(out.row(0), out.row(1));
        let dy = Tensor::full(3, 4, 1.0);
        e.backward_indices(&dy);
        // Row 3 got two contributions, row 7 one, everything else zero.
        assert_eq!(e.table.grad.row(3), &[2.0; 4]);
        assert_eq!(e.table.grad.row(7), &[1.0; 4]);
        assert_eq!(e.table.grad.row(0), &[0.0; 4]);
    }

    #[test]
    fn embedding_clamps_out_of_range() {
        let mut e = Embedding::new(4, 2, 8);
        let out = e.forward_indices(&[100]);
        assert_eq!(out.row(0), e.table.value.row(3));
    }

    #[test]
    fn feedforward_grad_matches_numerical() {
        let mut ff = FeedForward::new(6, 12, 21);
        let x = sample_input();
        let w = loss_weights(4, 6);
        let _ = ff.forward(&x);
        let dx = ff.backward(&w);
        let mut probe = ff.clone();
        let numeric = numerical_grad(
            &x,
            |p| {
                let out = probe.forward(p);
                out.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
            },
            1e-2,
        );
        assert!(max_abs_diff(&dx, &numeric) < 2e-2);
    }

    #[test]
    fn ws_path_matches_allocating_path_bitwise() {
        let x = sample_input();
        let dy = loss_weights(4, 6);
        let mut ws = Workspace::new();
        // Pre-dirty the arena so reuse (not fresh zeros) is exercised.
        let mut d = ws.take(4, 6);
        d.data_mut().fill(f32::NAN);
        ws.give(d);
        let mut a = FeedForward::new(6, 12, 77);
        let mut b = a.clone();
        let ya = a.forward(&x);
        let yb = b.forward_ws(&x, &mut ws);
        assert_eq!(ya.data(), yb.data());
        let dxa = a.backward(&dy);
        let dxb = b.backward_ws(&dy, &mut ws);
        assert_eq!(dxa.data(), dxb.data());
        assert_eq!(a.fc1.w.grad.data(), b.fc1.w.grad.data());
        assert_eq!(a.fc2.b.grad.data(), b.fc2.b.grad.data());
    }

    #[test]
    fn dropout_ws_path_draws_identical_masks() {
        let x = sample_input();
        let mut a = Dropout::new(0.4, 9);
        let mut b = Dropout::new(0.4, 9);
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let ya = a.forward(&x);
            let yb = b.forward_ws(&x, &mut ws);
            assert_eq!(ya.data(), yb.data());
            ws.give(yb);
        }
        assert_eq!(a.calls(), b.calls());
    }

    #[test]
    fn param_counts() {
        let mut ff = FeedForward::new(8, 32, 0);
        // fc1: 8*32 + 32, fc2: 32*8 + 8
        assert_eq!(ff.num_params(), 8 * 32 + 32 + 32 * 8 + 8);
    }
}
