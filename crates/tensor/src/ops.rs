//! Free-standing tensor operations.
//!
//! All operations allocate their output; in-place variants carry an `_inplace`
//! suffix. Matmuls are parallelised over output rows with rayon, matching the
//! data-parallel style recommended by the HPC guides for this project.

use crate::tensor::Tensor;
use torchgt_compat::par::prelude::*;

/// Threshold (in output elements) above which matmul rows are processed in
/// parallel. Tiny matrices are cheaper sequentially.
const PAR_THRESHOLD: usize = 16 * 1024;

/// `C = A · B`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    let bd = b.data();
    let kernel = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &bd[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(n).enumerate().for_each(kernel);
    } else {
        out.data_mut().chunks_mut(n).enumerate().for_each(kernel);
    }
    out
}

/// `C = A · Bᵀ` without materialising the transpose.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.cols(), "matmul_bt inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Tensor::zeros(m, n);
    let kernel = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        for (c, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(c);
            let mut acc = 0.0f32;
            for i in 0..k {
                acc += a_row[i] * b_row[i];
            }
            *o = acc;
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(n).enumerate().for_each(kernel);
    } else {
        out.data_mut().chunks_mut(n).enumerate().for_each(kernel);
    }
    out
}

/// `C = Aᵀ · B` without materialising the transpose.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows(), b.rows(), "matmul_at inner dimension mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    // Accumulate rank-1 updates; sequential over k, the inner loops are cheap
    // relative to the other matmuls in a transformer layer.
    for p in 0..k {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for (r, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out.data_mut()[r * n..(r + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Explicit transpose.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.shape();
    let mut out = Tensor::zeros(n, m);
    for r in 0..m {
        for c in 0..n {
            out.set(c, r, a.get(r, c));
        }
    }
    out
}

/// Element-wise `a + b`.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape());
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Tensor::from_vec(a.rows(), a.cols(), data)
}

/// Element-wise `a - b`.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape());
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x - y).collect();
    Tensor::from_vec(a.rows(), a.cols(), data)
}

/// Element-wise `a * b` (Hadamard product).
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape());
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x * y).collect();
    Tensor::from_vec(a.rows(), a.cols(), data)
}

/// `a += b` in place.
pub fn add_inplace(a: &mut Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += y;
    }
}

/// `a += s * b` in place (axpy).
pub fn axpy_inplace(a: &mut Tensor, s: f32, b: &Tensor) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += s * y;
    }
}

/// Scale by a constant.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    let data = a.data().iter().map(|x| x * s).collect();
    Tensor::from_vec(a.rows(), a.cols(), data)
}

/// Scale in place.
pub fn scale_inplace(a: &mut Tensor, s: f32) {
    a.data_mut().iter_mut().for_each(|x| *x *= s);
}

/// Broadcast-add a `1 × n` row vector to every row of `a`.
pub fn add_row_broadcast(a: &Tensor, row: &Tensor) -> Tensor {
    assert_eq!(row.rows(), 1);
    assert_eq!(row.cols(), a.cols());
    let mut out = a.clone();
    for r in 0..a.rows() {
        for (x, y) in out.row_mut(r).iter_mut().zip(row.data()) {
            *x += y;
        }
    }
    out
}

/// Row-wise numerically-stable softmax.
pub fn row_softmax(a: &Tensor) -> Tensor {
    let mut out = a.clone();
    let cols = a.cols();
    let apply = |row: &mut [f32]| {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    };
    if a.len() >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(cols).for_each(apply);
    } else {
        out.data_mut().chunks_mut(cols).for_each(apply);
    }
    out
}

/// Backward of row-wise softmax: given `y = softmax(x)` and `dL/dy`, returns
/// `dL/dx = y ⊙ (dy - rowsum(dy ⊙ y))`.
pub fn row_softmax_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(y.shape(), dy.shape());
    let mut out = Tensor::zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let yr = y.row(r);
        let dyr = dy.row(r);
        let dot: f32 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
        for c in 0..y.cols() {
            out.set(r, c, yr[c] * (dyr[c] - dot));
        }
    }
    out
}

/// Sum each column into a `1 × n` row vector (used for bias gradients).
pub fn col_sum(a: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(1, a.cols());
    for r in 0..a.rows() {
        for (o, v) in out.row_mut(0).iter_mut().zip(a.row(r)) {
            *o += v;
        }
    }
    out
}

/// Row-wise mean into an `m × 1` column.
pub fn row_mean(a: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), 1);
    let inv = 1.0 / a.cols() as f32;
    for r in 0..a.rows() {
        out.set(r, 0, a.row(r).iter().sum::<f32>() * inv);
    }
    out
}

/// Mean over rows into a `1 × n` row vector (mean pooling for graph-level
/// readout).
pub fn mean_rows(a: &Tensor) -> Tensor {
    let mut out = col_sum(a);
    if a.rows() > 0 {
        scale_inplace(&mut out, 1.0 / a.rows() as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_equals_matmul_of_transpose() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(4, 3, &(0..12).map(|v| v as f32 * 0.5).collect::<Vec<_>>());
        let direct = matmul_bt(&a, &b);
        let via_t = matmul(&a, &transpose(&b));
        assert_eq!(direct.data(), via_t.data());
    }

    #[test]
    fn matmul_at_equals_matmul_of_transpose() {
        let a = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        let direct = matmul_at(&a, &b);
        let via_t = matmul(&transpose(&a), &b);
        assert_eq!(direct.data(), via_t.data());
    }

    #[test]
    fn large_matmul_parallel_path_matches_sequential() {
        // Exceed PAR_THRESHOLD to exercise the rayon path.
        let m = 70;
        let k = 40;
        let n = 30;
        let a = Tensor::from_vec(m, k, (0..m * k).map(|v| (v % 7) as f32 - 3.0).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|v| (v % 5) as f32 - 2.0).collect());
        let c = matmul(&a, &b);
        // Spot-check a few entries against a naive loop.
        for &(r, cidx) in &[(0usize, 0usize), (m - 1, n - 1), (m / 2, n / 2)] {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.get(r, p) * b.get(p, cidx);
            }
            assert!((c.get(r, cidx) - acc).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(2, 3, &[1., 2., 3., -1., 0., 1.]);
        let s = row_softmax(&a);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: bigger logits get bigger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[1001., 1002., 1003.]);
        let sa = row_softmax(&a);
        let sb = row_softmax(&b);
        for i in 0..3 {
            assert!((sa.data()[i] - sb.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_numerical() {
        let x = t(2, 4, &[0.5, -0.3, 0.8, 0.1, -1.0, 0.2, 0.0, 0.7]);
        let upstream = t(2, 4, &[0.1, 0.2, -0.3, 0.4, 0.5, -0.1, 0.2, 0.05]);
        let y = row_softmax(&x);
        let analytic = row_softmax_backward(&y, &upstream);
        let numeric = crate::gradcheck::numerical_grad(
            &x,
            |probe| {
                let s = row_softmax(probe);
                s.data().iter().zip(upstream.data()).map(|(a, b)| a * b).sum()
            },
            1e-3,
        );
        assert!(crate::gradcheck::max_abs_diff(&analytic, &numeric) < 1e-3);
    }

    #[test]
    fn elementwise_and_broadcast_ops() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let b = t(2, 2, &[5., 6., 7., 8.]);
        assert_eq!(add(&a, &b).data(), &[6., 8., 10., 12.]);
        assert_eq!(sub(&b, &a).data(), &[4., 4., 4., 4.]);
        assert_eq!(mul(&a, &b).data(), &[5., 12., 21., 32.]);
        let row = Tensor::row_vector(vec![10., 20.]);
        assert_eq!(add_row_broadcast(&a, &row).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn reductions_by_axis() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(col_sum(&a).data(), &[5., 7., 9.]);
        assert_eq!(row_mean(&a).data(), &[2., 5.]);
        assert_eq!(mean_rows(&a).data(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(1, 3, &[1., 1., 1.]);
        let b = t(1, 3, &[1., 2., 3.]);
        axpy_inplace(&mut a, 2.0, &b);
        assert_eq!(a.data(), &[3., 5., 7.]);
    }
}
