//! Free-standing tensor operations.
//!
//! Every operation comes in two forms: an `_into` kernel that writes a
//! caller-provided output tensor (the allocation-free hot path, fed by
//! [`crate::workspace::Workspace`] buffers and accepting borrowed
//! [`MatRef`] views), and a thin allocating wrapper with the original name
//! that zero-allocates an output and delegates. In-place variants carry an
//! `_inplace` suffix. Matmuls are parallelised over output rows, matching
//! the data-parallel style recommended by the HPC guides for this project.
//!
//! The `_into` kernels fully define the output (accumulating kernels zero
//! their rows first), so dirty recycled buffers are safe, and they do not
//! skip zero multiplicands — `0 · NaN` propagates as NaN instead of being
//! silently swallowed.

use crate::backend::{self, Backend};
use crate::tensor::Tensor;
use crate::view::MatRef;
use torchgt_compat::par::prelude::*;

/// Threshold (in output elements) above which matmul rows are processed in
/// parallel. Tiny matrices are cheaper sequentially.
const PAR_THRESHOLD: usize = 16 * 1024;

/// `out = A · B`. Fully overwrites `out`, which must be `a.rows × b.cols`.
pub fn matmul_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    matmul_into_with(backend::active(), a, b, out);
}

/// [`matmul_into`] on an explicit [`Backend`] (parity harness entry point).
///
/// Accumulates over `p` in the same broadcast-axpy order on every backend
/// (no FMA), so the result is **bit-identical** across backends.
pub fn matmul_into_with(be: Backend, a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(out.shape(), (m, n), "matmul_into output shape mismatch");
    let kernel = |(r, out_row): (usize, &mut [f32])| {
        out_row.fill(0.0);
        let a_row = a.row(r);
        for (p, &av) in a_row.iter().enumerate() {
            be.axpy(out_row, av, b.row(p));
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(n.max(1)).enumerate().for_each(kernel);
    } else {
        out.data_mut().chunks_mut(n.max(1)).enumerate().for_each(kernel);
    }
}

/// `C = A · B`.
pub fn matmul(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut out);
    out
}

/// `out = A · Bᵀ` without materialising the transpose. Fully overwrites
/// `out`, which must be `a.rows × b.rows`.
pub fn matmul_bt_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    matmul_bt_into_with(backend::active(), a, b, out);
}

/// [`matmul_bt_into`] on an explicit [`Backend`] (parity harness entry
/// point).
///
/// Each output element is a length-`k` dot product; SIMD backends reduce it
/// with multiple vector accumulators + FMA, so parity with scalar is
/// **ULP-bounded**, not bit-exact (see DESIGN.md for the bound).
pub fn matmul_bt_into_with(be: Backend, a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.cols(), b.cols(), "matmul_bt inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    assert_eq!(out.shape(), (m, n), "matmul_bt_into output shape mismatch");
    let kernel = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        for (c, o) in out_row.iter_mut().enumerate() {
            *o = be.dot(a_row, b.row(c));
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(n.max(1)).enumerate().for_each(kernel);
    } else {
        out.data_mut().chunks_mut(n.max(1)).enumerate().for_each(kernel);
    }
}

/// `C = A · Bᵀ` without materialising the transpose.
pub fn matmul_bt(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.rows());
    matmul_bt_into(a, b, &mut out);
    out
}

/// `out = Aᵀ · B` without materialising the transpose. Fully overwrites
/// `out`, which must be `a.cols × b.cols`.
///
/// Each output row accumulates its `k` contributions in ascending-`p` order
/// (the same order the rank-1 formulation used), so results are bit-stable
/// while the rows parallelise like the other two matmuls.
pub fn matmul_at_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    matmul_at_into_with(backend::active(), a, b, out);
}

/// [`matmul_at_into`] on an explicit [`Backend`] (parity harness entry
/// point). Broadcast-axpy accumulation in ascending-`p` order on every
/// backend (no FMA) — **bit-identical** across backends.
pub fn matmul_at_into_with(be: Backend, a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.rows(), b.rows(), "matmul_at inner dimension mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    assert_eq!(out.shape(), (m, n), "matmul_at_into output shape mismatch");
    let kernel = |(r, out_row): (usize, &mut [f32])| {
        out_row.fill(0.0);
        for p in 0..k {
            be.axpy(out_row, a.row(p)[r], b.row(p));
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(n.max(1)).enumerate().for_each(kernel);
    } else {
        out.data_mut().chunks_mut(n.max(1)).enumerate().for_each(kernel);
    }
}

/// `C = Aᵀ · B` without materialising the transpose.
pub fn matmul_at(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.cols(), b.cols());
    matmul_at_into(a, b, &mut out);
    out
}

/// Explicit transpose.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.shape();
    let mut out = Tensor::zeros(n, m);
    for r in 0..m {
        for c in 0..n {
            out.set(c, r, a.get(r, c));
        }
    }
    out
}

/// `out = a + b` element-wise.
pub fn add_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    add_into_with(backend::active(), a, b, out);
}

/// [`add_into`] on an explicit [`Backend`] — bit-identical across backends.
pub fn add_into_with(be: Backend, a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.shape(), b.shape());
    assert_eq!(out.shape(), a.shape(), "add_into output shape mismatch");
    for r in 0..a.rows() {
        be.add(a.row(r), b.row(r), out.row_mut(r));
    }
}

/// Element-wise `a + b`.
pub fn add(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), a.cols());
    add_into(a, b, &mut out);
    out
}

/// `out = a - b` element-wise.
pub fn sub_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    sub_into_with(backend::active(), a, b, out);
}

/// [`sub_into`] on an explicit [`Backend`] — bit-identical across backends.
pub fn sub_into_with(be: Backend, a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.shape(), b.shape());
    assert_eq!(out.shape(), a.shape(), "sub_into output shape mismatch");
    for r in 0..a.rows() {
        be.sub(a.row(r), b.row(r), out.row_mut(r));
    }
}

/// Element-wise `a - b`.
pub fn sub(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), a.cols());
    sub_into(a, b, &mut out);
    out
}

/// `out = a ⊙ b` element-wise.
pub fn mul_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    mul_into_with(backend::active(), a, b, out);
}

/// [`mul_into`] on an explicit [`Backend`] — bit-identical across backends.
pub fn mul_into_with(be: Backend, a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.shape(), b.shape());
    assert_eq!(out.shape(), a.shape(), "mul_into output shape mismatch");
    for r in 0..a.rows() {
        be.mul(a.row(r), b.row(r), out.row_mut(r));
    }
}

/// Element-wise `a * b` (Hadamard product).
pub fn mul(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), a.cols());
    mul_into(a, b, &mut out);
    out
}

/// `a += b` in place. `b` may be a borrowed view.
pub fn add_inplace(a: &mut Tensor, b: &impl MatRef) {
    assert_eq!(a.shape(), b.shape());
    let be = backend::active();
    for r in 0..b.rows() {
        be.add_assign(a.row_mut(r), b.row(r));
    }
}

/// `a += s * b` in place (axpy).
pub fn axpy_inplace(a: &mut Tensor, s: f32, b: &impl MatRef) {
    assert_eq!(a.shape(), b.shape());
    let be = backend::active();
    for r in 0..b.rows() {
        be.axpy(a.row_mut(r), s, b.row(r));
    }
}

/// `out = s * a`.
pub fn scale_into(a: &impl MatRef, s: f32, out: &mut Tensor) {
    scale_into_with(backend::active(), a, s, out);
}

/// [`scale_into`] on an explicit [`Backend`] — bit-identical across
/// backends.
pub fn scale_into_with(be: Backend, a: &impl MatRef, s: f32, out: &mut Tensor) {
    assert_eq!(out.shape(), a.shape(), "scale_into output shape mismatch");
    for r in 0..a.rows() {
        be.scale(a.row(r), s, out.row_mut(r));
    }
}

/// Scale by a constant.
pub fn scale(a: &impl MatRef, s: f32) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), a.cols());
    scale_into(a, s, &mut out);
    out
}

/// Scale in place.
pub fn scale_inplace(a: &mut Tensor, s: f32) {
    backend::active().scale_assign(a.data_mut(), s);
}

/// Copy `a` into `out` (shapes must match).
pub fn copy_into(a: &impl MatRef, out: &mut Tensor) {
    assert_eq!(out.shape(), a.shape(), "copy_into output shape mismatch");
    for r in 0..a.rows() {
        out.row_mut(r).copy_from_slice(a.row(r));
    }
}

/// Broadcast-add a `1 × n` row vector to every row of `a`, in place.
pub fn add_row_broadcast_inplace(a: &mut Tensor, row: &Tensor) {
    assert_eq!(row.rows(), 1);
    assert_eq!(row.cols(), a.cols());
    let be = backend::active();
    for r in 0..a.rows() {
        be.add_assign(a.row_mut(r), row.data());
    }
}

/// Broadcast-add a `1 × n` row vector to every row of `a`.
pub fn add_row_broadcast(a: &Tensor, row: &Tensor) -> Tensor {
    let mut out = a.clone();
    add_row_broadcast_inplace(&mut out, row);
    out
}

/// The per-row numerically-stable softmax update shared by all softmax
/// entry points: subtract the max, exponentiate, normalise.
///
/// Non-finite rows get defined semantics on every backend instead of the
/// historic NaN garbage (`+∞ − +∞ = NaN` used to poison the row and skip
/// normalisation):
///
/// * any NaN entry → the whole row is NaN (gradient poison propagates);
/// * max is `+∞` → probability mass is split uniformly over the `+∞`
///   entries, everything else gets `0` (the limit of the finite case);
/// * max is `-∞` (all entries `-∞`, e.g. a fully masked row) → all zeros;
/// * `-∞` entries under a finite max → `exp(-∞) = 0`, the masked-logit
///   convention.
pub(crate) fn softmax_row_with(be: Backend, row: &mut [f32]) {
    let max = be.max_ignore_nan(row);
    if max == f32::INFINITY || max == f32::NEG_INFINITY {
        // Cold paths: ±Inf rows are rare, handle them scalar.
        if row.iter().any(|v| v.is_nan()) {
            row.fill(f32::NAN);
        } else if max == f32::INFINITY {
            let count = row.iter().filter(|v| **v == f32::INFINITY).count() as f32;
            for v in row.iter_mut() {
                *v = if *v == f32::INFINITY { 1.0 / count } else { 0.0 };
            }
        } else {
            row.fill(0.0);
        }
        return;
    }
    let sum = be.exp_minus_max_sum(row, max);
    if sum.is_nan() {
        // A NaN entry under a finite max: exp kept it NaN, define the row.
        row.fill(f32::NAN);
    } else if sum > 0.0 {
        be.div_assign(row, sum);
    }
}

/// Row-wise softmax of `a` written into `out` (same shape).
pub fn row_softmax_into(a: &impl MatRef, out: &mut Tensor) {
    row_softmax_into_with(backend::active(), a, out);
}

/// [`row_softmax_into`] on an explicit [`Backend`] (parity harness entry
/// point). The max/normalise steps are exact; the exponentiation uses a
/// polynomial on SIMD backends, so parity with scalar is **ULP-bounded**.
pub fn row_softmax_into_with(be: Backend, a: &impl MatRef, out: &mut Tensor) {
    assert_eq!(out.shape(), a.shape(), "row_softmax_into output shape mismatch");
    let (rows, cols) = a.shape();
    let apply = |(r, row): (usize, &mut [f32])| {
        row.copy_from_slice(a.row(r));
        softmax_row_with(be, row);
    };
    if rows * cols >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(cols.max(1)).enumerate().for_each(apply);
    } else {
        out.data_mut().chunks_mut(cols.max(1)).enumerate().for_each(apply);
    }
}

/// Row-wise softmax in place.
pub fn row_softmax_inplace(a: &mut Tensor) {
    let be = backend::active();
    let cols = a.cols();
    if a.len() >= PAR_THRESHOLD {
        a.data_mut().par_chunks_mut(cols.max(1)).for_each(|row| softmax_row_with(be, row));
    } else {
        a.data_mut().chunks_mut(cols.max(1)).for_each(|row| softmax_row_with(be, row));
    }
}

/// Row-wise numerically-stable softmax.
pub fn row_softmax(a: &Tensor) -> Tensor {
    let mut out = a.clone();
    row_softmax_inplace(&mut out);
    out
}

/// Backward of row-wise softmax written into `out`: given `y = softmax(x)`
/// and `dL/dy`, computes `dL/dx = y ⊙ (dy - rowsum(dy ⊙ y))`.
pub fn row_softmax_backward_into(y: &impl MatRef, dy: &impl MatRef, out: &mut Tensor) {
    assert_eq!(y.shape(), dy.shape());
    assert_eq!(out.shape(), y.shape(), "row_softmax_backward_into shape mismatch");
    let be = backend::active();
    for r in 0..y.rows() {
        let yr = y.row(r);
        let dyr = dy.row(r);
        let dot = be.dot(yr, dyr);
        for (c, o) in out.row_mut(r).iter_mut().enumerate() {
            *o = yr[c] * (dyr[c] - dot);
        }
    }
}

/// Backward of row-wise softmax: given `y = softmax(x)` and `dL/dy`, returns
/// `dL/dx = y ⊙ (dy - rowsum(dy ⊙ y))`.
pub fn row_softmax_backward(y: &impl MatRef, dy: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(y.rows(), y.cols());
    row_softmax_backward_into(y, dy, &mut out);
    out
}

/// Sum each column of `a` into the `1 × n` row vector `out`.
pub fn col_sum_into(a: &impl MatRef, out: &mut Tensor) {
    assert_eq!(out.shape(), (1, a.cols()), "col_sum_into output shape mismatch");
    out.fill_zero();
    let be = backend::active();
    for r in 0..a.rows() {
        be.add_assign(out.row_mut(0), a.row(r));
    }
}

/// Sum each column into a `1 × n` row vector (used for bias gradients).
pub fn col_sum(a: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(1, a.cols());
    col_sum_into(a, &mut out);
    out
}

/// Row-wise mean into an `m × 1` column.
pub fn row_mean(a: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), 1);
    let inv = 1.0 / a.cols() as f32;
    for r in 0..a.rows() {
        out.set(r, 0, a.row(r).iter().sum::<f32>() * inv);
    }
    out
}

/// Mean over rows of `a` written into the `1 × n` row vector `out`.
pub fn mean_rows_into(a: &impl MatRef, out: &mut Tensor) {
    col_sum_into(a, out);
    if a.rows() > 0 {
        scale_inplace(out, 1.0 / a.rows() as f32);
    }
}

/// Mean over rows into a `1 × n` row vector (mean pooling for graph-level
/// readout).
pub fn mean_rows(a: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(1, a.cols());
    mean_rows_into(a, &mut out);
    out
}

/// GELU (tanh approximation) written into `out` (same shape). The last
/// allocating straggler of the block forward path, now an `_into` kernel.
pub fn gelu_into(x: &impl MatRef, out: &mut Tensor) {
    gelu_into_with(backend::active(), x, out);
}

/// [`gelu_into`] on an explicit [`Backend`] (parity harness entry point).
/// SIMD backends use a polynomial `tanh`, so parity is **ULP-bounded**.
pub fn gelu_into_with(be: Backend, x: &impl MatRef, out: &mut Tensor) {
    assert_eq!(out.shape(), x.shape(), "gelu_into output shape mismatch");
    for r in 0..x.rows() {
        be.gelu(x.row(r), out.row_mut(r));
    }
}

/// GELU backward: `out = gelu'(x) ⊙ dy` (same shapes).
pub fn gelu_backward_into(x: &impl MatRef, dy: &impl MatRef, out: &mut Tensor) {
    gelu_backward_into_with(backend::active(), x, dy, out);
}

/// [`gelu_backward_into`] on an explicit [`Backend`].
pub fn gelu_backward_into_with(be: Backend, x: &impl MatRef, dy: &impl MatRef, out: &mut Tensor) {
    assert_eq!(x.shape(), dy.shape());
    assert_eq!(out.shape(), x.shape(), "gelu_backward_into output shape mismatch");
    for r in 0..x.rows() {
        be.gelu_grad(x.row(r), dy.row(r), out.row_mut(r));
    }
}

/// Layer normalisation over the last dimension written into `out`:
/// `out = (x - μ) / √(σ² + eps) · γ + β` with `γ`, `β` as `1 × n` rows.
pub fn layer_norm_into(x: &impl MatRef, gamma: &Tensor, beta: &Tensor, eps: f32, out: &mut Tensor) {
    layer_norm_into_with(backend::active(), x, gamma, beta, eps, out);
}

/// [`layer_norm_into`] on an explicit [`Backend`]. The normalise/affine
/// steps are bit-exact; the mean/variance reductions are **ULP-bounded**
/// on SIMD backends.
pub fn layer_norm_into_with(
    be: Backend,
    x: &impl MatRef,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    out: &mut Tensor,
) {
    let (rows, cols) = x.shape();
    assert_eq!(gamma.shape(), (1, cols), "layer_norm gamma shape mismatch");
    assert_eq!(beta.shape(), (1, cols), "layer_norm beta shape mismatch");
    assert_eq!(out.shape(), (rows, cols), "layer_norm_into output shape mismatch");
    for r in 0..rows {
        let row = x.row(r);
        let mean = be.sum(row) / cols as f32;
        let var = be.sum_sq_diff(row, mean) / cols as f32;
        let inv_std = 1.0 / (var + eps).sqrt();
        let out_row = out.row_mut(r);
        be.normalize(row, mean, inv_std, out_row);
        be.mul_assign(out_row, gamma.row(0));
        be.add_assign(out_row, beta.row(0));
    }
}

/// [`layer_norm_into`] that additionally records the normalised activations
/// `x̂` and per-row `1/σ` a training forward pass must cache for backward.
/// Fully defines `out` and `xhat`; `inv_std` is cleared and refilled.
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_stats_into_with(
    be: Backend,
    x: &impl MatRef,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    out: &mut Tensor,
    xhat: &mut Tensor,
    inv_std: &mut Vec<f32>,
) {
    let (rows, cols) = x.shape();
    assert_eq!(gamma.shape(), (1, cols), "layer_norm gamma shape mismatch");
    assert_eq!(beta.shape(), (1, cols), "layer_norm beta shape mismatch");
    assert_eq!(out.shape(), (rows, cols), "layer_norm output shape mismatch");
    assert_eq!(xhat.shape(), (rows, cols), "layer_norm xhat shape mismatch");
    inv_std.clear();
    inv_std.reserve(rows);
    for r in 0..rows {
        let row = x.row(r);
        let mean = be.sum(row) / cols as f32;
        let var = be.sum_sq_diff(row, mean) / cols as f32;
        let istd = 1.0 / (var + eps).sqrt();
        inv_std.push(istd);
        let xhat_row = xhat.row_mut(r);
        be.normalize(row, mean, istd, xhat_row);
        // out = x̂·γ + β with the same mul-then-add roundings as
        // `layer_norm_into`'s in-place sequence.
        let out_row = out.row_mut(r);
        be.mul(xhat.row(r), gamma.row(0), out_row);
        be.add_assign(out_row, beta.row(0));
    }
}

/// LayerNorm backward from cached `x̂` and `1/σ`: writes the input gradient
/// into `dx` and **fully defines** `dgamma`/`dbeta` (`1 × n` each) with the
/// parameter gradients of this call.
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_backward_into(
    xhat: &Tensor,
    inv_std: &[f32],
    gamma: &Tensor,
    dy: &impl MatRef,
    dx: &mut Tensor,
    dgamma: &mut Tensor,
    dbeta: &mut Tensor,
) {
    layer_norm_backward_into_with(backend::active(), xhat, inv_std, gamma, dy, dx, dgamma, dbeta);
}

/// [`layer_norm_backward_into`] on an explicit [`Backend`]. The per-row
/// sums are dot reductions (**ULP-bounded** on SIMD); the combine and the
/// parameter-gradient accumulation are bit-exact given those sums.
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_backward_into_with(
    be: Backend,
    xhat: &Tensor,
    inv_std: &[f32],
    gamma: &Tensor,
    dy: &impl MatRef,
    dx: &mut Tensor,
    dgamma: &mut Tensor,
    dbeta: &mut Tensor,
) {
    let (rows, cols) = dy.shape();
    assert_eq!(xhat.shape(), (rows, cols));
    assert_eq!(inv_std.len(), rows, "layer_norm inv_std length mismatch");
    assert_eq!(gamma.shape(), (1, cols));
    assert_eq!(dx.shape(), (rows, cols), "layer_norm dx shape mismatch");
    assert_eq!(dgamma.shape(), (1, cols), "layer_norm dgamma shape mismatch");
    assert_eq!(dbeta.shape(), (1, cols), "layer_norm dbeta shape mismatch");
    dgamma.fill_zero();
    dbeta.fill_zero();
    let g = gamma.row(0);
    for r in 0..rows {
        let dyr = dy.row(r);
        let xr = xhat.row(r);
        be.mul_acc(dgamma.row_mut(0), dyr, xr);
        be.add_assign(dbeta.row_mut(0), dyr);
        let sum_dxhat = be.dot(dyr, g);
        let sum_dxhat_xhat = be.dot3(dyr, g, xr);
        be.ln_grad_combine(dyr, g, xr, sum_dxhat, sum_dxhat_xhat, inv_std[r], dx.row_mut(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    /// A dirty buffer of the given shape — `_into` kernels must fully
    /// define their output regardless of its prior contents.
    fn dirty(rows: usize, cols: usize) -> Tensor {
        Tensor::full(rows, cols, f32::NAN)
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_equals_matmul_of_transpose() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(4, 3, &(0..12).map(|v| v as f32 * 0.5).collect::<Vec<_>>());
        let direct = matmul_bt(&a, &b);
        let via_t = matmul(&a, &transpose(&b));
        assert_eq!(direct.data(), via_t.data());
    }

    #[test]
    fn matmul_at_equals_matmul_of_transpose() {
        let a = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        let direct = matmul_at(&a, &b);
        let via_t = matmul(&transpose(&a), &b);
        assert_eq!(direct.data(), via_t.data());
    }

    #[test]
    fn large_matmul_parallel_path_matches_sequential() {
        // Exceed PAR_THRESHOLD to exercise the parallel path.
        let m = 70;
        let k = 40;
        let n = 30;
        let a = Tensor::from_vec(m, k, (0..m * k).map(|v| (v % 7) as f32 - 3.0).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|v| (v % 5) as f32 - 2.0).collect());
        let c = matmul(&a, &b);
        // Spot-check a few entries against a naive loop.
        for &(r, cidx) in &[(0usize, 0usize), (m - 1, n - 1), (m / 2, n / 2)] {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.get(r, p) * b.get(p, cidx);
            }
            assert!((c.get(r, cidx) - acc).abs() < 1e-4);
        }
    }

    #[test]
    fn large_matmul_at_parallel_path_matches_transpose() {
        // m * n * k above PAR_THRESHOLD exercises the new parallel path.
        let k = 64;
        let m = 32;
        let n = 24;
        let a = Tensor::from_vec(k, m, (0..k * m).map(|v| (v % 11) as f32 - 5.0).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|v| (v % 7) as f32 - 3.0).collect());
        assert_eq!(matmul_at(&a, &b).data(), matmul(&transpose(&a), &b).data());
    }

    #[test]
    fn matmuls_propagate_nan_through_zero_multiplicands() {
        // A zero in A must not mask a NaN in B: 0 · NaN = NaN.
        let a = t(1, 2, &[0.0, 1.0]);
        let b = t(2, 2, &[f32::NAN, 2.0, 3.0, 4.0]);
        assert!(matmul(&a, &b).get(0, 0).is_nan());
        let at = t(2, 1, &[0.0, 1.0]);
        let bn = t(2, 2, &[f32::NAN, 2.0, 3.0, 4.0]);
        assert!(matmul_at(&at, &bn).get(0, 0).is_nan());
        let abt = t(1, 2, &[0.0, 1.0]);
        let bbt = t(1, 2, &[f32::NAN, 0.0]);
        assert!(matmul_bt(&abt, &bbt).get(0, 0).is_nan());
    }

    #[test]
    fn into_kernels_overwrite_dirty_buffers() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let mut out = dirty(2, 2);
        matmul_into(&a, &b, &mut out);
        assert_eq!(out.data(), matmul(&a, &b).data());
        let mut out = dirty(2, 3);
        matmul_bt_into(&a, &t(3, 3, &(0..9).map(|v| v as f32).collect::<Vec<_>>()), &mut out);
        assert_eq!(out.data(), matmul_bt(&a, &t(3, 3, &(0..9).map(|v| v as f32).collect::<Vec<_>>())).data());
        let mut out = dirty(1, 3);
        col_sum_into(&a, &mut out);
        assert_eq!(out.data(), col_sum(&a).data());
        let mut out = dirty(1, 3);
        mean_rows_into(&a, &mut out);
        assert_eq!(out.data(), mean_rows(&a).data());
        let mut out = dirty(2, 3);
        row_softmax_into(&a, &mut out);
        assert_eq!(out.data(), row_softmax(&a).data());
    }

    #[test]
    fn views_feed_matmul_kernels() {
        // Multiplying a column block through a view must equal slicing it out.
        let packed = Tensor::from_vec(3, 6, (0..18).map(|v| v as f32 * 0.25).collect());
        let w = Tensor::from_vec(2, 4, (0..8).map(|v| v as f32 - 3.0).collect());
        let view = packed.view_cols(2, 4);
        let copy = packed.slice_cols(2, 4);
        assert_eq!(matmul(&view, &w).data(), matmul(&copy, &w).data());
        assert_eq!(matmul_bt(&view, &packed.view_cols(4, 6)).data(),
                   matmul_bt(&copy, &packed.slice_cols(4, 6)).data());
        assert_eq!(matmul_at(&view, &packed.view_cols(0, 2)).data(),
                   matmul_at(&copy, &packed.slice_cols(0, 2)).data());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(2, 3, &[1., 2., 3., -1., 0., 1.]);
        let s = row_softmax(&a);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: bigger logits get bigger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[1001., 1002., 1003.]);
        let sa = row_softmax(&a);
        let sb = row_softmax(&b);
        for i in 0..3 {
            assert!((sa.data()[i] - sb.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_numerical() {
        let x = t(2, 4, &[0.5, -0.3, 0.8, 0.1, -1.0, 0.2, 0.0, 0.7]);
        let upstream = t(2, 4, &[0.1, 0.2, -0.3, 0.4, 0.5, -0.1, 0.2, 0.05]);
        let y = row_softmax(&x);
        let analytic = row_softmax_backward(&y, &upstream);
        let numeric = crate::gradcheck::numerical_grad(
            &x,
            |probe| {
                let s = row_softmax(probe);
                s.data().iter().zip(upstream.data()).map(|(a, b)| a * b).sum()
            },
            1e-3,
        );
        assert!(crate::gradcheck::max_abs_diff(&analytic, &numeric) < 1e-3);
    }

    #[test]
    fn elementwise_and_broadcast_ops() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let b = t(2, 2, &[5., 6., 7., 8.]);
        assert_eq!(add(&a, &b).data(), &[6., 8., 10., 12.]);
        assert_eq!(sub(&b, &a).data(), &[4., 4., 4., 4.]);
        assert_eq!(mul(&a, &b).data(), &[5., 12., 21., 32.]);
        let row = Tensor::row_vector(vec![10., 20.]);
        assert_eq!(add_row_broadcast(&a, &row).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn reductions_by_axis() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(col_sum(&a).data(), &[5., 7., 9.]);
        assert_eq!(row_mean(&a).data(), &[2., 5.]);
        assert_eq!(mean_rows(&a).data(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(1, 3, &[1., 1., 1.]);
        let b = t(1, 3, &[1., 2., 3.]);
        axpy_inplace(&mut a, 2.0, &b);
        assert_eq!(a.data(), &[3., 5., 7.]);
    }

    /// Regression for the poisoned-logit bug: a `+∞` entry used to turn the
    /// whole row into NaN garbage (`exp(+∞ − +∞) = NaN` skipped the
    /// normalisation). Now ±Inf rows have defined limits on every backend.
    #[test]
    fn softmax_poisoned_logit_rows_are_defined() {
        for be in crate::backend::supported() {
            let a = t(
                6,
                3,
                &[
                    1.0, f32::INFINITY, 3.0, // one +inf entry takes all mass
                    f32::INFINITY, 0.0, f32::INFINITY, // mass split over +infs
                    f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY, // fully masked
                    f32::NEG_INFINITY, 2.0, 2.0, // -inf = masked logit
                    f32::NAN, 1.0, 2.0, // NaN poison propagates
                    300.0, 400.0, 500.0, // huge-but-finite stays stable
                ],
            );
            let mut s = dirty(6, 3);
            row_softmax_into_with(be, &a, &mut s);
            let n = be.name();
            assert_eq!(s.row(0), &[0.0, 1.0, 0.0], "{n}");
            assert_eq!(s.row(1), &[0.5, 0.0, 0.5], "{n}");
            assert_eq!(s.row(2), &[0.0, 0.0, 0.0], "{n}");
            assert_eq!(s.get(3, 0), 0.0, "{n}");
            assert!((s.get(3, 1) - 0.5).abs() < 1e-6 && (s.get(3, 2) - 0.5).abs() < 1e-6, "{n}");
            assert!(s.row(4).iter().all(|v| v.is_nan()), "{n}: {:?}", s.row(4));
            let sum: f32 = s.row(5).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "{n}: {:?}", s.row(5));
            assert!((s.get(5, 2) - 1.0).abs() < 1e-6, "{n}");
        }
    }

    #[test]
    fn gelu_into_matches_pointwise_reference() {
        let x = t(2, 3, &[-2.0, -0.5, 0.0, 0.5, 1.0, 3.0]);
        let mut out = dirty(2, 3);
        gelu_into(&x, &mut out);
        assert!((out.get(0, 2)).abs() < 1e-7);
        assert!((out.get(1, 1) - 0.8412).abs() < 1e-3);
        let dy = t(2, 3, &[1.0; 6]);
        let mut grad = dirty(2, 3);
        gelu_backward_into(&x, &dy, &mut grad);
        // gelu'(0) = 0.5 for the tanh approximation.
        assert!((grad.get(0, 2) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_into_normalises_and_applies_affine() {
        let x = t(2, 4, &[1.0, 2.0, 3.0, 4.0, -1.0, 0.5, 2.0, 8.0]);
        let gamma = Tensor::row_vector(vec![2.0, 2.0, 2.0, 2.0]);
        let beta = Tensor::row_vector(vec![1.0, 1.0, 1.0, 1.0]);
        let mut out = dirty(2, 4);
        layer_norm_into(&x, &gamma, &beta, 1e-5, &mut out);
        for r in 0..2 {
            // Undo the affine: mean 0, variance ~1.
            let m = out.row(r).iter().map(|v| (v - 1.0) / 2.0).sum::<f32>() / 4.0;
            let var = out.row(r).iter().map(|v| ((v - 1.0) / 2.0 - m).powi(2)).sum::<f32>() / 4.0;
            assert!(m.abs() < 1e-5, "row {r} mean {m}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_stats_and_backward_kernels_fully_define_outputs() {
        let be = crate::backend::active();
        let x = t(3, 4, &[0.5, -1.0, 2.0, 0.0, 1.0, 1.5, -0.5, 3.0, -2.0, 0.0, 0.25, 1.0]);
        let gamma = Tensor::row_vector(vec![1.5, 0.5, -1.0, 2.0]);
        let beta = Tensor::row_vector(vec![0.1, -0.2, 0.3, 0.0]);
        let mut out = dirty(3, 4);
        let mut xhat = dirty(3, 4);
        let mut inv_std = Vec::new();
        layer_norm_stats_into_with(be, &x, &gamma, &beta, 1e-5, &mut out, &mut xhat, &mut inv_std);
        let mut plain = dirty(3, 4);
        layer_norm_into(&x, &gamma, &beta, 1e-5, &mut plain);
        assert_eq!(out.data(), plain.data(), "stats and plain forward must agree bitwise");
        let dy = t(3, 4, &[0.3, -0.1, 0.7, 0.2, -0.4, 0.6, 0.1, -0.2, 0.05, 0.9, -0.3, 0.4]);
        let mut dx = dirty(3, 4);
        let mut dgamma = dirty(1, 4);
        let mut dbeta = dirty(1, 4);
        layer_norm_backward_into(&xhat, &inv_std, &gamma, &dy, &mut dx, &mut dgamma, &mut dbeta);
        assert!(dx.data().iter().all(|v| v.is_finite()));
        // dbeta is the column sum of dy.
        let cs = col_sum(&dy);
        assert_eq!(dbeta.data(), cs.data());
    }
}
