//! Free-standing tensor operations.
//!
//! Every operation comes in two forms: an `_into` kernel that writes a
//! caller-provided output tensor (the allocation-free hot path, fed by
//! [`crate::workspace::Workspace`] buffers and accepting borrowed
//! [`MatRef`] views), and a thin allocating wrapper with the original name
//! that zero-allocates an output and delegates. In-place variants carry an
//! `_inplace` suffix. Matmuls are parallelised over output rows, matching
//! the data-parallel style recommended by the HPC guides for this project.
//!
//! The `_into` kernels fully define the output (accumulating kernels zero
//! their rows first), so dirty recycled buffers are safe, and they do not
//! skip zero multiplicands — `0 · NaN` propagates as NaN instead of being
//! silently swallowed.

use crate::tensor::Tensor;
use crate::view::MatRef;
use torchgt_compat::par::prelude::*;

/// Threshold (in output elements) above which matmul rows are processed in
/// parallel. Tiny matrices are cheaper sequentially.
const PAR_THRESHOLD: usize = 16 * 1024;

/// `out = A · B`. Fully overwrites `out`, which must be `a.rows × b.cols`.
pub fn matmul_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(out.shape(), (m, n), "matmul_into output shape mismatch");
    let kernel = |(r, out_row): (usize, &mut [f32])| {
        out_row.fill(0.0);
        let a_row = a.row(r);
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = b.row(p);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(n.max(1)).enumerate().for_each(kernel);
    } else {
        out.data_mut().chunks_mut(n.max(1)).enumerate().for_each(kernel);
    }
}

/// `C = A · B`.
pub fn matmul(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut out);
    out
}

/// `out = A · Bᵀ` without materialising the transpose. Fully overwrites
/// `out`, which must be `a.rows × b.rows`.
pub fn matmul_bt_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.cols(), b.cols(), "matmul_bt inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    assert_eq!(out.shape(), (m, n), "matmul_bt_into output shape mismatch");
    let kernel = |(r, out_row): (usize, &mut [f32])| {
        let a_row = a.row(r);
        for (c, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(c);
            let mut acc = 0.0f32;
            for i in 0..k {
                acc += a_row[i] * b_row[i];
            }
            *o = acc;
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(n.max(1)).enumerate().for_each(kernel);
    } else {
        out.data_mut().chunks_mut(n.max(1)).enumerate().for_each(kernel);
    }
}

/// `C = A · Bᵀ` without materialising the transpose.
pub fn matmul_bt(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.rows());
    matmul_bt_into(a, b, &mut out);
    out
}

/// `out = Aᵀ · B` without materialising the transpose. Fully overwrites
/// `out`, which must be `a.cols × b.cols`.
///
/// Each output row accumulates its `k` contributions in ascending-`p` order
/// (the same order the rank-1 formulation used), so results are bit-stable
/// while the rows parallelise like the other two matmuls.
pub fn matmul_at_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.rows(), b.rows(), "matmul_at inner dimension mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    assert_eq!(out.shape(), (m, n), "matmul_at_into output shape mismatch");
    let kernel = |(r, out_row): (usize, &mut [f32])| {
        out_row.fill(0.0);
        for p in 0..k {
            let av = a.row(p)[r];
            let b_row = b.row(p);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    };
    if m * n * k >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(n.max(1)).enumerate().for_each(kernel);
    } else {
        out.data_mut().chunks_mut(n.max(1)).enumerate().for_each(kernel);
    }
}

/// `C = Aᵀ · B` without materialising the transpose.
pub fn matmul_at(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.cols(), b.cols());
    matmul_at_into(a, b, &mut out);
    out
}

/// Explicit transpose.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.shape();
    let mut out = Tensor::zeros(n, m);
    for r in 0..m {
        for c in 0..n {
            out.set(c, r, a.get(r, c));
        }
    }
    out
}

/// `out = a + b` element-wise.
pub fn add_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.shape(), b.shape());
    assert_eq!(out.shape(), a.shape(), "add_into output shape mismatch");
    for r in 0..a.rows() {
        for ((o, &x), &y) in out.row_mut(r).iter_mut().zip(a.row(r)).zip(b.row(r)) {
            *o = x + y;
        }
    }
}

/// Element-wise `a + b`.
pub fn add(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), a.cols());
    add_into(a, b, &mut out);
    out
}

/// `out = a - b` element-wise.
pub fn sub_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.shape(), b.shape());
    assert_eq!(out.shape(), a.shape(), "sub_into output shape mismatch");
    for r in 0..a.rows() {
        for ((o, &x), &y) in out.row_mut(r).iter_mut().zip(a.row(r)).zip(b.row(r)) {
            *o = x - y;
        }
    }
}

/// Element-wise `a - b`.
pub fn sub(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), a.cols());
    sub_into(a, b, &mut out);
    out
}

/// `out = a ⊙ b` element-wise.
pub fn mul_into(a: &impl MatRef, b: &impl MatRef, out: &mut Tensor) {
    assert_eq!(a.shape(), b.shape());
    assert_eq!(out.shape(), a.shape(), "mul_into output shape mismatch");
    for r in 0..a.rows() {
        for ((o, &x), &y) in out.row_mut(r).iter_mut().zip(a.row(r)).zip(b.row(r)) {
            *o = x * y;
        }
    }
}

/// Element-wise `a * b` (Hadamard product).
pub fn mul(a: &impl MatRef, b: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), a.cols());
    mul_into(a, b, &mut out);
    out
}

/// `a += b` in place. `b` may be a borrowed view.
pub fn add_inplace(a: &mut Tensor, b: &impl MatRef) {
    assert_eq!(a.shape(), b.shape());
    for r in 0..b.rows() {
        for (x, y) in a.row_mut(r).iter_mut().zip(b.row(r)) {
            *x += y;
        }
    }
}

/// `a += s * b` in place (axpy).
pub fn axpy_inplace(a: &mut Tensor, s: f32, b: &impl MatRef) {
    assert_eq!(a.shape(), b.shape());
    for r in 0..b.rows() {
        for (x, y) in a.row_mut(r).iter_mut().zip(b.row(r)) {
            *x += s * y;
        }
    }
}

/// `out = s * a`.
pub fn scale_into(a: &impl MatRef, s: f32, out: &mut Tensor) {
    assert_eq!(out.shape(), a.shape(), "scale_into output shape mismatch");
    for r in 0..a.rows() {
        for (o, &x) in out.row_mut(r).iter_mut().zip(a.row(r)) {
            *o = x * s;
        }
    }
}

/// Scale by a constant.
pub fn scale(a: &impl MatRef, s: f32) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), a.cols());
    scale_into(a, s, &mut out);
    out
}

/// Scale in place.
pub fn scale_inplace(a: &mut Tensor, s: f32) {
    a.data_mut().iter_mut().for_each(|x| *x *= s);
}

/// Copy `a` into `out` (shapes must match).
pub fn copy_into(a: &impl MatRef, out: &mut Tensor) {
    assert_eq!(out.shape(), a.shape(), "copy_into output shape mismatch");
    for r in 0..a.rows() {
        out.row_mut(r).copy_from_slice(a.row(r));
    }
}

/// Broadcast-add a `1 × n` row vector to every row of `a`, in place.
pub fn add_row_broadcast_inplace(a: &mut Tensor, row: &Tensor) {
    assert_eq!(row.rows(), 1);
    assert_eq!(row.cols(), a.cols());
    for r in 0..a.rows() {
        for (x, y) in a.row_mut(r).iter_mut().zip(row.data()) {
            *x += y;
        }
    }
}

/// Broadcast-add a `1 × n` row vector to every row of `a`.
pub fn add_row_broadcast(a: &Tensor, row: &Tensor) -> Tensor {
    let mut out = a.clone();
    add_row_broadcast_inplace(&mut out, row);
    out
}

/// The per-row numerically-stable softmax update shared by all softmax
/// entry points: subtract the max, exponentiate, normalise.
fn softmax_row(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Row-wise softmax of `a` written into `out` (same shape).
pub fn row_softmax_into(a: &impl MatRef, out: &mut Tensor) {
    assert_eq!(out.shape(), a.shape(), "row_softmax_into output shape mismatch");
    let (rows, cols) = a.shape();
    let apply = |(r, row): (usize, &mut [f32])| {
        row.copy_from_slice(a.row(r));
        softmax_row(row);
    };
    if rows * cols >= PAR_THRESHOLD {
        out.data_mut().par_chunks_mut(cols.max(1)).enumerate().for_each(apply);
    } else {
        out.data_mut().chunks_mut(cols.max(1)).enumerate().for_each(apply);
    }
}

/// Row-wise softmax in place.
pub fn row_softmax_inplace(a: &mut Tensor) {
    let cols = a.cols();
    if a.len() >= PAR_THRESHOLD {
        a.data_mut().par_chunks_mut(cols.max(1)).for_each(softmax_row);
    } else {
        a.data_mut().chunks_mut(cols.max(1)).for_each(softmax_row);
    }
}

/// Row-wise numerically-stable softmax.
pub fn row_softmax(a: &Tensor) -> Tensor {
    let mut out = a.clone();
    row_softmax_inplace(&mut out);
    out
}

/// Backward of row-wise softmax written into `out`: given `y = softmax(x)`
/// and `dL/dy`, computes `dL/dx = y ⊙ (dy - rowsum(dy ⊙ y))`.
pub fn row_softmax_backward_into(y: &impl MatRef, dy: &impl MatRef, out: &mut Tensor) {
    assert_eq!(y.shape(), dy.shape());
    assert_eq!(out.shape(), y.shape(), "row_softmax_backward_into shape mismatch");
    for r in 0..y.rows() {
        let yr = y.row(r);
        let dyr = dy.row(r);
        let dot: f32 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
        for (c, o) in out.row_mut(r).iter_mut().enumerate() {
            *o = yr[c] * (dyr[c] - dot);
        }
    }
}

/// Backward of row-wise softmax: given `y = softmax(x)` and `dL/dy`, returns
/// `dL/dx = y ⊙ (dy - rowsum(dy ⊙ y))`.
pub fn row_softmax_backward(y: &impl MatRef, dy: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(y.rows(), y.cols());
    row_softmax_backward_into(y, dy, &mut out);
    out
}

/// Sum each column of `a` into the `1 × n` row vector `out`.
pub fn col_sum_into(a: &impl MatRef, out: &mut Tensor) {
    assert_eq!(out.shape(), (1, a.cols()), "col_sum_into output shape mismatch");
    out.fill_zero();
    for r in 0..a.rows() {
        for (o, v) in out.row_mut(0).iter_mut().zip(a.row(r)) {
            *o += v;
        }
    }
}

/// Sum each column into a `1 × n` row vector (used for bias gradients).
pub fn col_sum(a: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(1, a.cols());
    col_sum_into(a, &mut out);
    out
}

/// Row-wise mean into an `m × 1` column.
pub fn row_mean(a: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), 1);
    let inv = 1.0 / a.cols() as f32;
    for r in 0..a.rows() {
        out.set(r, 0, a.row(r).iter().sum::<f32>() * inv);
    }
    out
}

/// Mean over rows of `a` written into the `1 × n` row vector `out`.
pub fn mean_rows_into(a: &impl MatRef, out: &mut Tensor) {
    col_sum_into(a, out);
    if a.rows() > 0 {
        scale_inplace(out, 1.0 / a.rows() as f32);
    }
}

/// Mean over rows into a `1 × n` row vector (mean pooling for graph-level
/// readout).
pub fn mean_rows(a: &impl MatRef) -> Tensor {
    let mut out = Tensor::zeros(1, a.cols());
    mean_rows_into(a, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    /// A dirty buffer of the given shape — `_into` kernels must fully
    /// define their output regardless of its prior contents.
    fn dirty(rows: usize, cols: usize) -> Tensor {
        Tensor::full(rows, cols, f32::NAN)
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_equals_matmul_of_transpose() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(4, 3, &(0..12).map(|v| v as f32 * 0.5).collect::<Vec<_>>());
        let direct = matmul_bt(&a, &b);
        let via_t = matmul(&a, &transpose(&b));
        assert_eq!(direct.data(), via_t.data());
    }

    #[test]
    fn matmul_at_equals_matmul_of_transpose() {
        let a = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        let direct = matmul_at(&a, &b);
        let via_t = matmul(&transpose(&a), &b);
        assert_eq!(direct.data(), via_t.data());
    }

    #[test]
    fn large_matmul_parallel_path_matches_sequential() {
        // Exceed PAR_THRESHOLD to exercise the parallel path.
        let m = 70;
        let k = 40;
        let n = 30;
        let a = Tensor::from_vec(m, k, (0..m * k).map(|v| (v % 7) as f32 - 3.0).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|v| (v % 5) as f32 - 2.0).collect());
        let c = matmul(&a, &b);
        // Spot-check a few entries against a naive loop.
        for &(r, cidx) in &[(0usize, 0usize), (m - 1, n - 1), (m / 2, n / 2)] {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.get(r, p) * b.get(p, cidx);
            }
            assert!((c.get(r, cidx) - acc).abs() < 1e-4);
        }
    }

    #[test]
    fn large_matmul_at_parallel_path_matches_transpose() {
        // m * n * k above PAR_THRESHOLD exercises the new parallel path.
        let k = 64;
        let m = 32;
        let n = 24;
        let a = Tensor::from_vec(k, m, (0..k * m).map(|v| (v % 11) as f32 - 5.0).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|v| (v % 7) as f32 - 3.0).collect());
        assert_eq!(matmul_at(&a, &b).data(), matmul(&transpose(&a), &b).data());
    }

    #[test]
    fn matmuls_propagate_nan_through_zero_multiplicands() {
        // A zero in A must not mask a NaN in B: 0 · NaN = NaN.
        let a = t(1, 2, &[0.0, 1.0]);
        let b = t(2, 2, &[f32::NAN, 2.0, 3.0, 4.0]);
        assert!(matmul(&a, &b).get(0, 0).is_nan());
        let at = t(2, 1, &[0.0, 1.0]);
        let bn = t(2, 2, &[f32::NAN, 2.0, 3.0, 4.0]);
        assert!(matmul_at(&at, &bn).get(0, 0).is_nan());
        let abt = t(1, 2, &[0.0, 1.0]);
        let bbt = t(1, 2, &[f32::NAN, 0.0]);
        assert!(matmul_bt(&abt, &bbt).get(0, 0).is_nan());
    }

    #[test]
    fn into_kernels_overwrite_dirty_buffers() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let mut out = dirty(2, 2);
        matmul_into(&a, &b, &mut out);
        assert_eq!(out.data(), matmul(&a, &b).data());
        let mut out = dirty(2, 3);
        matmul_bt_into(&a, &t(3, 3, &(0..9).map(|v| v as f32).collect::<Vec<_>>()), &mut out);
        assert_eq!(out.data(), matmul_bt(&a, &t(3, 3, &(0..9).map(|v| v as f32).collect::<Vec<_>>())).data());
        let mut out = dirty(1, 3);
        col_sum_into(&a, &mut out);
        assert_eq!(out.data(), col_sum(&a).data());
        let mut out = dirty(1, 3);
        mean_rows_into(&a, &mut out);
        assert_eq!(out.data(), mean_rows(&a).data());
        let mut out = dirty(2, 3);
        row_softmax_into(&a, &mut out);
        assert_eq!(out.data(), row_softmax(&a).data());
    }

    #[test]
    fn views_feed_matmul_kernels() {
        // Multiplying a column block through a view must equal slicing it out.
        let packed = Tensor::from_vec(3, 6, (0..18).map(|v| v as f32 * 0.25).collect());
        let w = Tensor::from_vec(2, 4, (0..8).map(|v| v as f32 - 3.0).collect());
        let view = packed.view_cols(2, 4);
        let copy = packed.slice_cols(2, 4);
        assert_eq!(matmul(&view, &w).data(), matmul(&copy, &w).data());
        assert_eq!(matmul_bt(&view, &packed.view_cols(4, 6)).data(),
                   matmul_bt(&copy, &packed.slice_cols(4, 6)).data());
        assert_eq!(matmul_at(&view, &packed.view_cols(0, 2)).data(),
                   matmul_at(&copy, &packed.slice_cols(0, 2)).data());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(2, 3, &[1., 2., 3., -1., 0., 1.]);
        let s = row_softmax(&a);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone: bigger logits get bigger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[1001., 1002., 1003.]);
        let sa = row_softmax(&a);
        let sb = row_softmax(&b);
        for i in 0..3 {
            assert!((sa.data()[i] - sb.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_numerical() {
        let x = t(2, 4, &[0.5, -0.3, 0.8, 0.1, -1.0, 0.2, 0.0, 0.7]);
        let upstream = t(2, 4, &[0.1, 0.2, -0.3, 0.4, 0.5, -0.1, 0.2, 0.05]);
        let y = row_softmax(&x);
        let analytic = row_softmax_backward(&y, &upstream);
        let numeric = crate::gradcheck::numerical_grad(
            &x,
            |probe| {
                let s = row_softmax(probe);
                s.data().iter().zip(upstream.data()).map(|(a, b)| a * b).sum()
            },
            1e-3,
        );
        assert!(crate::gradcheck::max_abs_diff(&analytic, &numeric) < 1e-3);
    }

    #[test]
    fn elementwise_and_broadcast_ops() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let b = t(2, 2, &[5., 6., 7., 8.]);
        assert_eq!(add(&a, &b).data(), &[6., 8., 10., 12.]);
        assert_eq!(sub(&b, &a).data(), &[4., 4., 4., 4.]);
        assert_eq!(mul(&a, &b).data(), &[5., 12., 21., 32.]);
        let row = Tensor::row_vector(vec![10., 20.]);
        assert_eq!(add_row_broadcast(&a, &row).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn reductions_by_axis() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(col_sum(&a).data(), &[5., 7., 9.]);
        assert_eq!(row_mean(&a).data(), &[2., 5.]);
        assert_eq!(mean_rows(&a).data(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(1, 3, &[1., 1., 1.]);
        let b = t(1, 3, &[1., 2., 3.]);
        axpy_inplace(&mut a, 2.0, &b);
        assert_eq!(a.data(), &[3., 5., 7.]);
    }
}
