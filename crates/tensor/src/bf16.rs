//! Emulated bfloat16 precision.
//!
//! FlashAttention only supports FP16/BF16 (paper §IV-B); the paper's Table VII
//! shows this reduced precision is what costs GP-FLASH accuracy. We reproduce
//! the effect by rounding `f32` values through the bfloat16 representation
//! (8-bit exponent, 7-bit mantissa) with round-to-nearest-even, at the layer
//! boundaries selected by the runtime's precision mode.

use crate::tensor::Tensor;

torchgt_compat::json_enum! {
    /// Numeric precision of a training run.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub enum Precision {
        /// Full IEEE-754 single precision (TorchGT's default).
        Fp32,
        /// Emulated bfloat16: activations are rounded through bf16 after each
        /// attention/FFN block, matching FlashAttention's compute precision.
        Bf16,
    }
}

impl Precision {
    /// Short lowercase label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Fp32 => "fp32",
            Precision::Bf16 => "bf16",
        }
    }
}

/// Round an `f32` to the nearest bfloat16-representable value
/// (round-to-nearest-even), returned as `f32`.
#[inline]
pub fn bf16_round(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    // bf16 keeps the top 16 bits; apply RNE on the truncated half.
    let round_bit = 0x0000_8000u32;
    let lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x0000_7FFF + lsb) & 0xFFFF_0000;
    // Detect mantissa overflow into infinity: keep IEEE semantics (bf16
    // saturates to inf just like f32 rounding would).
    let _ = round_bit;
    f32::from_bits(rounded)
}

/// Round every element of a tensor through bf16 in place.
pub fn bf16_round_tensor(t: &mut Tensor) {
    for v in t.data_mut() {
        *v = bf16_round(*v);
    }
}

/// Apply precision to a tensor in place (`Fp32` is a no-op).
pub fn apply_precision(t: &mut Tensor, p: Precision) {
    if p == Precision::Bf16 {
        bf16_round_tensor(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_pass_through() {
        for v in [0.0f32, 1.0, -2.0, 0.5, 256.0] {
            assert_eq!(bf16_round(v), v);
        }
    }

    #[test]
    fn rounding_introduces_bounded_relative_error() {
        for i in 1..1000 {
            let v = i as f32 * 0.001 + 1.0;
            let r = bf16_round(v);
            // bf16 has ~2-3 decimal digits: relative error < 2^-8.
            assert!(((r - v) / v).abs() < 1.0 / 256.0, "v={v} r={r}");
        }
    }

    #[test]
    fn round_to_nearest_even_tie() {
        // 1 + 2^-8 is exactly halfway between 1.0 and the next bf16 value
        // (1 + 2^-7); RNE picks the even mantissa (1.0).
        let tie = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_round(tie), 1.0);
        // Just above the tie rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(bf16_round(above), f32::from_bits(0x3F81_0000));
    }

    #[test]
    fn non_finite_preserved() {
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn precision_apply() {
        let mut t = Tensor::from_vec(1, 2, vec![1.0001, -3.14159]);
        let orig = t.clone();
        apply_precision(&mut t, Precision::Fp32);
        assert_eq!(t.data(), orig.data());
        apply_precision(&mut t, Precision::Bf16);
        assert_ne!(t.data(), orig.data());
    }
}
