//! AVX2 + FMA backend (256-bit lanes, 8 × f32).
//!
//! Two disciplines, per the parity policy in `mod.rs`:
//!
//! * element-wise kernels (`axpy`, `add`, …, `ln_grad_combine`) use plain
//!   `mul`/`add` — **never** FMA — so every lane performs the same rounding
//!   sequence as the scalar loop and results are bit-identical;
//! * reductions (`dot`, `sum`, …) use multiple vector accumulators and FMA,
//!   trading reduction order for throughput (ULP-bounded parity), and the
//!   transcendentals use a Cephes-style polynomial `exp` (≤ 2 ULP vs libm).
//!
//! Main loops run on full vectors; remainders fall through to the scalar
//! reference, which is exact for the element-wise class and within the
//! documented bound for the rest.

#![allow(unsafe_op_in_unsafe_fn)]

use super::scalar;
use std::arch::x86_64::*;

/// Horizontal sum of all 8 lanes.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let q = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(q, _mm_movehl_ps(q, q));
    let r = _mm_add_ss(s, _mm_movehdup_ps(s));
    _mm_cvtss_f32(r)
}

/// Vectorised `exp` (Cephes polynomial, ≤ ~2 ULP for finite inputs).
///
/// Semantics matched to the scalar path where they matter for softmax:
/// inputs below the underflow cutoff (incl. `-∞`) return exactly `0.0`,
/// NaN propagates. Inputs are clamped high, so `exp` of a huge finite
/// value saturates instead of overflowing — softmax only feeds `x ≤ 0`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp256(x: __m256) -> __m256 {
    let exp_hi = _mm256_set1_ps(88.376_26);
    let exp_lo = _mm256_set1_ps(-87.336_54);
    let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
    let c1 = _mm256_set1_ps(0.693_359_375);
    let c2 = _mm256_set1_ps(-2.121_944_4e-4);
    let one = _mm256_set1_ps(1.0);

    // Underflow lanes → exactly 0.0 (NaN compares false, so NaN survives).
    let underflow = _mm256_cmp_ps::<_CMP_LT_OQ>(x, exp_lo);
    // min(hi, x) keeps NaN (NaN in the second operand wins the blend).
    let xc = _mm256_min_ps(exp_hi, x);

    let n = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
        _mm256_mul_ps(xc, log2e),
    );
    // r = x - n·ln2, split into hi/lo parts for precision.
    let r = _mm256_fnmadd_ps(n, c2, _mm256_fnmadd_ps(n, c1, xc));
    let r2 = _mm256_mul_ps(r, r);
    let mut y = _mm256_set1_ps(1.987_569_1e-4);
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.398_199_9e-3));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(8.333_452e-3));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(4.166_579_6e-2));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.666_666_6e-1));
    y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(0.5));
    y = _mm256_fmadd_ps(y, r2, _mm256_add_ps(r, one));

    // Scale by 2ⁿ through the exponent bits.
    let n_i = _mm256_cvtps_epi32(n);
    let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        n_i,
        _mm256_set1_epi32(127),
    )));
    _mm256_andnot_ps(underflow, _mm256_mul_ps(y, pow2))
}

/// Vectorised `tanh` via `exp(2u)`: `(e − 1) / (e + 1)`. Inputs are clamped
/// to ±12 where the f32 result saturates to exactly ±1.0 (matching libm for
/// large arguments); NaN propagates through the clamp operand order.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tanh256(u: __m256) -> __m256 {
    let lim = _mm256_set1_ps(12.0);
    let one = _mm256_set1_ps(1.0);
    let uc = _mm256_min_ps(lim, _mm256_max_ps(_mm256_set1_ps(-12.0), u));
    let e = exp256(_mm256_add_ps(uc, uc));
    _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one))
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 8)),
            _mm256_loadu_ps(pb.add(i + 8)),
            acc1,
        );
        acc2 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 16)),
            _mm256_loadu_ps(pb.add(i + 16)),
            acc2,
        );
        acc3 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 24)),
            _mm256_loadu_ps(pb.add(i + 24)),
            acc3,
        );
        i += 32;
    }
    while i + 8 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        i += 8;
    }
    let mut total = hsum(_mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
    while i < n {
        total += a[i] * b[i];
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot3(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let n = a.len();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        let ab = _mm256_mul_ps(_mm256_loadu_ps(a.as_ptr().add(i)), _mm256_loadu_ps(b.as_ptr().add(i)));
        acc = _mm256_fmadd_ps(ab, _mm256_loadu_ps(c.as_ptr().add(i)), acc);
        i += 8;
    }
    let mut total = hsum(acc);
    while i < n {
        total += a[i] * b[i] * c[i];
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sum(a: &[f32]) -> f32 {
    let n = a.len();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(a.as_ptr().add(i)));
        acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(a.as_ptr().add(i + 8)));
        i += 16;
    }
    while i + 8 <= n {
        acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(a.as_ptr().add(i)));
        i += 8;
    }
    let mut total = hsum(_mm256_add_ps(acc0, acc1));
    while i < n {
        total += a[i];
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sum_sq_diff(a: &[f32], mean: f32) -> f32 {
    let n = a.len();
    let vm = _mm256_set1_ps(mean);
    let mut acc = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= n {
        let d = _mm256_sub_ps(_mm256_loadu_ps(a.as_ptr().add(i)), vm);
        acc = _mm256_fmadd_ps(d, d, acc);
        i += 8;
    }
    let mut total = hsum(acc);
    while i < n {
        let d = a[i] - mean;
        total += d * d;
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn exp_minus_max_sum(row: &mut [f32], max: f32) -> f32 {
    let n = row.len();
    let vm = _mm256_set1_ps(max);
    let mut vsum = _mm256_setzero_ps();
    let p = row.as_mut_ptr();
    let mut i = 0usize;
    while i + 8 <= n {
        let e = exp256(_mm256_sub_ps(_mm256_loadu_ps(p.add(i)), vm));
        _mm256_storeu_ps(p.add(i), e);
        vsum = _mm256_add_ps(vsum, e);
        i += 8;
    }
    let mut total = hsum(vsum);
    if i < n {
        total += scalar::exp_minus_max_sum(&mut row[i..], max);
    }
    total
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn max_ignore_nan(a: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
    let mut i = 0usize;
    while i + 8 <= n {
        // max(x, acc): a NaN lane in x loses the compare and keeps acc,
        // reproducing the NaN-ignoring fold of the scalar reference.
        acc = _mm256_max_ps(_mm256_loadu_ps(a.as_ptr().add(i)), acc);
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut m = lanes.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    while i < n {
        m = f32::max(m, a[i]);
        i += 1;
    }
    m
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn axpy(dst: &mut [f32], s: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let vs = _mm256_set1_ps(s);
    let pd = dst.as_mut_ptr();
    let ps = src.as_ptr();
    let mut i = 0usize;
    // mul + add (not FMA): same two roundings per element as the scalar loop.
    while i + 8 <= n {
        let r = _mm256_add_ps(_mm256_loadu_ps(pd.add(i)), _mm256_mul_ps(vs, _mm256_loadu_ps(ps.add(i))));
        _mm256_storeu_ps(pd.add(i), r);
        i += 8;
    }
    if i < n {
        scalar::axpy(&mut dst[i..], s, &src[i..]);
    }
}

macro_rules! elementwise_binop {
    ($name:ident, $op:ident) => {
        #[target_feature(enable = "avx2", enable = "fma")]
        pub unsafe fn $name(a: &[f32], b: &[f32], out: &mut [f32]) {
            debug_assert_eq!(a.len(), b.len());
            debug_assert_eq!(a.len(), out.len());
            let n = out.len();
            let mut i = 0usize;
            while i + 8 <= n {
                let r = $op(
                    _mm256_loadu_ps(a.as_ptr().add(i)),
                    _mm256_loadu_ps(b.as_ptr().add(i)),
                );
                _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
                i += 8;
            }
            if i < n {
                scalar::$name(&a[i..], &b[i..], &mut out[i..]);
            }
        }
    };
}

elementwise_binop!(add, _mm256_add_ps);
elementwise_binop!(sub, _mm256_sub_ps);
elementwise_binop!(mul, _mm256_mul_ps);

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn scale(a: &[f32], s: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    let n = out.len();
    let vs = _mm256_set1_ps(s);
    let mut i = 0usize;
    while i + 8 <= n {
        _mm256_storeu_ps(
            out.as_mut_ptr().add(i),
            _mm256_mul_ps(_mm256_loadu_ps(a.as_ptr().add(i)), vs),
        );
        i += 8;
    }
    if i < n {
        scalar::scale(&a[i..], s, &mut out[i..]);
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let p = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 8 <= n {
        _mm256_storeu_ps(
            p.add(i),
            _mm256_add_ps(_mm256_loadu_ps(p.add(i)), _mm256_loadu_ps(src.as_ptr().add(i))),
        );
        i += 8;
    }
    if i < n {
        scalar::add_assign(&mut dst[i..], &src[i..]);
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn mul_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let p = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 8 <= n {
        _mm256_storeu_ps(
            p.add(i),
            _mm256_mul_ps(_mm256_loadu_ps(p.add(i)), _mm256_loadu_ps(src.as_ptr().add(i))),
        );
        i += 8;
    }
    if i < n {
        scalar::mul_assign(&mut dst[i..], &src[i..]);
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn mul_acc(dst: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let n = dst.len();
    let p = dst.as_mut_ptr();
    let mut i = 0usize;
    // mul + add (not FMA) keeps this bit-exact against the scalar loop.
    while i + 8 <= n {
        let prod = _mm256_mul_ps(_mm256_loadu_ps(a.as_ptr().add(i)), _mm256_loadu_ps(b.as_ptr().add(i)));
        _mm256_storeu_ps(p.add(i), _mm256_add_ps(_mm256_loadu_ps(p.add(i)), prod));
        i += 8;
    }
    if i < n {
        scalar::mul_acc(&mut dst[i..], &a[i..], &b[i..]);
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn scale_assign(dst: &mut [f32], s: f32) {
    let n = dst.len();
    let vs = _mm256_set1_ps(s);
    let p = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 8 <= n {
        _mm256_storeu_ps(p.add(i), _mm256_mul_ps(_mm256_loadu_ps(p.add(i)), vs));
        i += 8;
    }
    if i < n {
        scalar::scale_assign(&mut dst[i..], s);
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn div_assign(dst: &mut [f32], s: f32) {
    let n = dst.len();
    let vs = _mm256_set1_ps(s);
    let p = dst.as_mut_ptr();
    let mut i = 0usize;
    // True division: IEEE-correctly rounded, so bit-exact vs the scalar `/`.
    while i + 8 <= n {
        _mm256_storeu_ps(p.add(i), _mm256_div_ps(_mm256_loadu_ps(p.add(i)), vs));
        i += 8;
    }
    if i < n {
        scalar::div_assign(&mut dst[i..], s);
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn normalize(a: &[f32], mean: f32, inv_std: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    let n = out.len();
    let vm = _mm256_set1_ps(mean);
    let vi = _mm256_set1_ps(inv_std);
    let mut i = 0usize;
    while i + 8 <= n {
        let r = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(a.as_ptr().add(i)), vm), vi);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
        i += 8;
    }
    if i < n {
        scalar::normalize(&a[i..], mean, inv_std, &mut out[i..]);
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub unsafe fn ln_grad_combine(
    dy: &[f32],
    g: &[f32],
    xhat: &[f32],
    sum_dxhat: f32,
    sum_dxhat_xhat: f32,
    inv_std: f32,
    out: &mut [f32],
) {
    let len = out.len();
    let n = len as f32;
    let vn = _mm256_set1_ps(n);
    let vs1 = _mm256_set1_ps(sum_dxhat);
    let vs2 = _mm256_set1_ps(sum_dxhat_xhat);
    let vinv = _mm256_set1_ps(inv_std);
    let mut i = 0usize;
    // Mirrors the scalar rounding sequence exactly (no FMA):
    // ((n·(dy·g) − s₁ − x̂·s₂) · inv_std) / n
    while i + 8 <= len {
        let dxhat = _mm256_mul_ps(_mm256_loadu_ps(dy.as_ptr().add(i)), _mm256_loadu_ps(g.as_ptr().add(i)));
        let t = _mm256_sub_ps(_mm256_mul_ps(vn, dxhat), vs1);
        let u = _mm256_mul_ps(_mm256_loadu_ps(xhat.as_ptr().add(i)), vs2);
        let r = _mm256_div_ps(_mm256_mul_ps(_mm256_sub_ps(t, u), vinv), vn);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
        i += 8;
    }
    for c in i..len {
        let dxhat = dy[c] * g[c];
        out[c] = (n * dxhat - sum_dxhat - xhat[c] * sum_dxhat_xhat) * inv_std / n;
    }
}

/// Shared GELU inner term `u = √(2/π)·(x + C·x³)`, mirroring the scalar
/// rounding sequence `((C·x)·x)·x` → `x + ·` → `√(2/π)·` without FMA.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gelu_u(x: __m256) -> __m256 {
    let c = _mm256_set1_ps(scalar::GELU_C);
    let s = _mm256_set1_ps(scalar::SQRT_2_OVER_PI);
    let cube_term = _mm256_mul_ps(_mm256_mul_ps(_mm256_mul_ps(c, x), x), x);
    _mm256_mul_ps(s, _mm256_add_ps(x, cube_term))
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gelu(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    let n = out.len();
    let half = _mm256_set1_ps(0.5);
    let one = _mm256_set1_ps(1.0);
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(x.as_ptr().add(i));
        let t = tanh256(gelu_u(v));
        // 0.5·x·(1+t) with the scalar's (0.5·x)·(1+t) ordering.
        let r = _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_add_ps(one, t));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
        i += 8;
    }
    if i < n {
        scalar::gelu(&x[i..], &mut out[i..]);
    }
}

#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gelu_grad(x: &[f32], dy: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(x.len(), dy.len());
    let n = out.len();
    let half = _mm256_set1_ps(0.5);
    let one = _mm256_set1_ps(1.0);
    let s = _mm256_set1_ps(scalar::SQRT_2_OVER_PI);
    let c3 = _mm256_set1_ps(3.0 * scalar::GELU_C);
    let mut i = 0usize;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(x.as_ptr().add(i));
        let t = tanh256(gelu_u(v));
        // du = √(2/π)·(1 + (3C·x)·x)
        let du = _mm256_mul_ps(s, _mm256_add_ps(one, _mm256_mul_ps(_mm256_mul_ps(c3, v), v)));
        // 0.5·(1+t) + ((0.5·x)·(1−t²))·du, then × dy.
        let a = _mm256_mul_ps(half, _mm256_add_ps(one, t));
        let b = _mm256_mul_ps(
            _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_sub_ps(one, _mm256_mul_ps(t, t))),
            du,
        );
        let r = _mm256_mul_ps(_mm256_add_ps(a, b), _mm256_loadu_ps(dy.as_ptr().add(i)));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
        i += 8;
    }
    if i < n {
        scalar::gelu_grad(&x[i..], &dy[i..], &mut out[i..]);
    }
}
