//! AVX-512F backend (512-bit lanes, 16 × f32).
//!
//! Same discipline as `avx2.rs`: element-wise kernels avoid FMA so lanes
//! reproduce the scalar rounding sequence bit-for-bit; reductions use wide
//! accumulators + FMA and the transcendentals a polynomial `exp`
//! (ULP-bounded parity, see `mod.rs`). Remainders fall through to the
//! scalar reference.

#![allow(unsafe_op_in_unsafe_fn)]

use super::scalar;
use std::arch::x86_64::*;

/// Round-to-nearest-int, exceptions suppressed (imm8 for roundscale).
const RN: i32 = 0x08;

/// Vectorised `exp` — the 16-lane twin of `avx2::exp256` (same polynomial,
/// same underflow-to-zero and NaN-propagation semantics).
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn exp512(x: __m512) -> __m512 {
    let exp_hi = _mm512_set1_ps(88.376_26);
    let exp_lo = _mm512_set1_ps(-87.336_54);
    let log2e = _mm512_set1_ps(std::f32::consts::LOG2_E);
    let c1 = _mm512_set1_ps(0.693_359_375);
    let c2 = _mm512_set1_ps(-2.121_944_4e-4);
    let one = _mm512_set1_ps(1.0);

    let underflow: __mmask16 = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(x, exp_lo);
    let xc = _mm512_min_ps(exp_hi, x);

    let n = _mm512_roundscale_ps::<RN>(_mm512_mul_ps(xc, log2e));
    let r = _mm512_fnmadd_ps(n, c2, _mm512_fnmadd_ps(n, c1, xc));
    let r2 = _mm512_mul_ps(r, r);
    let mut y = _mm512_set1_ps(1.987_569_1e-4);
    y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(1.398_199_9e-3));
    y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(8.333_452e-3));
    y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(4.166_579_6e-2));
    y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(1.666_666_6e-1));
    y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(0.5));
    y = _mm512_fmadd_ps(y, r2, _mm512_add_ps(r, one));

    let n_i = _mm512_cvtps_epi32(n);
    let pow2 = _mm512_castsi512_ps(_mm512_slli_epi32::<23>(_mm512_add_epi32(
        n_i,
        _mm512_set1_epi32(127),
    )));
    _mm512_maskz_mov_ps(!underflow, _mm512_mul_ps(y, pow2))
}

/// Vectorised `tanh` via `exp(2u)` with ±12 saturation (see `avx2::tanh256`).
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn tanh512(u: __m512) -> __m512 {
    let one = _mm512_set1_ps(1.0);
    let uc = _mm512_min_ps(_mm512_set1_ps(12.0), _mm512_max_ps(_mm512_set1_ps(-12.0), u));
    let e = exp512(_mm512_add_ps(uc, uc));
    _mm512_div_ps(_mm512_sub_ps(e, one), _mm512_add_ps(e, one))
}

#[target_feature(enable = "avx512f")]
pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm512_setzero_ps();
    let mut acc1 = _mm512_setzero_ps();
    let mut acc2 = _mm512_setzero_ps();
    let mut acc3 = _mm512_setzero_ps();
    let mut i = 0usize;
    while i + 64 <= n {
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(pa.add(i)), _mm512_loadu_ps(pb.add(i)), acc0);
        acc1 = _mm512_fmadd_ps(
            _mm512_loadu_ps(pa.add(i + 16)),
            _mm512_loadu_ps(pb.add(i + 16)),
            acc1,
        );
        acc2 = _mm512_fmadd_ps(
            _mm512_loadu_ps(pa.add(i + 32)),
            _mm512_loadu_ps(pb.add(i + 32)),
            acc2,
        );
        acc3 = _mm512_fmadd_ps(
            _mm512_loadu_ps(pa.add(i + 48)),
            _mm512_loadu_ps(pb.add(i + 48)),
            acc3,
        );
        i += 64;
    }
    while i + 16 <= n {
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(pa.add(i)), _mm512_loadu_ps(pb.add(i)), acc0);
        i += 16;
    }
    let mut total = _mm512_reduce_add_ps(_mm512_add_ps(
        _mm512_add_ps(acc0, acc1),
        _mm512_add_ps(acc2, acc3),
    ));
    while i < n {
        total += a[i] * b[i];
        i += 1;
    }
    total
}

#[target_feature(enable = "avx512f")]
pub unsafe fn dot3(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let n = a.len();
    let mut acc = _mm512_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let ab = _mm512_mul_ps(_mm512_loadu_ps(a.as_ptr().add(i)), _mm512_loadu_ps(b.as_ptr().add(i)));
        acc = _mm512_fmadd_ps(ab, _mm512_loadu_ps(c.as_ptr().add(i)), acc);
        i += 16;
    }
    let mut total = _mm512_reduce_add_ps(acc);
    while i < n {
        total += a[i] * b[i] * c[i];
        i += 1;
    }
    total
}

#[target_feature(enable = "avx512f")]
pub unsafe fn sum(a: &[f32]) -> f32 {
    let n = a.len();
    let mut acc0 = _mm512_setzero_ps();
    let mut acc1 = _mm512_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        acc0 = _mm512_add_ps(acc0, _mm512_loadu_ps(a.as_ptr().add(i)));
        acc1 = _mm512_add_ps(acc1, _mm512_loadu_ps(a.as_ptr().add(i + 16)));
        i += 32;
    }
    while i + 16 <= n {
        acc0 = _mm512_add_ps(acc0, _mm512_loadu_ps(a.as_ptr().add(i)));
        i += 16;
    }
    let mut total = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
    while i < n {
        total += a[i];
        i += 1;
    }
    total
}

#[target_feature(enable = "avx512f")]
pub unsafe fn sum_sq_diff(a: &[f32], mean: f32) -> f32 {
    let n = a.len();
    let vm = _mm512_set1_ps(mean);
    let mut acc = _mm512_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let d = _mm512_sub_ps(_mm512_loadu_ps(a.as_ptr().add(i)), vm);
        acc = _mm512_fmadd_ps(d, d, acc);
        i += 16;
    }
    let mut total = _mm512_reduce_add_ps(acc);
    while i < n {
        let d = a[i] - mean;
        total += d * d;
        i += 1;
    }
    total
}

#[target_feature(enable = "avx512f")]
pub unsafe fn exp_minus_max_sum(row: &mut [f32], max: f32) -> f32 {
    let n = row.len();
    let vm = _mm512_set1_ps(max);
    let mut vsum = _mm512_setzero_ps();
    let p = row.as_mut_ptr();
    let mut i = 0usize;
    while i + 16 <= n {
        let e = exp512(_mm512_sub_ps(_mm512_loadu_ps(p.add(i)), vm));
        _mm512_storeu_ps(p.add(i), e);
        vsum = _mm512_add_ps(vsum, e);
        i += 16;
    }
    let mut total = _mm512_reduce_add_ps(vsum);
    if i < n {
        total += scalar::exp_minus_max_sum(&mut row[i..], max);
    }
    total
}

#[target_feature(enable = "avx512f")]
pub unsafe fn max_ignore_nan(a: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm512_set1_ps(f32::NEG_INFINITY);
    let mut i = 0usize;
    while i + 16 <= n {
        // max(x, acc): NaN lanes in x lose the compare and keep acc.
        acc = _mm512_max_ps(_mm512_loadu_ps(a.as_ptr().add(i)), acc);
        i += 16;
    }
    let mut lanes = [0.0f32; 16];
    _mm512_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut m = lanes.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    while i < n {
        m = f32::max(m, a[i]);
        i += 1;
    }
    m
}

#[target_feature(enable = "avx512f")]
pub unsafe fn axpy(dst: &mut [f32], s: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let vs = _mm512_set1_ps(s);
    let pd = dst.as_mut_ptr();
    let ps = src.as_ptr();
    let mut i = 0usize;
    // mul + add (not FMA): bit-exact vs the scalar loop.
    while i + 16 <= n {
        let r = _mm512_add_ps(_mm512_loadu_ps(pd.add(i)), _mm512_mul_ps(vs, _mm512_loadu_ps(ps.add(i))));
        _mm512_storeu_ps(pd.add(i), r);
        i += 16;
    }
    if i < n {
        scalar::axpy(&mut dst[i..], s, &src[i..]);
    }
}

macro_rules! elementwise_binop {
    ($name:ident, $op:ident) => {
        #[target_feature(enable = "avx512f")]
        pub unsafe fn $name(a: &[f32], b: &[f32], out: &mut [f32]) {
            debug_assert_eq!(a.len(), b.len());
            debug_assert_eq!(a.len(), out.len());
            let n = out.len();
            let mut i = 0usize;
            while i + 16 <= n {
                let r = $op(
                    _mm512_loadu_ps(a.as_ptr().add(i)),
                    _mm512_loadu_ps(b.as_ptr().add(i)),
                );
                _mm512_storeu_ps(out.as_mut_ptr().add(i), r);
                i += 16;
            }
            if i < n {
                scalar::$name(&a[i..], &b[i..], &mut out[i..]);
            }
        }
    };
}

elementwise_binop!(add, _mm512_add_ps);
elementwise_binop!(sub, _mm512_sub_ps);
elementwise_binop!(mul, _mm512_mul_ps);

#[target_feature(enable = "avx512f")]
pub unsafe fn scale(a: &[f32], s: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    let n = out.len();
    let vs = _mm512_set1_ps(s);
    let mut i = 0usize;
    while i + 16 <= n {
        _mm512_storeu_ps(
            out.as_mut_ptr().add(i),
            _mm512_mul_ps(_mm512_loadu_ps(a.as_ptr().add(i)), vs),
        );
        i += 16;
    }
    if i < n {
        scalar::scale(&a[i..], s, &mut out[i..]);
    }
}

#[target_feature(enable = "avx512f")]
pub unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let p = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 16 <= n {
        _mm512_storeu_ps(
            p.add(i),
            _mm512_add_ps(_mm512_loadu_ps(p.add(i)), _mm512_loadu_ps(src.as_ptr().add(i))),
        );
        i += 16;
    }
    if i < n {
        scalar::add_assign(&mut dst[i..], &src[i..]);
    }
}

#[target_feature(enable = "avx512f")]
pub unsafe fn mul_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let p = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 16 <= n {
        _mm512_storeu_ps(
            p.add(i),
            _mm512_mul_ps(_mm512_loadu_ps(p.add(i)), _mm512_loadu_ps(src.as_ptr().add(i))),
        );
        i += 16;
    }
    if i < n {
        scalar::mul_assign(&mut dst[i..], &src[i..]);
    }
}

#[target_feature(enable = "avx512f")]
pub unsafe fn mul_acc(dst: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let n = dst.len();
    let p = dst.as_mut_ptr();
    let mut i = 0usize;
    // mul + add (not FMA) keeps this bit-exact against the scalar loop.
    while i + 16 <= n {
        let prod = _mm512_mul_ps(_mm512_loadu_ps(a.as_ptr().add(i)), _mm512_loadu_ps(b.as_ptr().add(i)));
        _mm512_storeu_ps(p.add(i), _mm512_add_ps(_mm512_loadu_ps(p.add(i)), prod));
        i += 16;
    }
    if i < n {
        scalar::mul_acc(&mut dst[i..], &a[i..], &b[i..]);
    }
}

#[target_feature(enable = "avx512f")]
pub unsafe fn scale_assign(dst: &mut [f32], s: f32) {
    let n = dst.len();
    let vs = _mm512_set1_ps(s);
    let p = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 16 <= n {
        _mm512_storeu_ps(p.add(i), _mm512_mul_ps(_mm512_loadu_ps(p.add(i)), vs));
        i += 16;
    }
    if i < n {
        scalar::scale_assign(&mut dst[i..], s);
    }
}

#[target_feature(enable = "avx512f")]
pub unsafe fn div_assign(dst: &mut [f32], s: f32) {
    let n = dst.len();
    let vs = _mm512_set1_ps(s);
    let p = dst.as_mut_ptr();
    let mut i = 0usize;
    while i + 16 <= n {
        _mm512_storeu_ps(p.add(i), _mm512_div_ps(_mm512_loadu_ps(p.add(i)), vs));
        i += 16;
    }
    if i < n {
        scalar::div_assign(&mut dst[i..], s);
    }
}

#[target_feature(enable = "avx512f")]
pub unsafe fn normalize(a: &[f32], mean: f32, inv_std: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    let n = out.len();
    let vm = _mm512_set1_ps(mean);
    let vi = _mm512_set1_ps(inv_std);
    let mut i = 0usize;
    while i + 16 <= n {
        let r = _mm512_mul_ps(_mm512_sub_ps(_mm512_loadu_ps(a.as_ptr().add(i)), vm), vi);
        _mm512_storeu_ps(out.as_mut_ptr().add(i), r);
        i += 16;
    }
    if i < n {
        scalar::normalize(&a[i..], mean, inv_std, &mut out[i..]);
    }
}

#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
pub unsafe fn ln_grad_combine(
    dy: &[f32],
    g: &[f32],
    xhat: &[f32],
    sum_dxhat: f32,
    sum_dxhat_xhat: f32,
    inv_std: f32,
    out: &mut [f32],
) {
    let len = out.len();
    let n = len as f32;
    let vn = _mm512_set1_ps(n);
    let vs1 = _mm512_set1_ps(sum_dxhat);
    let vs2 = _mm512_set1_ps(sum_dxhat_xhat);
    let vinv = _mm512_set1_ps(inv_std);
    let mut i = 0usize;
    while i + 16 <= len {
        let dxhat = _mm512_mul_ps(_mm512_loadu_ps(dy.as_ptr().add(i)), _mm512_loadu_ps(g.as_ptr().add(i)));
        let t = _mm512_sub_ps(_mm512_mul_ps(vn, dxhat), vs1);
        let u = _mm512_mul_ps(_mm512_loadu_ps(xhat.as_ptr().add(i)), vs2);
        let r = _mm512_div_ps(_mm512_mul_ps(_mm512_sub_ps(t, u), vinv), vn);
        _mm512_storeu_ps(out.as_mut_ptr().add(i), r);
        i += 16;
    }
    for c in i..len {
        let dxhat = dy[c] * g[c];
        out[c] = (n * dxhat - sum_dxhat - xhat[c] * sum_dxhat_xhat) * inv_std / n;
    }
}

/// GELU inner term, mirroring the scalar rounding sequence (see
/// `avx2::gelu_u`).
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn gelu_u(x: __m512) -> __m512 {
    let c = _mm512_set1_ps(scalar::GELU_C);
    let s = _mm512_set1_ps(scalar::SQRT_2_OVER_PI);
    let cube_term = _mm512_mul_ps(_mm512_mul_ps(_mm512_mul_ps(c, x), x), x);
    _mm512_mul_ps(s, _mm512_add_ps(x, cube_term))
}

#[target_feature(enable = "avx512f")]
pub unsafe fn gelu(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    let n = out.len();
    let half = _mm512_set1_ps(0.5);
    let one = _mm512_set1_ps(1.0);
    let mut i = 0usize;
    while i + 16 <= n {
        let v = _mm512_loadu_ps(x.as_ptr().add(i));
        let t = tanh512(gelu_u(v));
        let r = _mm512_mul_ps(_mm512_mul_ps(half, v), _mm512_add_ps(one, t));
        _mm512_storeu_ps(out.as_mut_ptr().add(i), r);
        i += 16;
    }
    if i < n {
        scalar::gelu(&x[i..], &mut out[i..]);
    }
}

#[target_feature(enable = "avx512f")]
pub unsafe fn gelu_grad(x: &[f32], dy: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(x.len(), dy.len());
    let n = out.len();
    let half = _mm512_set1_ps(0.5);
    let one = _mm512_set1_ps(1.0);
    let s = _mm512_set1_ps(scalar::SQRT_2_OVER_PI);
    let c3 = _mm512_set1_ps(3.0 * scalar::GELU_C);
    let mut i = 0usize;
    while i + 16 <= n {
        let v = _mm512_loadu_ps(x.as_ptr().add(i));
        let t = tanh512(gelu_u(v));
        let du = _mm512_mul_ps(s, _mm512_add_ps(one, _mm512_mul_ps(_mm512_mul_ps(c3, v), v)));
        let a = _mm512_mul_ps(half, _mm512_add_ps(one, t));
        let b = _mm512_mul_ps(
            _mm512_mul_ps(_mm512_mul_ps(half, v), _mm512_sub_ps(one, _mm512_mul_ps(t, t))),
            du,
        );
        let r = _mm512_mul_ps(_mm512_add_ps(a, b), _mm512_loadu_ps(dy.as_ptr().add(i)));
        _mm512_storeu_ps(out.as_mut_ptr().add(i), r);
        i += 16;
    }
    if i < n {
        scalar::gelu_grad(&x[i..], &dy[i..], &mut out[i..]);
    }
}
