//! Scalar reference backend.
//!
//! These are the original kernel loops from `ops.rs` / `layers.rs`,
//! extracted verbatim. They define the reference semantics the SIMD
//! backends are validated against — keep them boring and obviously
//! correct; optimise in `avx2.rs` / `avx512.rs` instead.

/// `Σ aᵢ·bᵢ`, sequential accumulation (the `matmul_bt` inner loop).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// `Σ aᵢ·bᵢ·cᵢ`, sequential accumulation (LayerNorm backward row sum).
pub fn dot3(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i] * c[i];
    }
    acc
}

/// `Σ aᵢ`, sequential accumulation.
pub fn sum(a: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &v in a {
        acc += v;
    }
    acc
}

/// `Σ (aᵢ - mean)²`, sequential accumulation.
pub fn sum_sq_diff(a: &[f32], mean: f32) -> f32 {
    let mut acc = 0.0f32;
    for &v in a {
        let d = v - mean;
        acc += d * d;
    }
    acc
}

/// In-place `rowᵢ = exp(rowᵢ - max)`; returns the sum (the softmax
/// exponentiation pass).
pub fn exp_minus_max_sum(row: &mut [f32], max: f32) -> f32 {
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    sum
}

/// NaN-ignoring maximum folding from `-∞` (`f32::max` skips NaN operands).
pub fn max_ignore_nan(a: &[f32]) -> f32 {
    a.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
}

/// `dst += s · src` — one `mul` and one `add` rounding per element.
pub fn axpy(dst: &mut [f32], s: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (x, &y) in dst.iter_mut().zip(src) {
        *x += s * y;
    }
}

/// `out = a + b`.
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// `out = a - b`.
pub fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// `out = a ⊙ b`.
pub fn mul(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// `out = s · a`.
pub fn scale(a: &[f32], s: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    for (o, &x) in out.iter_mut().zip(a) {
        *o = x * s;
    }
}

/// `dst += src`.
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (x, &y) in dst.iter_mut().zip(src) {
        *x += y;
    }
}

/// `dst ⊙= src`.
pub fn mul_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (x, &y) in dst.iter_mut().zip(src) {
        *x *= y;
    }
}

/// `dst += a ⊙ b` — one `mul` and one `add` rounding per element.
pub fn mul_acc(dst: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    for ((x, &p), &q) in dst.iter_mut().zip(a).zip(b) {
        *x += p * q;
    }
}

/// `dst *= s`.
pub fn scale_assign(dst: &mut [f32], s: f32) {
    for x in dst.iter_mut() {
        *x *= s;
    }
}

/// `dst /= s` (true division — the softmax normalisation step).
pub fn div_assign(dst: &mut [f32], s: f32) {
    for x in dst.iter_mut() {
        *x /= s;
    }
}

/// `out = (a - mean) · inv_std`.
pub fn normalize(a: &[f32], mean: f32, inv_std: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    for (o, &v) in out.iter_mut().zip(a) {
        *o = (v - mean) * inv_std;
    }
}

/// LayerNorm input-gradient combine (see `ops::layer_norm_backward_into`).
#[allow(clippy::too_many_arguments)]
pub fn ln_grad_combine(
    dy: &[f32],
    g: &[f32],
    xhat: &[f32],
    sum_dxhat: f32,
    sum_dxhat_xhat: f32,
    inv_std: f32,
    out: &mut [f32],
) {
    let n = out.len() as f32;
    for c in 0..out.len() {
        let dxhat = dy[c] * g[c];
        out[c] = (n * dxhat - sum_dxhat - xhat[c] * sum_dxhat_xhat) * inv_std / n;
    }
}

/// Constant `√(2/π)` of the tanh GELU approximation.
pub const SQRT_2_OVER_PI: f32 = 0.797_884_56;
/// Cubic coefficient of the tanh GELU approximation.
pub const GELU_C: f32 = 0.044715;

/// Point-wise GELU (tanh approximation, as in PyTorch's transformer FFNs).
pub fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_C * x * x * x)).tanh())
}

/// Point-wise GELU derivative.
pub fn gelu_grad_scalar(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    let t = u.tanh();
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// `out = gelu(x)` element-wise.
pub fn gelu(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, &v) in out.iter_mut().zip(x) {
        *o = gelu_scalar(v);
    }
}

/// `out = gelu'(x) ⊙ dy`.
pub fn gelu_grad(x: &[f32], dy: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(x.len(), dy.len());
    for ((o, &v), &g) in out.iter_mut().zip(x).zip(dy) {
        *o = gelu_grad_scalar(v) * g;
    }
}
