//! Runtime-dispatched SIMD kernel backends.
//!
//! Every hot float kernel in this workspace bottoms out in the slice
//! primitives of this module: a [`Backend`] is picked **once** per process
//! (CPU-feature detection, overridable with `TORCHGT_BACKEND`) and threaded
//! through `ops`, `layers`, the attention kernels and the cluster-sparse
//! sub-block kernel. Three implementations exist:
//!
//! * [`scalar`] — the original loops, extracted verbatim. This is the
//!   reference semantics; the parity harness validates the others against it.
//! * `avx2` — 256-bit AVX2 + FMA intrinsics.
//! * `avx512` — 512-bit AVX-512F intrinsics.
//!
//! ## Parity policy
//!
//! Primitives fall in two classes, asserted by `tests/simd_parity.rs`:
//!
//! * **Bit-exact**: element-wise ops (`add`/`sub`/`mul`/`scale`/`axpy`/
//!   `mul_acc`/`normalize`/`div_assign`/`ln_grad_combine`) and the
//!   broadcast-accumulate matmuls built on `axpy`. SIMD lanes perform the
//!   same two-rounding `mul`+`add` sequence per element as the scalar loop
//!   (FMA is deliberately **not** used there), so results are identical to
//!   the last bit. `max_ignore_nan` is also bit-exact (max is exact and the
//!   NaN-ignoring operand order is preserved).
//! * **ULP-bounded**: reductions with vector accumulators (`dot`, `dot3`,
//!   `sum`, `sum_sq_diff`) change the association order, and transcendental
//!   kernels (`exp_minus_max_sum`, `gelu`, `gelu_grad`) use a polynomial
//!   `exp` instead of libm. Bounds are documented per kernel in DESIGN.md
//!   and enforced by the harness.

pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512;

use std::sync::OnceLock;

/// Environment variable overriding backend selection
/// (`scalar` | `avx2` | `avx512`).
pub const ENV_VAR: &str = "TORCHGT_BACKEND";

/// A SIMD instruction-set backend for the slice kernels. `Copy` so hot
/// loops capture it by value — dispatch is a branch on an enum, not an
/// atomic load.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Portable scalar reference implementation.
    Scalar,
    /// 256-bit AVX2 + FMA.
    Avx2,
    /// 512-bit AVX-512F.
    Avx512,
}

/// Dispatch a primitive to the selected backend module.
///
/// Safety of the `unsafe` arms: `Backend::Avx2` / `Backend::Avx512` values
/// are only handed out by [`Backend::parse`] / [`detect_best`] /
/// [`active`], all of which verify the required CPU features with
/// `is_x86_feature_detected!` first.
macro_rules! dispatch {
    ($self:ident, $f:ident ( $($arg:expr),* )) => {
        match $self {
            Backend::Scalar => scalar::$f($($arg),*),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::$f($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => unsafe { avx512::$f($($arg),*) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::$f($($arg),*),
        }
    };
}

impl Backend {
    /// Lower-case name as accepted by [`Backend::parse`] and reported in
    /// metrics.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }

    /// Whether the current CPU can execute this backend.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Parse a backend name, rejecting names this CPU cannot execute with a
    /// clear error (instead of letting an unsupported instruction SIGILL).
    pub fn parse(name: &str) -> Result<Backend, String> {
        let want = match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Backend::Scalar,
            "avx2" => Backend::Avx2,
            "avx512" => Backend::Avx512,
            other => {
                return Err(format!(
                    "unknown kernel backend `{other}`: expected one of scalar, avx2, avx512"
                ))
            }
        };
        if !want.is_supported() {
            return Err(format!(
                "kernel backend `{}` is not supported by this CPU (supported: {})",
                want.name(),
                supported_names().join(", ")
            ));
        }
        Ok(want)
    }

    // ---- reductions (ULP-bounded across backends) ----

    /// Dot product `Σ aᵢ·bᵢ`.
    #[inline]
    pub fn dot(self, a: &[f32], b: &[f32]) -> f32 {
        dispatch!(self, dot(a, b))
    }

    /// Triple product `Σ aᵢ·bᵢ·cᵢ`.
    #[inline]
    pub fn dot3(self, a: &[f32], b: &[f32], c: &[f32]) -> f32 {
        dispatch!(self, dot3(a, b, c))
    }

    /// Plain sum `Σ aᵢ`.
    #[inline]
    pub fn sum(self, a: &[f32]) -> f32 {
        dispatch!(self, sum(a))
    }

    /// `Σ (aᵢ - mean)²`.
    #[inline]
    pub fn sum_sq_diff(self, a: &[f32], mean: f32) -> f32 {
        dispatch!(self, sum_sq_diff(a, mean))
    }

    /// In-place `rowᵢ = exp(rowᵢ - max)`; returns the sum of the results.
    /// Entries below the exp underflow threshold flush to `0.0`; NaN entries
    /// stay NaN.
    #[inline]
    pub fn exp_minus_max_sum(self, row: &mut [f32], max: f32) -> f32 {
        dispatch!(self, exp_minus_max_sum(row, max))
    }

    // ---- exact kernels (bit-identical across backends) ----

    /// NaN-ignoring maximum, folding from `-∞` (empty slices yield `-∞`).
    #[inline]
    pub fn max_ignore_nan(self, a: &[f32]) -> f32 {
        dispatch!(self, max_ignore_nan(a))
    }

    /// `dst += s · src` (the matmul broadcast-accumulate step; no FMA).
    #[inline]
    pub fn axpy(self, dst: &mut [f32], s: f32, src: &[f32]) {
        dispatch!(self, axpy(dst, s, src))
    }

    /// `out = a + b`.
    #[inline]
    pub fn add(self, a: &[f32], b: &[f32], out: &mut [f32]) {
        dispatch!(self, add(a, b, out))
    }

    /// `out = a - b`.
    #[inline]
    pub fn sub(self, a: &[f32], b: &[f32], out: &mut [f32]) {
        dispatch!(self, sub(a, b, out))
    }

    /// `out = a ⊙ b`.
    #[inline]
    pub fn mul(self, a: &[f32], b: &[f32], out: &mut [f32]) {
        dispatch!(self, mul(a, b, out))
    }

    /// `out = s · a`.
    #[inline]
    pub fn scale(self, a: &[f32], s: f32, out: &mut [f32]) {
        dispatch!(self, scale(a, s, out))
    }

    /// `dst += src`.
    #[inline]
    pub fn add_assign(self, dst: &mut [f32], src: &[f32]) {
        dispatch!(self, add_assign(dst, src))
    }

    /// `dst ⊙= src`.
    #[inline]
    pub fn mul_assign(self, dst: &mut [f32], src: &[f32]) {
        dispatch!(self, mul_assign(dst, src))
    }

    /// `dst += a ⊙ b` (no FMA).
    #[inline]
    pub fn mul_acc(self, dst: &mut [f32], a: &[f32], b: &[f32]) {
        dispatch!(self, mul_acc(dst, a, b))
    }

    /// `dst *= s`.
    #[inline]
    pub fn scale_assign(self, dst: &mut [f32], s: f32) {
        dispatch!(self, scale_assign(dst, s))
    }

    /// `dst /= s` (true division — same rounding as the scalar loop).
    #[inline]
    pub fn div_assign(self, dst: &mut [f32], s: f32) {
        dispatch!(self, div_assign(dst, s))
    }

    /// `out = (a - mean) · inv_std` (LayerNorm normalisation step).
    #[inline]
    pub fn normalize(self, a: &[f32], mean: f32, inv_std: f32, out: &mut [f32]) {
        dispatch!(self, normalize(a, mean, inv_std, out))
    }

    /// LayerNorm input-gradient combine, bit-exact given the two row sums:
    /// `out = (n·dyᵢgᵢ - s₁ - x̂ᵢ·s₂) · inv_std / n`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn ln_grad_combine(
        self,
        dy: &[f32],
        g: &[f32],
        xhat: &[f32],
        sum_dxhat: f32,
        sum_dxhat_xhat: f32,
        inv_std: f32,
        out: &mut [f32],
    ) {
        dispatch!(self, ln_grad_combine(dy, g, xhat, sum_dxhat, sum_dxhat_xhat, inv_std, out))
    }

    // ---- transcendental kernels (ULP-bounded across backends) ----

    /// GELU forward (tanh approximation), element-wise.
    #[inline]
    pub fn gelu(self, x: &[f32], out: &mut [f32]) {
        dispatch!(self, gelu(x, out))
    }

    /// GELU backward: `out = gelu'(xᵢ) · dyᵢ`.
    #[inline]
    pub fn gelu_grad(self, x: &[f32], dy: &[f32], out: &mut [f32]) {
        dispatch!(self, gelu_grad(x, dy, out))
    }
}

/// The fastest backend this CPU supports: avx512 → avx2 → scalar.
pub fn detect_best() -> Backend {
    if Backend::Avx512.is_supported() {
        Backend::Avx512
    } else if Backend::Avx2.is_supported() {
        Backend::Avx2
    } else {
        Backend::Scalar
    }
}

/// All backends the current CPU can execute (always includes `Scalar`).
pub fn supported() -> Vec<Backend> {
    [Backend::Scalar, Backend::Avx2, Backend::Avx512]
        .into_iter()
        .filter(|b| b.is_supported())
        .collect()
}

/// Names of all supported backends.
pub fn supported_names() -> Vec<&'static str> {
    supported().into_iter().map(Backend::name).collect()
}

/// Resolve the backend from `TORCHGT_BACKEND` (empty/unset → detection).
pub fn from_env() -> Result<Backend, String> {
    match std::env::var(ENV_VAR) {
        Ok(s) if !s.trim().is_empty() => Backend::parse(&s),
        _ => Ok(detect_best()),
    }
}

/// The process-wide active backend, resolved once on first use. Entry
/// points that want a clean error should call [`from_env`] themselves
/// before touching any kernel; this accessor panics on an invalid override
/// because by the time a kernel runs there is no way to report it.
pub fn active() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        from_env().unwrap_or_else(|e| panic!("{e} (fix or unset {ENV_VAR})"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported_and_parseable() {
        assert!(Backend::Scalar.is_supported());
        assert_eq!(Backend::parse("scalar").unwrap(), Backend::Scalar);
        assert_eq!(Backend::parse(" SCALAR ").unwrap(), Backend::Scalar);
    }

    #[test]
    fn detect_best_is_supported_and_listed() {
        let best = detect_best();
        assert!(best.is_supported());
        assert!(supported().contains(&best));
        assert!(supported().contains(&Backend::Scalar));
    }

    #[test]
    fn unknown_backend_name_is_a_clear_error() {
        let err = Backend::parse("neon").unwrap_err();
        assert!(err.contains("unknown kernel backend"), "{err}");
        assert!(err.contains("scalar"), "error should list valid names: {err}");
    }

    #[test]
    fn unsupported_backend_is_rejected_not_sigill() {
        // On machines lacking some SIMD tier, requesting it must be a clean
        // Err naming the supported set. On machines that have every tier the
        // loop body is vacuous — the unknown-name case above still runs.
        for name in ["avx2", "avx512"] {
            let want = match name {
                "avx2" => Backend::Avx2,
                _ => Backend::Avx512,
            };
            if !want.is_supported() {
                let err = Backend::parse(name).unwrap_err();
                assert!(err.contains("not supported"), "{err}");
                assert!(err.contains("scalar"), "{err}");
            }
        }
    }

    #[test]
    fn active_backend_is_supported() {
        assert!(active().is_supported());
    }

    #[test]
    fn every_supported_backend_runs_a_smoke_kernel() {
        for be in supported() {
            let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.25 - 4.0).collect();
            let b: Vec<f32> = (0..37).map(|i| 2.0 - i as f32 * 0.125).collect();
            let d = be.dot(&a, &b);
            assert!(d.is_finite(), "{}: dot not finite", be.name());
            let mut out = vec![0.0f32; 37];
            be.add(&a, &b, &mut out);
            assert_eq!(out[3], a[3] + b[3], "{}", be.name());
        }
    }
}
