//! Borrowed matrix views.
//!
//! Multi-head attention packs all heads of Q/K/V into one `[s, d]` tensor and
//! works head-by-head on `[s, d_head]` column blocks. Copying each block out
//! (`slice_cols`) costs one allocation plus a full copy per head per layer per
//! pass; [`TensorView`] instead borrows the packed buffer with a row stride,
//! and the kernels accept any [`MatRef`] so a view and an owned [`Tensor`]
//! run through the same code path.

use crate::tensor::Tensor;

/// Read-only row-major matrix access — the input interface of the `_into`
/// kernels in [`crate::ops`]. Implemented by owned [`Tensor`]s and borrowed
/// [`TensorView`]s.
pub trait MatRef: Sync {
    /// Number of rows.
    fn rows(&self) -> usize;
    /// Number of columns.
    fn cols(&self) -> usize;
    /// Contiguous slice of row `r` (length [`MatRef::cols`]).
    fn row(&self, r: usize) -> &[f32];

    /// `(rows, cols)` pair.
    fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }
}

impl MatRef for Tensor {
    #[inline]
    fn rows(&self) -> usize {
        Tensor::rows(self)
    }

    #[inline]
    fn cols(&self) -> usize {
        Tensor::cols(self)
    }

    #[inline]
    fn row(&self, r: usize) -> &[f32] {
        Tensor::row(self, r)
    }
}

/// A zero-copy column-block view of a packed row-major tensor: row `r` is
/// `data[r * stride + offset .. r * stride + offset + cols]`. Created by
/// [`Tensor::view_cols`].
#[derive(Clone, Copy)]
pub struct TensorView<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
    stride: usize,
    offset: usize,
}

impl<'a> TensorView<'a> {
    /// Build a view over `data` with an explicit row stride and column
    /// offset. `data` must hold at least `rows * stride` elements and the
    /// block `[offset, offset + cols)` must lie within each stride.
    pub fn new(data: &'a [f32], rows: usize, cols: usize, stride: usize, offset: usize) -> Self {
        assert!(offset + cols <= stride, "view column block exceeds row stride");
        assert!(rows * stride <= data.len(), "view rows exceed backing buffer");
        Self { data, rows, cols, stride, offset }
    }

    /// Materialise the view as an owned tensor (copies; used by tests and
    /// cold paths only).
    pub fn to_tensor(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(self.row(r));
        }
        out
    }
}

impl MatRef for TensorView<'_> {
    #[inline]
    fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn row(&self, r: usize) -> &[f32] {
        let start = r * self.stride + self.offset;
        &self.data[start..start + self.cols]
    }
}

impl Tensor {
    /// Borrow the column range `[start, end)` as a zero-copy view — the
    /// non-allocating counterpart of [`Tensor::slice_cols`].
    pub fn view_cols(&self, start: usize, end: usize) -> TensorView<'_> {
        assert!(start <= end && end <= self.cols(), "view_cols range out of bounds");
        TensorView::new(self.data(), self.rows(), end - start, self.cols(), start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_cols_matches_slice_cols() {
        let t = Tensor::from_vec(3, 4, (0..12).map(|v| v as f32).collect());
        let v = t.view_cols(1, 3);
        let c = t.slice_cols(1, 3);
        assert_eq!(v.shape(), c.shape());
        for r in 0..3 {
            assert_eq!(v.row(r), c.row(r));
        }
        assert_eq!(v.to_tensor().data(), c.data());
    }

    #[test]
    fn full_width_view_is_the_tensor() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let v = t.view_cols(0, 3);
        for r in 0..2 {
            assert_eq!(v.row(r), t.row(r));
        }
    }

    #[test]
    fn empty_view_is_allowed() {
        let t = Tensor::zeros(2, 3);
        let v = t.view_cols(2, 2);
        assert_eq!(v.shape(), (2, 0));
        assert!(v.row(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "view_cols range out of bounds")]
    fn view_cols_rejects_overflow() {
        let t = Tensor::zeros(2, 3);
        let _ = t.view_cols(1, 4);
    }
}
