//! # torchgt-tensor
//!
//! A self-contained dense-tensor and training substrate for the TorchGT
//! reproduction.
//!
//! The TorchGT paper builds on PyTorch 2.1 + CUDA. This crate replaces that
//! substrate with a small, deterministic, CPU-parallel (rayon) tensor library
//! that provides exactly what graph-transformer training needs:
//!
//! * a row-major 2-D [`Tensor`] of `f32` with BLAS-free but parallel matmul,
//! * differentiable building blocks with explicit, hand-written backward
//!   passes ([`Linear`], [`LayerNorm`], [`Gelu`], [`Dropout`], [`Embedding`],
//!   row-wise softmax),
//! * learnable parameters with gradient buffers and an [`Adam`] / [`Sgd`]
//!   optimizer,
//! * emulated bfloat16 rounding ([`bf16`]) used to reproduce the paper's
//!   FP32-vs-BF16 accuracy comparison (Table VII),
//! * an allocation-free execution engine: a [`Workspace`] scratch-buffer
//!   arena, `_into` output-parameter kernels in [`ops`], and zero-copy
//!   [`TensorView`] column blocks over packed multi-head tensors.
//!
//! Everything is seeded explicitly, so training runs are reproducible
//! bit-for-bit on the same machine.

pub mod backend;
pub mod bf16;
pub mod checkpoint;
pub mod init;
pub mod layers;
pub mod ops;
pub mod optim;
pub mod param;
pub mod rng;
pub mod tensor;
pub mod view;
pub mod workspace;

pub use backend::Backend;
pub use bf16::{bf16_round, Precision};
pub use layers::{Dropout, Embedding, FeedForward, Gelu, LayerNorm, Linear, Relu};
pub use optim::{Adam, AdamConfig, Optimizer, Sgd};
pub use param::Param;
pub use tensor::Tensor;
pub use view::{MatRef, TensorView};
pub use workspace::{Workspace, WorkspaceStats};

/// Numerical-gradient checking utilities shared by the unit tests of this
/// crate and by downstream model tests.
pub mod gradcheck {
    use crate::tensor::Tensor;

    /// Central-difference numerical gradient of `f` with respect to `x`.
    ///
    /// `f` must be a pure function of its input. Used in tests to validate the
    /// hand-written backward passes.
    pub fn numerical_grad<F>(x: &Tensor, mut f: F, eps: f32) -> Tensor
    where
        F: FnMut(&Tensor) -> f32,
    {
        let mut grad = Tensor::zeros(x.rows(), x.cols());
        let mut probe = x.clone();
        for i in 0..x.len() {
            let orig = probe.data()[i];
            probe.data_mut()[i] = orig + eps;
            let plus = f(&probe);
            probe.data_mut()[i] = orig - eps;
            let minus = f(&probe);
            probe.data_mut()[i] = orig;
            grad.data_mut()[i] = (plus - minus) / (2.0 * eps);
        }
        grad
    }

    /// Maximum absolute difference between two tensors, for gradient-check
    /// assertions.
    pub fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
        assert_eq!(a.shape(), b.shape());
        a.data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }
}
