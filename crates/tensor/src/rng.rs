//! Deterministic RNG helpers.
//!
//! Every stochastic component in the reproduction takes an explicit `u64`
//! seed; this module centralises construction so seeding conventions stay in
//! one place.

use torchgt_compat::rng::rngs::SmallRng;
use torchgt_compat::rng::SeedableRng;

/// Build a [`SmallRng`] from a seed.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive a stream-specific seed from a base seed and a stream id, so that
/// e.g. per-layer initialisation streams do not overlap.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // SplitMix64 step: a well-distributed mix of base and stream.
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchgt_compat::rng::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..8 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_seeds_differ_across_streams() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        let s2 = derive_seed(8, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }
}
