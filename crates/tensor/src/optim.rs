//! Optimizers.
//!
//! Both Graphormer and GT train with Adam in the original papers; SGD is kept
//! as a simple baseline and for tests.

use crate::param::Param;

/// Interface over optimizers that update a set of parameters in place.
pub trait Optimizer {
    /// Apply one update step to every parameter, consuming the accumulated
    /// gradients (gradients are cleared after the step).
    fn step(&mut self, params: &mut [&mut Param]);
    /// Current learning rate.
    fn lr(&self) -> f32;
    /// Override the learning rate (used by warmup/decay schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Adam hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW-style); 0 disables it.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// The Adam optimizer with bias correction and optional decoupled weight
/// decay.
#[derive(Clone, Debug)]
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
}

impl Adam {
    /// Construct from a config.
    pub fn new(cfg: AdamConfig) -> Self {
        Self { cfg, t: 0 }
    }

    /// Construct with the default betas and the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        Self::new(AdamConfig { lr, ..AdamConfig::default() })
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Restore the step counter from a snapshot. Bias correction depends on
    /// `t`, so a resumed run must set this alongside the per-parameter
    /// moment buffers for updates to match the uninterrupted run exactly.
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// The hyper-parameters this optimizer was built with.
    pub fn config(&self) -> AdamConfig {
        self.cfg
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let t = self.t as f32;
        let c = &self.cfg;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);
        for p in params.iter_mut() {
            let n = p.value.len();
            for i in 0..n {
                let g = p.grad.data()[i];
                let m = c.beta1 * p.m.data()[i] + (1.0 - c.beta1) * g;
                let v = c.beta2 * p.v.data()[i] + (1.0 - c.beta2) * g * g;
                p.m.data_mut()[i] = m;
                p.v.data_mut()[i] = v;
                let mhat = m / bias1;
                let vhat = v / bias2;
                let mut upd = c.lr * mhat / (vhat.sqrt() + c.eps);
                if c.weight_decay > 0.0 {
                    upd += c.lr * c.weight_decay * p.value.data()[i];
                }
                p.value.data_mut()[i] -= upd;
            }
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
}

impl Sgd {
    /// Construct with learning rate `lr` and momentum coefficient
    /// (`0.0` disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let n = p.value.len();
            for i in 0..n {
                let g = p.grad.data()[i];
                // Reuse the Adam `m` buffer as the momentum buffer.
                let vel = self.momentum * p.m.data()[i] + g;
                p.m.data_mut()[i] = vel;
                p.value.data_mut()[i] -= self.lr * vel;
            }
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Linear-warmup then inverse-square-root decay schedule, as used by
/// Graphormer's training recipe.
#[derive(Clone, Copy, Debug)]
pub struct WarmupSchedule {
    /// Peak learning rate reached at the end of warmup.
    pub peak_lr: f32,
    /// Number of warmup steps.
    pub warmup: u64,
}

impl WarmupSchedule {
    /// Learning rate at step `t` (1-based).
    pub fn lr_at(&self, t: u64) -> f32 {
        if self.warmup == 0 {
            return self.peak_lr;
        }
        if t <= self.warmup {
            self.peak_lr * t as f32 / self.warmup as f32
        } else {
            self.peak_lr * (self.warmup as f32 / t as f32).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Minimise f(x) = x² with Adam; it should get close to zero.
    #[test]
    fn adam_minimises_quadratic() {
        let mut p = Param::new(Tensor::full(1, 1, 5.0));
        let mut opt = Adam::with_lr(0.1);
        for _ in 0..300 {
            let x = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * x);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.get(0, 0).abs() < 1e-2, "x = {}", p.value.get(0, 0));
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut p = Param::new(Tensor::full(1, 1, 5.0));
        let mut opt = Sgd::new(0.1, 0.9);
        for _ in 0..200 {
            let x = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * x);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.get(0, 0).abs() < 1e-2);
    }

    #[test]
    fn adam_clears_grads_after_step() {
        let mut p = Param::new(Tensor::full(1, 2, 1.0));
        p.grad = Tensor::full(1, 2, 3.0);
        let mut opt = Adam::with_lr(0.01);
        opt.step(&mut [&mut p]);
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn weight_decay_shrinks_params_without_grad() {
        let mut p = Param::new(Tensor::full(1, 1, 1.0));
        let mut opt =
            Adam::new(AdamConfig { lr: 0.1, weight_decay: 0.5, ..AdamConfig::default() });
        opt.step(&mut [&mut p]);
        assert!(p.value.get(0, 0) < 1.0);
    }

    #[test]
    fn warmup_schedule_shape() {
        let s = WarmupSchedule { peak_lr: 1.0, warmup: 10 };
        assert!((s.lr_at(5) - 0.5).abs() < 1e-6);
        assert!((s.lr_at(10) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(40) < s.lr_at(10));
        assert!((s.lr_at(40) - 0.5).abs() < 1e-6); // sqrt(10/40) = 0.5
    }
}

/// Clip gradients by global L2 norm: if `‖g‖ > max_norm`, scale every
/// gradient by `max_norm / ‖g‖`. Returns the pre-clip norm.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad.data().iter().map(|v| v * v).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params.iter_mut() {
            for v in p.grad.data_mut() {
                *v *= scale;
            }
        }
    }
    total
}

#[cfg(test)]
mod clip_tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn clips_only_when_above_threshold() {
        let mut p = Param::new(Tensor::zeros(1, 2));
        p.grad = Tensor::from_vec(1, 2, vec![3.0, 4.0]); // norm 5
        let norm = clip_grad_norm(&mut [&mut p], 10.0);
        assert_eq!(norm, 5.0);
        assert_eq!(p.grad.data(), &[3.0, 4.0], "below threshold: untouched");
        let norm = clip_grad_norm(&mut [&mut p], 1.0);
        assert_eq!(norm, 5.0);
        let clipped: f32 = p.grad.data().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((clipped - 1.0).abs() < 1e-6);
    }

    #[test]
    fn norm_spans_multiple_params() {
        let mut a = Param::new(Tensor::zeros(1, 1));
        let mut b = Param::new(Tensor::zeros(1, 1));
        a.grad = Tensor::from_vec(1, 1, vec![3.0]);
        b.grad = Tensor::from_vec(1, 1, vec![4.0]);
        let norm = clip_grad_norm(&mut [&mut a, &mut b], 100.0);
        assert!((norm - 5.0).abs() < 1e-6);
    }
}
