//! Weight initialisation schemes.

use crate::rng::rng;
use crate::tensor::Tensor;
use torchgt_compat::rng::Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, -a, a, seed)
}

/// Uniform initialisation in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut r = rng(seed);
    let data = (0..rows * cols).map(|_| r.gen_range(lo..hi)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Gaussian initialisation `N(mean, std²)` via Box–Muller.
pub fn normal(rows: usize, cols: usize, mean: f32, std: f32, seed: u64) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    normal_into(mean, std, seed, &mut t);
    t
}

/// Fill an existing tensor with `N(mean, std²)` draws — same sequence as
/// [`normal`] at equal seed, but reusing the caller's buffer (e.g. a
/// workspace checkout).
pub fn normal_into(mean: f32, std: f32, seed: u64, out: &mut Tensor) {
    let mut r = rng(seed);
    let n = out.len();
    let data = out.data_mut();
    let mut i = 0;
    while i < n {
        let u1: f32 = r.gen_range(f32::EPSILON..1.0);
        let u2: f32 = r.gen_range(0.0..1.0);
        let mag = (-2.0 * u1.ln()).sqrt();
        let z0 = mag * (2.0 * std::f32::consts::PI * u2).cos();
        let z1 = mag * (2.0 * std::f32::consts::PI * u2).sin();
        data[i] = mean + std * z0;
        i += 1;
        if i < n {
            data[i] = mean + std * z1;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let t = xavier_uniform(64, 64, 1);
        let a = (6.0 / 128.0f32).sqrt();
        assert!(t.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn normal_has_expected_moments() {
        let t = normal(100, 100, 1.0, 2.0, 3);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.2, "var was {var}");
    }

    #[test]
    fn init_is_deterministic() {
        assert_eq!(uniform(4, 4, -1.0, 1.0, 9).data(), uniform(4, 4, -1.0, 1.0, 9).data());
        assert_ne!(uniform(4, 4, -1.0, 1.0, 9).data(), uniform(4, 4, -1.0, 1.0, 10).data());
    }
}
