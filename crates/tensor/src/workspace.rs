//! A checkout/return scratch-buffer arena.
//!
//! The training hot loop needs the same handful of intermediate shapes every
//! step — `[s, d]` activations, `[s, s]` score matrices, per-edge and per-row
//! scratch. [`Workspace`] pools them: `take` hands out a zeroed tensor
//! (recycled when a buffer of that shape was returned earlier, freshly
//! allocated otherwise) and `give` returns it for the next step. Once the
//! pools are warm a steady-state step performs zero tensor allocations, and
//! the [`WorkspaceStats`] counters make that measurable: trainers export the
//! per-step `alloc_bytes` delta as a gauge so regressions show up in
//! `--metrics` output.

use crate::tensor::Tensor;
use std::collections::HashMap;

/// Cumulative counters of a [`Workspace`]. Snapshot before and after a step
/// and subtract to get per-step figures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Bytes freshly allocated because no pooled buffer matched (pool
    /// misses). Zero across a step means the step ran allocation-free.
    pub alloc_bytes: u64,
    /// Checkouts served by recycling a pooled buffer.
    pub reuse_hits: u64,
    /// Total checkouts (`take` + `take_buf` calls).
    pub checkouts: u64,
    /// High-water mark of bytes simultaneously checked out.
    pub high_water_bytes: u64,
}

/// A shape-keyed free-list arena for [`Tensor`]s and raw `f32` buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    tensors: HashMap<(usize, usize), Vec<Tensor>>,
    bufs: HashMap<usize, Vec<Vec<f32>>>,
    stats: WorkspaceStats,
    out_bytes: u64,
}

impl Workspace {
    /// An empty arena; pools fill lazily as buffers are returned.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a zeroed `rows × cols` tensor — bit-identical to
    /// `Tensor::zeros(rows, cols)`, recycled when possible.
    pub fn take(&mut self, rows: usize, cols: usize) -> Tensor {
        self.stats.checkouts += 1;
        let bytes = (rows * cols * std::mem::size_of::<f32>()) as u64;
        self.out_bytes += bytes;
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(self.out_bytes);
        if let Some(mut t) = self.tensors.get_mut(&(rows, cols)).and_then(Vec::pop) {
            self.stats.reuse_hits += 1;
            t.fill_zero();
            t
        } else {
            self.stats.alloc_bytes += bytes;
            Tensor::zeros(rows, cols)
        }
    }

    /// Return a tensor to the pool for a later [`Workspace::take`] of the
    /// same shape.
    pub fn give(&mut self, t: Tensor) {
        let bytes = (t.len() * std::mem::size_of::<f32>()) as u64;
        self.out_bytes = self.out_bytes.saturating_sub(bytes);
        self.tensors.entry(t.shape()).or_default().push(t);
    }

    /// Check out a zeroed `len`-element scratch buffer — the raw-`Vec`
    /// counterpart of [`Workspace::take`] for per-edge / per-row scratch.
    pub fn take_buf(&mut self, len: usize) -> Vec<f32> {
        self.stats.checkouts += 1;
        let bytes = (len * std::mem::size_of::<f32>()) as u64;
        self.out_bytes += bytes;
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(self.out_bytes);
        if let Some(mut b) = self.bufs.get_mut(&len).and_then(Vec::pop) {
            self.stats.reuse_hits += 1;
            b.iter_mut().for_each(|v| *v = 0.0);
            b
        } else {
            self.stats.alloc_bytes += bytes;
            vec![0.0; len]
        }
    }

    /// Return a scratch buffer to the pool.
    pub fn give_buf(&mut self, b: Vec<f32>) {
        let bytes = (b.len() * std::mem::size_of::<f32>()) as u64;
        self.out_bytes = self.out_bytes.saturating_sub(bytes);
        self.bufs.entry(b.len()).or_default().push(b);
    }

    /// Current counter values.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Buffers currently sitting in the pools (not checked out).
    pub fn pooled(&self) -> usize {
        self.tensors.values().map(Vec::len).sum::<usize>()
            + self.bufs.values().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_like_tensor_zeros() {
        let mut ws = Workspace::new();
        let mut t = ws.take(2, 3);
        assert_eq!(t, Tensor::zeros(2, 3));
        t.data_mut().iter_mut().for_each(|v| *v = 7.0);
        ws.give(t);
        // The recycled buffer comes back zeroed even though it was dirty.
        let t2 = ws.take(2, 3);
        assert_eq!(t2, Tensor::zeros(2, 3));
    }

    #[test]
    fn reuse_only_after_give_and_only_same_shape() {
        let mut ws = Workspace::new();
        let a = ws.take(4, 4);
        let b = ws.take(4, 4); // a is still out: second take must allocate
        assert_eq!(ws.stats().reuse_hits, 0);
        ws.give(a);
        ws.give(b);
        let _c = ws.take(4, 4);
        assert_eq!(ws.stats().reuse_hits, 1);
        let _d = ws.take(4, 5); // different shape: pool miss
        assert_eq!(ws.stats().reuse_hits, 1);
        assert_eq!(ws.stats().checkouts, 4);
    }

    #[test]
    fn alloc_bytes_goes_quiet_once_warm() {
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let t = ws.take(8, 8);
            let b = ws.take_buf(16);
            ws.give(t);
            ws.give_buf(b);
        }
        let warm = ws.stats().alloc_bytes;
        assert_eq!(warm, (8 * 8 + 16) * 4);
        let t = ws.take(8, 8);
        let b = ws.take_buf(16);
        ws.give(t);
        ws.give_buf(b);
        assert_eq!(ws.stats().alloc_bytes, warm, "warm steps must not allocate");
    }

    #[test]
    fn bufs_come_back_zeroed() {
        let mut ws = Workspace::new();
        let mut b = ws.take_buf(5);
        b.fill(3.0);
        ws.give_buf(b);
        assert_eq!(ws.take_buf(5), vec![0.0; 5]);
    }

    #[test]
    fn high_water_tracks_peak_checkout() {
        let mut ws = Workspace::new();
        let a = ws.take(1, 8); // 32 bytes out
        let b = ws.take(1, 8); // 64 bytes out — the peak
        ws.give(a);
        ws.give(b);
        let _ = ws.take(1, 8); // back to 32 out
        assert_eq!(ws.stats().high_water_bytes, 64);
        assert_eq!(ws.pooled(), 1);
    }
}
