//! Learnable parameters.

use crate::tensor::Tensor;

/// A learnable parameter: a value tensor, its gradient accumulator and the
/// Adam moment buffers.
///
/// Gradients are *accumulated* by backward passes and cleared explicitly by
/// [`Param::zero_grad`] (or by the optimizer after a step), mirroring the
/// PyTorch convention the paper's artifact relies on.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Adam first-moment estimate.
    pub m: Tensor,
    /// Adam second-moment estimate.
    pub v: Tensor,
}

impl Param {
    /// Wrap an initial value as a learnable parameter.
    pub fn new(value: Tensor) -> Self {
        let (r, c) = value.shape();
        Self { value, grad: Tensor::zeros(r, c), m: Tensor::zeros(r, c), v: Tensor::zeros(r, c) }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Accumulate a gradient contribution.
    pub fn accumulate(&mut self, g: &Tensor) {
        assert_eq!(self.value.shape(), g.shape(), "gradient shape mismatch");
        crate::ops::add_inplace(&mut self.grad, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new(Tensor::zeros(2, 2));
        let g = Tensor::full(2, 2, 1.5);
        p.accumulate(&g);
        p.accumulate(&g);
        assert_eq!(p.grad.data(), &[3.0; 4]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn accumulate_rejects_shape_mismatch() {
        let mut p = Param::new(Tensor::zeros(2, 2));
        p.accumulate(&Tensor::zeros(1, 4));
    }
}
