//! The core 2-D row-major `f32` tensor.
//!
//! Graph-transformer training only ever manipulates matrices shaped
//! `[sequence, hidden]`, `[hidden, hidden]` or `[sequence, sequence]`, so a
//! 2-D tensor keeps the substrate simple without losing generality. Vectors
//! are represented as `1 × n` tensors.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Create a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Create a tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { data: vec![value; rows * cols], rows, cols }
    }

    /// Create a tensor from an existing buffer. Panics if the buffer length
    /// does not match `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { data, rows, cols }
    }

    /// Create a `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self { data, rows: 1, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Reinterpret the buffer with a new shape (same element count).
    pub fn reshape(mut self, rows: usize, cols: usize) -> Self {
        assert_eq!(rows * cols, self.data.len(), "reshape element count mismatch");
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Copy the rows listed in `indices` into a new tensor (a gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Scatter-add rows of `src` into this tensor at positions `indices`.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Tensor) {
        assert_eq!(indices.len(), src.rows());
        assert_eq!(self.cols, src.cols());
        for (s, &dst) in indices.iter().enumerate() {
            let row = self.row_mut(dst);
            for (a, b) in row.iter_mut().zip(src.row(s)) {
                *a += b;
            }
        }
    }

    /// Vertically stack tensors that share a column count.
    pub fn vstack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor { data, rows, cols }
    }

    /// Horizontally concatenate tensors that share a row count.
    pub fn hstack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack row mismatch");
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Extract the row range `[start, end)` as a new tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.rows);
        let data = self.data[start * self.cols..end * self.cols].to_vec();
        Tensor { data, rows: end - start, cols: self.cols }
    }

    /// Extract the column range `[start, end)` as a new tensor.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.cols);
        let mut out = Tensor::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(2, 3);
        t.set(1, 2, 7.5);
        assert_eq!(t.get(1, 2), 7.5);
        assert_eq!(t.row(1), &[0.0, 0.0, 7.5]);
    }

    #[test]
    fn from_vec_layout_is_row_major() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn gather_then_scatter_add_is_identity_on_distinct_rows() {
        let t = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let picked = t.gather_rows(&[2, 0]);
        assert_eq!(picked.row(0), &[5., 6.]);
        assert_eq!(picked.row(1), &[1., 2.]);
        let mut acc = Tensor::zeros(3, 2);
        acc.scatter_add_rows(&[2, 0], &picked);
        assert_eq!(acc.row(2), &[5., 6.]);
        assert_eq!(acc.row(0), &[1., 2.]);
        assert_eq!(acc.row(1), &[0., 0.]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Tensor::from_vec(1, 2, vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let s = Tensor::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5., 6.]);
    }

    #[test]
    fn hstack_concatenates_cols() {
        let a = Tensor::from_vec(2, 1, vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let s = Tensor::hstack(&[&a, &b]);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.row(0), &[1., 3., 4.]);
        assert_eq!(s.row(1), &[2., 5., 6.]);
    }

    #[test]
    fn slice_rows_and_cols() {
        let t = Tensor::from_vec(3, 3, (0..9).map(|v| v as f32).collect());
        let r = t.slice_rows(1, 3);
        assert_eq!(r.shape(), (2, 3));
        assert_eq!(r.row(0), &[3., 4., 5.]);
        let c = t.slice_cols(1, 2);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.data(), &[1., 4., 7.]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(1, 4, vec![1., 2., 3., 4.]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!((t.norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(2, 3, (0..6).map(|v| v as f32).collect());
        let r = t.reshape(3, 2);
        assert_eq!(r.get(2, 1), 5.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(1, 2);
        assert!(!t.has_non_finite());
        t.set(0, 1, f32::NAN);
        assert!(t.has_non_finite());
    }
}
