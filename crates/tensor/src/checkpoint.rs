//! Parameter checkpointing: save/restore a model's parameters to a compact
//! binary format (a release-grade training system needs restartable runs).
//!
//! Format: magic `TGT1`, little-endian; per tensor `rows: u64, cols: u64,
//! data: f32 × (rows·cols)`. Only parameter *values* are stored — optimizer
//! moments are reconstructed by continued training, as in common practice
//! for inference checkpoints.

use crate::param::Param;
use crate::tensor::Tensor;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"TGT1";

/// Serialise parameters to a writer.
pub fn save_params_to<W: Write>(params: &[&Param], mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in params {
        let (r, c) = p.value.shape();
        w.write_all(&(r as u64).to_le_bytes())?;
        w.write_all(&(c as u64).to_le_bytes())?;
        for v in p.value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialise parameters from a reader into an existing parameter set
/// (shapes must match the checkpoint exactly).
pub fn load_params_from<R: Read>(params: &mut [&mut Param], mut r: R) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint magic"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8) as usize;
    if count != params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint has {count} tensors, model has {}", params.len()),
        ));
    }
    for p in params.iter_mut() {
        r.read_exact(&mut buf8)?;
        let rows = u64::from_le_bytes(buf8) as usize;
        r.read_exact(&mut buf8)?;
        let cols = u64::from_le_bytes(buf8) as usize;
        if (rows, cols) != p.value.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch: checkpoint {rows}x{cols}, model {:?}", p.value.shape()),
            ));
        }
        let mut data = vec![0.0f32; rows * cols];
        let mut buf4 = [0u8; 4];
        for v in data.iter_mut() {
            r.read_exact(&mut buf4)?;
            *v = f32::from_le_bytes(buf4);
        }
        p.value = Tensor::from_vec(rows, cols, data);
    }
    Ok(())
}

/// Save parameters to a file.
pub fn save_params(params: &[&Param], path: &Path) -> io::Result<()> {
    save_params_to(params, BufWriter::new(File::create(path)?))
}

/// Load parameters from a file.
pub fn load_params(params: &mut [&mut Param], path: &Path) -> io::Result<()> {
    load_params_from(params, BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn sample_params() -> Vec<Param> {
        vec![
            Param::new(init::normal(3, 4, 0.0, 1.0, 1)),
            Param::new(init::normal(1, 7, 0.0, 1.0, 2)),
        ]
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = sample_params();
        let mut buf = Vec::new();
        let refs: Vec<&Param> = src.iter().collect();
        save_params_to(&refs, &mut buf).unwrap();
        let mut dst = vec![Param::new(Tensor::zeros(3, 4)), Param::new(Tensor::zeros(1, 7))];
        {
            let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
            load_params_from(&mut refs, buf.as_slice()).unwrap();
        }
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.value.data(), b.value.data());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = sample_params();
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        let err = load_params_from(&mut refs, &b"NOPE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let src = sample_params();
        let mut buf = Vec::new();
        let refs: Vec<&Param> = src.iter().collect();
        save_params_to(&refs, &mut buf).unwrap();
        let mut dst = vec![Param::new(Tensor::zeros(4, 3)), Param::new(Tensor::zeros(1, 7))];
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        assert!(load_params_from(&mut refs, buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let src = sample_params();
        let mut buf = Vec::new();
        let refs: Vec<&Param> = src.iter().collect();
        save_params_to(&refs, &mut buf).unwrap();
        let mut dst = vec![Param::new(Tensor::zeros(3, 4))];
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        assert!(load_params_from(&mut refs, buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("torchgt_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.tgt");
        let src = sample_params();
        let refs: Vec<&Param> = src.iter().collect();
        save_params(&refs, &path).unwrap();
        let mut dst = vec![Param::new(Tensor::zeros(3, 4)), Param::new(Tensor::zeros(1, 7))];
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        load_params(&mut refs, &path).unwrap();
        assert_eq!(src[1].value.data(), dst[1].value.data());
        let _ = std::fs::remove_file(&path);
    }
}
