//! Parameter checkpointing: save/restore a model's parameters to a compact
//! binary format (a release-grade training system needs restartable runs).
//!
//! Format: magic `TGT1`, little-endian; per tensor `rows: u64, cols: u64,
//! data: f32 × (rows·cols)`. Only parameter *values* are stored — optimizer
//! moments are reconstructed by continued training, as in common practice
//! for inference checkpoints. Full-training-state snapshots (moments, RNG,
//! tuner ladder) live in the `torchgt-ckpt` crate, which builds on the
//! bulk-I/O helpers here.

use crate::param::Param;
use crate::tensor::Tensor;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"TGT1";

/// Serialise an f32 slice as packed little-endian bytes in one write.
pub fn write_f32s<W: Write>(w: &mut W, data: &[f32]) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&bytes)
}

/// Deserialise `n` packed little-endian f32s in one read.
pub fn read_f32s<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<f32>> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    let mut data = Vec::with_capacity(n);
    for chunk in bytes.chunks_exact(4) {
        data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    Ok(data)
}

/// Error if the reader still has bytes left (a valid checkpoint ends exactly
/// at the last tensor; trailing garbage means truncated/concatenated files).
pub fn expect_eof<R: Read>(r: &mut R) -> io::Result<()> {
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(()),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing garbage after last tensor",
        )),
    }
}

/// Serialise parameters to a writer.
pub fn save_params_to<W: Write>(params: &[&Param], mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in params {
        let (r, c) = p.value.shape();
        w.write_all(&(r as u64).to_le_bytes())?;
        w.write_all(&(c as u64).to_le_bytes())?;
        write_f32s(&mut w, p.value.data())?;
    }
    Ok(())
}

/// Deserialise parameters from a reader into an existing parameter set
/// (shapes must match the checkpoint exactly).
///
/// Loading is staged: every tensor is read and validated before any
/// parameter is touched, so a mid-stream error (truncation, shape mismatch
/// on tensor k>0, trailing garbage) leaves the model untouched rather than
/// half-overwritten.
pub fn load_params_from<R: Read>(params: &mut [&mut Param], mut r: R) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint magic"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8) as usize;
    if count != params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint has {count} tensors, model has {}", params.len()),
        ));
    }
    // Stage: read everything into fresh tensors first.
    let mut staged = Vec::with_capacity(count);
    for p in params.iter() {
        r.read_exact(&mut buf8)?;
        let rows = u64::from_le_bytes(buf8) as usize;
        r.read_exact(&mut buf8)?;
        let cols = u64::from_le_bytes(buf8) as usize;
        if (rows, cols) != p.value.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch: checkpoint {rows}x{cols}, model {:?}", p.value.shape()),
            ));
        }
        let data = read_f32s(&mut r, rows * cols)?;
        staged.push(Tensor::from_vec(rows, cols, data));
    }
    expect_eof(&mut r)?;
    // Commit: only reached when the whole stream validated.
    for (p, t) in params.iter_mut().zip(staged) {
        p.value = t;
    }
    Ok(())
}

/// Save parameters to a file.
pub fn save_params(params: &[&Param], path: &Path) -> io::Result<()> {
    save_params_to(params, BufWriter::new(File::create(path)?))
}

/// Load parameters from a file.
pub fn load_params(params: &mut [&mut Param], path: &Path) -> io::Result<()> {
    load_params_from(params, BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn sample_params() -> Vec<Param> {
        vec![
            Param::new(init::normal(3, 4, 0.0, 1.0, 1)),
            Param::new(init::normal(1, 7, 0.0, 1.0, 2)),
        ]
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = sample_params();
        let mut buf = Vec::new();
        let refs: Vec<&Param> = src.iter().collect();
        save_params_to(&refs, &mut buf).unwrap();
        let mut dst = vec![Param::new(Tensor::zeros(3, 4)), Param::new(Tensor::zeros(1, 7))];
        {
            let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
            load_params_from(&mut refs, buf.as_slice()).unwrap();
        }
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.value.data(), b.value.data());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = sample_params();
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        let err = load_params_from(&mut refs, &b"NOPE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let src = sample_params();
        let mut buf = Vec::new();
        let refs: Vec<&Param> = src.iter().collect();
        save_params_to(&refs, &mut buf).unwrap();
        let mut dst = vec![Param::new(Tensor::zeros(4, 3)), Param::new(Tensor::zeros(1, 7))];
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        assert!(load_params_from(&mut refs, buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let src = sample_params();
        let mut buf = Vec::new();
        let refs: Vec<&Param> = src.iter().collect();
        save_params_to(&refs, &mut buf).unwrap();
        let mut dst = vec![Param::new(Tensor::zeros(3, 4))];
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        assert!(load_params_from(&mut refs, buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_leaves_params_untouched() {
        let src = sample_params();
        let mut buf = Vec::new();
        let refs: Vec<&Param> = src.iter().collect();
        save_params_to(&refs, &mut buf).unwrap();
        buf.truncate(buf.len() - 3); // cut into the last tensor's data
        let mut dst = vec![Param::new(Tensor::full(3, 4, 9.0)), Param::new(Tensor::full(1, 7, 9.0))];
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        assert!(load_params_from(&mut refs, buf.as_slice()).is_err());
        // Neither tensor was mutated — not even the first, fully-read one.
        assert!(dst.iter().all(|p| p.value.data().iter().all(|&v| v == 9.0)));
    }

    #[test]
    fn late_shape_mismatch_leaves_params_untouched() {
        let src = sample_params();
        let mut buf = Vec::new();
        let refs: Vec<&Param> = src.iter().collect();
        save_params_to(&refs, &mut buf).unwrap();
        // First shape matches, second does not.
        let mut dst = vec![Param::new(Tensor::full(3, 4, 9.0)), Param::new(Tensor::full(7, 1, 9.0))];
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        assert!(load_params_from(&mut refs, buf.as_slice()).is_err());
        assert!(dst[0].value.data().iter().all(|&v| v == 9.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let src = sample_params();
        let mut buf = Vec::new();
        let refs: Vec<&Param> = src.iter().collect();
        save_params_to(&refs, &mut buf).unwrap();
        buf.push(0xAB);
        let mut dst = vec![Param::new(Tensor::zeros(3, 4)), Param::new(Tensor::zeros(1, 7))];
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        let err = load_params_from(&mut refs, buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(dst[0].value.data().iter().all(|&v| v == 0.0), "no partial commit");
    }

    #[test]
    fn bulk_f32_io_roundtrip() {
        let data = vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE, 1e30];
        let mut buf = Vec::new();
        write_f32s(&mut buf, &data).unwrap();
        assert_eq!(buf.len(), data.len() * 4);
        let back = read_f32s(&mut buf.as_slice(), data.len()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("torchgt_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.tgt");
        let src = sample_params();
        let refs: Vec<&Param> = src.iter().collect();
        save_params(&refs, &path).unwrap();
        let mut dst = vec![Param::new(Tensor::zeros(3, 4)), Param::new(Tensor::zeros(1, 7))];
        let mut refs: Vec<&mut Param> = dst.iter_mut().collect();
        load_params(&mut refs, &path).unwrap();
        assert_eq!(src[1].value.data(), dst[1].value.data());
        let _ = std::fs::remove_file(&path);
    }
}
