//! # torchgt-faults
//!
//! The unified, seeded fault-injection plane. `torchgt-comm` pioneered the
//! discipline for the collectives: every injected fault is a **pure
//! function of `(seed, key, op index, salt)`**, so a faulty run replays
//! bit-identically and a recovery path proven against one seed stays
//! proven forever. This crate generalizes that discipline into one plane
//! with three domains:
//!
//! * **comm** — the collective-fabric parameters ([`CommFaultSpec`]);
//!   `torchgt_comm::FaultPlan` is built from them via
//!   `FaultPlan::from_spec`, and comm's per-op decision function now lives
//!   here ([`decide`]).
//! * **disk** — transient read errors, torn (short) reads, bit flips, and
//!   injected latency on file reads ([`DiskFaultPlan`]), keyed by
//!   `(path hash, per-path op index)` the way comm faults are keyed by
//!   `(rank, op)`. [`read_file`] is the single choke point the `TGDS` /
//!   `TGTS` / `TGTF` readers route through.
//! * **serve** — burst arrivals and a slow executor ([`ServeFaultPlan`]),
//!   keyed by client/batch indices.
//!
//! A whole plan parses from one spec string (`TORCHGT_FAULTS=<spec>` /
//! `--faults <spec>`; see [`FaultSpec::parse`] for the grammar) and
//! installs process-globally via [`install`]. **Zero-cost-by-default**: the
//! accessors check one relaxed atomic and return `None` when nothing is
//! installed, so hot paths pay a single predictable branch.
//!
//! The crate also hosts [`backoff_s`], the seeded jittered exponential
//! backoff the elastic recovery ladder uses — shared here so the disk
//! retry loops wait exactly the way rank-recovery retries do.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Environment variable carrying the fault-plan spec string.
pub const ENV_VAR: &str = "TORCHGT_FAULTS";

/// Salt namespace offsets so each decision stream is independent.
pub const SALT_DELAY: u64 = 1;
/// Salt for drop decisions (comm; combined with the attempt number).
pub const SALT_DROP: u64 = 2;
const SALT_DISK_ERR: u64 = 11;
const SALT_DISK_TORN: u64 = 12;
const SALT_DISK_FLIP: u64 = 13;
const SALT_DISK_DELAY: u64 = 14;
const SALT_SERVE_SLOW: u64 = 21;
const SALT_SERVE_BURST: u64 = 22;

/// Deterministic fault decision: a pure hash of `(seed, key, op, salt)`
/// mapped to `[0, 1)` and compared against `prob`. The comm domain passes
/// the rank as `key`; the disk domain passes a path hash.
pub fn decide(seed: u64, key: u64, op: u64, salt: u64, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    if prob >= 1.0 {
        return true;
    }
    let mut state = seed
        ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ op.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ salt.wrapping_mul(0x1656_67B1_9E37_79F9);
    let x = torchgt_compat::rng::splitmix64(&mut state);
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    unit < prob
}

/// Seeded jittered exponential backoff: `base * 2^(attempt-1)` scaled by a
/// deterministic jitter factor in `[0.5, 1.5)` drawn from
/// `(seed, attempt)`. Pure — a replayed run waits identically. Attempt 0
/// (the first try) waits nothing. This is the exact formula
/// `torchgt_runtime::RecoveryPolicy::backoff_s` has always used; the
/// policy now delegates here so disk-retry loops share it.
pub fn backoff_s(seed: u64, base_s: f64, attempt: usize) -> f64 {
    if base_s <= 0.0 || attempt == 0 {
        return 0.0;
    }
    let exp = base_s * (1u64 << (attempt - 1).min(10)) as f64;
    let mut state = seed.wrapping_mul(0x1656_67B1_9E37_79F9)
        ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let x = torchgt_compat::rng::splitmix64(&mut state);
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    exp * (0.5 + unit)
}

/// FNV-1a hash of a path's string form — the disk domain's stable per-file
/// key (comm's analogue of a rank id).
pub fn path_key(path: &Path) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.to_string_lossy().as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Collective-fabric fault parameters — the raw numbers
/// `torchgt_comm::FaultPlan` is constructed from (the comm crate owns the
/// plan type; this crate only carries the parsed spec to avoid a
/// dependency cycle).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommFaultSpec {
    /// Per-send probability of an injected delay.
    pub delay_prob: f64,
    /// Duration of each injected delay, seconds.
    pub delay_s: f64,
    /// Per-send probability that an attempt is dropped (retried).
    pub drop_prob: f64,
    /// Optional deterministic straggler rank.
    pub slow_rank: Option<usize>,
    /// Per-send slowdown of the straggler rank, seconds.
    pub slow_delay_s: f64,
}

impl CommFaultSpec {
    /// True when any comm fault can fire.
    pub fn is_active(&self) -> bool {
        self.delay_prob > 0.0
            || self.drop_prob > 0.0
            || (self.slow_rank.is_some() && self.slow_delay_s > 0.0)
    }
}

/// Disk-I/O fault parameters: each read of a file draws independent
/// decisions keyed by `(seed, path hash, per-path op index)`, so a retry
/// (the next op index on the same path) sees a fresh decision — transient
/// faults genuinely heal on re-read.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskFaultPlan {
    /// Probability a read fails outright with a transient I/O error.
    pub read_error_prob: f64,
    /// Probability a read comes back torn (short — the tail truncated).
    pub torn_read_prob: f64,
    /// Probability a read comes back with one bit flipped.
    pub bit_flip_prob: f64,
    /// Probability a read is delayed by `delay_s` before returning.
    pub delay_prob: f64,
    /// Duration of each injected read delay, seconds.
    pub delay_s: f64,
}

impl DiskFaultPlan {
    /// True when any disk fault can fire.
    pub fn is_active(&self) -> bool {
        self.read_error_prob > 0.0
            || self.torn_read_prob > 0.0
            || self.bit_flip_prob > 0.0
            || (self.delay_prob > 0.0 && self.delay_s > 0.0)
    }
}

/// Serving-path fault parameters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServeFaultPlan {
    /// Per-batch probability the executor stalls for `slow_s`.
    pub slow_prob: f64,
    /// Duration of an injected executor stall, seconds.
    pub slow_s: f64,
    /// Per-query probability a load generator switches into a burst.
    pub burst_prob: f64,
    /// Number of back-to-back (unpaced) queries per burst.
    pub burst_len: usize,
}

impl ServeFaultPlan {
    /// True when any serve fault can fire.
    pub fn is_active(&self) -> bool {
        (self.slow_prob > 0.0 && self.slow_s > 0.0)
            || (self.burst_prob > 0.0 && self.burst_len > 0)
    }

    /// Should batch `batch_idx` of the executor stall? Deterministic in
    /// `(seed, batch_idx)`.
    pub fn executor_stalls(&self, seed: u64, batch_idx: u64) -> bool {
        decide(seed, 0, batch_idx, SALT_SERVE_SLOW, self.slow_prob)
    }

    /// Should load-generator client `client` start a burst at its `i`-th
    /// query? Deterministic in `(seed, client, i)`.
    pub fn burst_starts(&self, seed: u64, client: u64, i: u64) -> bool {
        self.burst_len > 0 && decide(seed, client, i, SALT_SERVE_BURST, self.burst_prob)
    }
}

/// A full multi-domain fault plan: one seed, up to three domains.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed every per-op decision in every domain derives from.
    pub seed: u64,
    /// Collective-fabric faults (consumed by `torchgt-comm`).
    pub comm: CommFaultSpec,
    /// Disk-I/O faults (consumed by the `TGDS`/`TGTS`/`TGTF` readers).
    pub disk: DiskFaultPlan,
    /// Serving faults (consumed by the serve loop and load generators).
    pub serve: ServeFaultPlan,
}

/// Parse `"250ms"`, `"1.5s"`, or a bare number of seconds.
fn parse_duration_s(s: &str) -> Result<f64, String> {
    let (num, mult) = if let Some(v) = s.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1.0)
    } else {
        (s, 1.0)
    };
    num.parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| format!("bad duration `{s}` (want e.g. 5ms, 0.5s, or seconds)"))
}

fn parse_prob(key: &str, s: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|_| format!("{key} wants a probability, got `{s}`"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{key}={p} is outside [0, 1]"));
    }
    Ok(p)
}

/// Split `"<prob>@<duration>"`; a missing `@` part falls back to `default`.
fn parse_prob_at(key: &str, s: &str, default_s: f64) -> Result<(f64, f64), String> {
    match s.split_once('@') {
        Some((p, d)) => Ok((parse_prob(key, p)?, parse_duration_s(d)?)),
        None => Ok((parse_prob(key, s)?, default_s)),
    }
}

impl FaultSpec {
    /// Parse a spec string. Grammar: comma-separated `key=value` entries —
    ///
    /// ```text
    /// seed=7                      decision seed (default 1)
    /// comm.delay=0.2@1.5ms        P(send delayed)@duration
    /// comm.drop=0.1               P(send attempt dropped, retried)
    /// comm.slow=1@2ms             straggler rank@per-send delay
    /// disk.read_err=0.2           P(read fails with a transient error)
    /// disk.torn=0.1               P(read comes back short)
    /// disk.flip=0.05              P(read comes back with one bit flipped)
    /// disk.delay=0.1@5ms          P(read delayed)@duration
    /// serve.slow=0.1@5ms          P(executor batch stalls)@duration
    /// serve.burst=0.2@4           P(burst starts)@burst length
    /// ```
    ///
    /// Whitespace around entries is tolerated; an unknown key is an error
    /// (a typo must not silently disable a chaos run).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = FaultSpec { seed: 1, ..Default::default() };
        for entry in s.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{entry}` is not key=value"))?;
            match key.trim() {
                "seed" => {
                    spec.seed =
                        value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "comm.delay" => {
                    let (p, d) = parse_prob_at(key, value, 1e-3)?;
                    spec.comm.delay_prob = p;
                    spec.comm.delay_s = d;
                }
                "comm.drop" => spec.comm.drop_prob = parse_prob(key, value)?,
                "comm.slow" => {
                    let (rank, d) = match value.split_once('@') {
                        Some((r, d)) => (r, parse_duration_s(d)?),
                        None => (value, 1e-3),
                    };
                    spec.comm.slow_rank = Some(
                        rank.parse()
                            .map_err(|_| format!("comm.slow wants <rank>[@delay], got `{value}`"))?,
                    );
                    spec.comm.slow_delay_s = d;
                }
                "disk.read_err" => spec.disk.read_error_prob = parse_prob(key, value)?,
                "disk.torn" => spec.disk.torn_read_prob = parse_prob(key, value)?,
                "disk.flip" => spec.disk.bit_flip_prob = parse_prob(key, value)?,
                "disk.delay" => {
                    let (p, d) = parse_prob_at(key, value, 1e-3)?;
                    spec.disk.delay_prob = p;
                    spec.disk.delay_s = d;
                }
                "serve.slow" => {
                    let (p, d) = parse_prob_at(key, value, 1e-3)?;
                    spec.serve.slow_prob = p;
                    spec.serve.slow_s = d;
                }
                "serve.burst" => {
                    let (p, len) = match value.split_once('@') {
                        Some((p, l)) => (
                            parse_prob(key, p)?,
                            l.parse().map_err(|_| {
                                format!("serve.burst wants <prob>@<len>, got `{value}`")
                            })?,
                        ),
                        None => (parse_prob(key, value)?, 4),
                    };
                    spec.serve.burst_prob = p;
                    spec.serve.burst_len = len;
                }
                other => {
                    return Err(format!(
                        "unknown fault key `{other}` (domains: comm.delay/drop/slow, \
                         disk.read_err/torn/flip/delay, serve.slow/burst, plus seed)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// True when any domain can inject anything.
    pub fn is_active(&self) -> bool {
        self.comm.is_active() || self.disk.is_active() || self.serve.is_active()
    }
}

impl std::str::FromStr for FaultSpec {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        Self::parse(s)
    }
}

/// The installed plan plus the disk domain's per-path op counters (the
/// counters are what make a *retry* of the same path a fresh decision).
struct Installed {
    spec: FaultSpec,
    disk_ops: Mutex<HashMap<u64, u64>>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<Arc<Installed>>> = RwLock::new(None);

fn plan() -> Option<Arc<Installed>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    PLAN.read().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Install `spec` process-globally. Injection points all over the
/// workspace consult it through [`disk_read`]/[`serve_plan`]/etc. An
/// inactive spec (all probabilities zero) uninstalls.
pub fn install(spec: FaultSpec) {
    let active = spec.is_active();
    *PLAN.write().unwrap_or_else(|p| p.into_inner()) = active
        .then(|| Arc::new(Installed { spec, disk_ops: Mutex::new(HashMap::new()) }));
    ACTIVE.store(active, Ordering::SeqCst);
}

/// Remove any installed plan (tests use this to restore the zero-cost
/// default).
pub fn clear() {
    ACTIVE.store(false, Ordering::SeqCst);
    *PLAN.write().unwrap_or_else(|p| p.into_inner()) = None;
}

/// Install from the `TORCHGT_FAULTS` environment variable. Returns whether
/// a plan was installed; a malformed spec is an error (fail loudly, never
/// silently run fault-free when chaos was requested).
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var(ENV_VAR) {
        Ok(s) if !s.trim().is_empty() => {
            let spec = FaultSpec::parse(&s)?;
            let active = spec.is_active();
            install(spec);
            Ok(active)
        }
        _ => Ok(false),
    }
}

/// The installed spec, if any (None when the plane is cold).
pub fn installed() -> Option<FaultSpec> {
    plan().map(|p| p.spec.clone())
}

/// The installed comm domain, when it can fire.
pub fn comm_spec() -> Option<(u64, CommFaultSpec)> {
    let p = plan()?;
    p.spec.comm.is_active().then_some((p.spec.seed, p.spec.comm))
}

/// The installed serve domain, when it can fire.
pub fn serve_plan() -> Option<(u64, ServeFaultPlan)> {
    let p = plan()?;
    p.spec.serve.is_active().then_some((p.spec.seed, p.spec.serve))
}

/// What the disk domain did to one read (so the caller can log it).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiskFaultReport {
    /// An injected delay fired.
    pub delayed: bool,
    /// The bytes came back short.
    pub torn: bool,
    /// One bit of the payload was flipped.
    pub bit_flipped: bool,
}

/// Read `path` through the fault plane. With no disk domain installed this
/// is exactly `std::fs::read` (one relaxed atomic load of overhead). With
/// one installed, each call advances the path's op counter and draws
/// delay / transient-error / torn-read / bit-flip decisions from
/// `(seed, path hash, op)` — so retrying the read draws fresh decisions
/// and transient faults heal, while the file on disk is never touched.
pub fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    let Some(p) = plan() else {
        return std::fs::read(path);
    };
    if !p.spec.disk.is_active() {
        return std::fs::read(path);
    }
    read_file_reporting(&p, path).0
}

/// [`read_file`] plus a report of what was injected (the chaos harness
/// uses the report to assert every injected fault surfaced somewhere).
pub fn read_file_observed(path: &Path) -> (io::Result<Vec<u8>>, DiskFaultReport) {
    let Some(p) = plan() else {
        return (std::fs::read(path), DiskFaultReport::default());
    };
    if !p.spec.disk.is_active() {
        return (std::fs::read(path), DiskFaultReport::default());
    }
    read_file_reporting(&p, path)
}

fn read_file_reporting(p: &Installed, path: &Path) -> (io::Result<Vec<u8>>, DiskFaultReport) {
    let disk = &p.spec.disk;
    let key = path_key(path);
    let op = {
        let mut ops = p.disk_ops.lock().unwrap_or_else(|e| e.into_inner());
        let c = ops.entry(key).or_insert(0);
        let op = *c;
        *c += 1;
        op
    };
    let mut report = DiskFaultReport::default();
    if decide(p.spec.seed, key, op, SALT_DISK_DELAY, disk.delay_prob) && disk.delay_s > 0.0 {
        report.delayed = true;
        std::thread::sleep(std::time::Duration::from_secs_f64(disk.delay_s));
    }
    if decide(p.spec.seed, key, op, SALT_DISK_ERR, disk.read_error_prob) {
        return (
            Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient read error on {} (op {op})", path.display()),
            )),
            report,
        );
    }
    let mut bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return (Err(e), report),
    };
    if !bytes.is_empty() && decide(p.spec.seed, key, op, SALT_DISK_TORN, disk.torn_read_prob) {
        // Torn read: drop a deterministic fraction of the tail (at least
        // one byte) — models a short read / partial page.
        let mut state = p.spec.seed ^ key ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let cut = 1 + (torchgt_compat::rng::splitmix64(&mut state) as usize) % bytes.len();
        bytes.truncate(bytes.len() - cut);
        report.torn = true;
    }
    if !bytes.is_empty() && decide(p.spec.seed, key, op, SALT_DISK_FLIP, disk.bit_flip_prob) {
        let mut state = p.spec.seed ^ key.rotate_left(17) ^ op.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let pos = (torchgt_compat::rng::splitmix64(&mut state) as usize) % bytes.len();
        let bit = (torchgt_compat::rng::splitmix64(&mut state) % 8) as u8;
        bytes[pos] ^= 1 << bit;
        report.bit_flipped = true;
    }
    (Ok(bytes), report)
}

/// Is an io::Error one the self-healing readers should retry? Injected
/// transient errors are `Interrupted`; real-world analogues (EINTR,
/// EAGAIN-ish conditions) map to the same kinds. Corruption
/// (`InvalidData`) is retryable exactly once by the CRC re-read rule,
/// which callers handle separately.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Is an io::Error a corruption-class failure — the class the healing
/// ladders re-read exactly once for? A CRC/parse mismatch reads as
/// `InvalidData`; a torn (short) read of a length-framed format surfaces
/// as `UnexpectedEof` before any checksum is reached.
pub fn is_corruption(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;
    use std::sync::{Mutex, OnceLock};

    /// The plan registry is process-global; tests that install serialize.
    fn gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmpfile(tag: &str, bytes: &[u8]) -> PathBuf {
        let p = std::env::temp_dir().join(format!("tgt_faults_{tag}_{}", std::process::id()));
        let mut f = std::fs::File::create(&p).unwrap();
        f.write_all(bytes).unwrap();
        p
    }

    #[test]
    fn decisions_are_deterministic_and_streams_distinct() {
        for key in 0..4u64 {
            for op in 0..64 {
                assert_eq!(
                    decide(7, key, op, SALT_DELAY, 0.3),
                    decide(7, key, op, SALT_DELAY, 0.3)
                );
            }
        }
        let a: Vec<bool> = (0..256).map(|op| decide(7, 0, op, SALT_DELAY, 0.5)).collect();
        let b: Vec<bool> = (0..256).map(|op| decide(8, 0, op, SALT_DELAY, 0.5)).collect();
        let c: Vec<bool> = (0..256).map(|op| decide(7, 0, op, SALT_DROP, 0.5)).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn backoff_is_seeded_jittered_exponential() {
        assert_eq!(backoff_s(7, 0.1, 0), 0.0);
        assert_eq!(backoff_s(7, 0.0, 3), 0.0);
        for attempt in 1..6 {
            let a = backoff_s(7, 0.1, attempt);
            assert_eq!(a.to_bits(), backoff_s(7, 0.1, attempt).to_bits(), "pure");
            let nominal = 0.1 * (1u64 << (attempt - 1)) as f64;
            assert!(a >= 0.5 * nominal && a < 1.5 * nominal, "jitter range at {attempt}");
        }
        assert_ne!(backoff_s(7, 0.1, 2).to_bits(), backoff_s(8, 0.1, 2).to_bits());
    }

    #[test]
    fn spec_parses_all_domains() {
        let s = FaultSpec::parse(
            "seed=42, comm.delay=0.25@1.5ms, comm.drop=0.1, comm.slow=2@2ms, \
             disk.read_err=0.2, disk.torn=0.1, disk.flip=0.05, disk.delay=0.1@5ms, \
             serve.slow=0.3@4ms, serve.burst=0.2@8",
        )
        .unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.comm.delay_prob, 0.25);
        assert!((s.comm.delay_s - 1.5e-3).abs() < 1e-12);
        assert_eq!(s.comm.drop_prob, 0.1);
        assert_eq!(s.comm.slow_rank, Some(2));
        assert_eq!(s.disk.read_error_prob, 0.2);
        assert_eq!(s.disk.torn_read_prob, 0.1);
        assert_eq!(s.disk.bit_flip_prob, 0.05);
        assert!((s.disk.delay_s - 5e-3).abs() < 1e-12);
        assert_eq!(s.serve.slow_prob, 0.3);
        assert_eq!(s.serve.burst_len, 8);
        assert!(s.is_active());
    }

    #[test]
    fn spec_rejects_unknown_keys_and_bad_probs() {
        assert!(FaultSpec::parse("disk.red_err=0.2").is_err(), "typo must not pass");
        assert!(FaultSpec::parse("disk.read_err=1.5").is_err());
        assert!(FaultSpec::parse("disk.read_err").is_err());
        assert!(FaultSpec::parse("").unwrap() == FaultSpec { seed: 1, ..Default::default() });
    }

    #[test]
    fn injected_reads_heal_on_retry_and_never_touch_disk() {
        let _g = gate();
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let path = tmpfile("heal", &payload);
        install(FaultSpec {
            seed: 3,
            disk: DiskFaultPlan {
                read_error_prob: 0.5,
                torn_read_prob: 0.3,
                bit_flip_prob: 0.3,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut clean = 0;
        let mut faulted = 0;
        for _ in 0..64 {
            match read_file(&path) {
                Ok(b) if b == payload => clean += 1,
                _ => faulted += 1,
            }
        }
        clear();
        assert!(clean > 0, "some reads must come back clean (faults are transient)");
        assert!(faulted > 0, "some reads must be faulted at these probabilities");
        assert_eq!(std::fs::read(&path).unwrap(), payload, "file on disk untouched");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cold_plane_is_passthrough() {
        let _g = gate();
        clear();
        let path = tmpfile("cold", b"hello");
        assert_eq!(read_file(&path).unwrap(), b"hello");
        assert!(installed().is_none());
        assert!(serve_plan().is_none());
        assert!(comm_spec().is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn env_install_round_trip() {
        let _g = gate();
        std::env::set_var(ENV_VAR, "seed=9,disk.flip=0.5");
        assert!(install_from_env().unwrap());
        let spec = installed().unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.disk.bit_flip_prob, 0.5);
        std::env::set_var(ENV_VAR, "disk.bogus=1");
        assert!(install_from_env().is_err());
        std::env::remove_var(ENV_VAR);
        clear();
        assert!(!install_from_env().unwrap());
    }
}
