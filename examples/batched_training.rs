//! Batched graph-level training with block-diagonal packing, a virtual-node
//! readout, and checkpointing — the production-style pipeline pieces built
//! on top of the paper's core techniques.
//!
//! ```sh
//! cargo run --release --example batched_training
//! ```

use torchgt::model::vnode::VirtualNode;
use torchgt::model::{loss, Gt, GtConfig, Pattern, SequenceBatch, SequenceModel};
use torchgt::prelude::*;
use torchgt::runtime::batched::BatchedGraphTrainer;
use torchgt::tensor::checkpoint::{load_params_from, save_params_to};
use torchgt::tensor::optim::Optimizer;

fn main() {
    // --- 1. Packed-batch training on molpcba-like molecules -------------
    let data = DatasetKind::OgbgMolpcba.generate_graphs(48, 1.0, 31);
    println!(
        "molpcba-like: {} molecules, batched 6 per packed sequence (block-diagonal masks)",
        data.len()
    );
    let mut cfg = TrainConfig::new(Method::TorchGt, 64, 8);
    cfg.lr = 3e-3;
    cfg.interleave_period = 4;
    let model = Box::new(Gt::new(GtConfig::tiny(data.feat_dim, 6), 7));
    let mut trainer = BatchedGraphTrainer::new(cfg, &data, model, 6);
    println!("{:>5} {:>9} {:>10} {:>10}", "epoch", "loss", "train_acc", "test_acc");
    for _ in 0..8 {
        let s = trainer.train_epoch();
        println!(
            "{:>5} {:>9.4} {:>10.4} {:>10.4}",
            s.epoch, s.loss, s.train_acc, s.test_acc
        );
    }

    // --- 2. Virtual-node readout + checkpoint round-trip ----------------
    println!("\nvirtual-node readout on one molecule + checkpoint round-trip:");
    let sample = &data.samples[0];
    let feats = Tensor::from_vec(sample.graph.num_nodes(), sample.feat_dim, sample.features.clone());
    let mut vn = VirtualNode::new(Gt::new(GtConfig::tiny(data.feat_dim, 6), 9), data.feat_dim, 11);
    vn.set_training(true);
    let mut opt = torchgt::tensor::Adam::with_lr(3e-3);
    let batch = SequenceBatch { features: &feats, graph: &sample.graph, spd: None };
    let label = match sample.label {
        GraphLabel::Class(c) => c,
        _ => unreachable!(),
    };
    for step in 0..20 {
        let full = vn.forward(&batch, Pattern::Flash);
        let graph_logits = full.slice_rows(0, 1);
        let (l, dg) = loss::softmax_cross_entropy(&graph_logits, &[label]);
        let mut dfull = Tensor::zeros(full.rows(), full.cols());
        for c in 0..full.cols() {
            dfull.set(0, c, dg.get(0, c));
        }
        vn.backward(&batch, Pattern::Flash, &dfull);
        opt.step(&mut vn.params_mut());
        if step % 5 == 0 {
            println!("  step {step:>2}: loss {l:.4}");
        }
    }
    // Checkpoint and restore.
    let mut buf = Vec::new();
    {
        let params = vn.params_mut();
        let refs: Vec<&torchgt::tensor::Param> = params.iter().map(|p| &**p).collect();
        save_params_to(&refs, &mut buf).unwrap();
    }
    let mut restored = VirtualNode::new(Gt::new(GtConfig::tiny(data.feat_dim, 6), 9), data.feat_dim, 11);
    {
        let mut params = restored.params_mut();
        load_params_from(&mut params, buf.as_slice()).unwrap();
    }
    restored.set_training(false);
    vn.set_training(false);
    let y1 = vn.forward(&batch, Pattern::Flash);
    let y2 = restored.forward(&batch, Pattern::Flash);
    let max_diff = y1
        .data()
        .iter()
        .zip(y2.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("  checkpoint round-trip: {} bytes, max output diff {max_diff:.2e}", buf.len());
}
