//! Node-level comparison of the four training systems (GP-RAW, GP-FLASH,
//! GP-SPARSE, TorchGT) on a synthetic ogbn-products-scale graph — a
//! miniature of the paper's Table V workflow.
//!
//! ```sh
//! cargo run --release --example node_classification
//! ```

use torchgt::prelude::*;
use torchgt::TorchGtBuilder;

fn main() {
    let dataset = DatasetKind::OgbnProducts.generate_node(0.001, 11);
    println!(
        "ogbn-products stand-in: {} nodes, {} edges, {} classes\n",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes,
    );

    let epochs = 8;
    println!(
        "{:<10} {:>9} {:>10} {:>14} {:>10}",
        "method", "loss", "test_acc", "sim epoch (s)", "full-iter%"
    );
    for method in [Method::GpRaw, Method::GpFlash, Method::GpSparse, Method::TorchGt] {
        let mut trainer = TorchGtBuilder::new(method)
            .seq_len(512)
            .epochs(epochs)
            .hidden(64)
            .layers(2)
            .heads(8)
            .lr(2e-3)
            .seed(3)
            .build_node(&dataset)
            .expect("valid configuration");
        // Every trainer kind exposes the same `Trainer` surface; dispatch
        // dynamically like the CLI does.
        let trainer: &mut dyn Trainer = &mut trainer;
        let stats = trainer.run();
        let last = stats.last().unwrap();
        let full_pct = stats.iter().map(|s| s.full_iters).sum::<usize>() as f64
            / stats.iter().map(|s| s.full_iters + s.sparse_iters).sum::<usize>().max(1) as f64
            * 100.0;
        println!(
            "{:<10} {:>9.4} {:>10.4} {:>14.6} {:>9.1}%",
            method.label(),
            last.loss,
            last.test_acc,
            last.sim_seconds,
            full_pct,
        );
    }
    println!(
        "\nNote: simulated epoch times use the RTX 3090 cost model; at this reduced\n\
         scale the attention gap is modest — the bench harness (crates/bench)\n\
         reproduces the paper-scale Table V numbers."
    );
}
