//! Quickstart: train a Graphormer with the full TorchGT pipeline on a
//! synthetic ogbn-arxiv-scale graph and print the per-epoch statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use torchgt::prelude::*;
use torchgt::TorchGtBuilder;

fn main() {
    // A 1%-scale synthetic stand-in for ogbn-arxiv (see DESIGN.md for the
    // substitution rationale): ~1.7K nodes, matched degree distribution and
    // community structure, learnable planted labels.
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.01, 42);
    println!(
        "dataset: {} nodes, {} edges, {} classes, sparsity {:.2e}",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes,
        dataset.graph.sparsity(),
    );

    let mut trainer = TorchGtBuilder::new(Method::TorchGt)
        .seq_len(512)
        .epochs(10)
        .hidden(64)
        .layers(3)
        .heads(8)
        .lr(2e-3)
        .seed(7)
        .build_node(&dataset)
        .expect("valid configuration");

    println!(
        "preprocessing (partition + reorder + masks): {:.3}s, beta_G = {:.2e}",
        trainer.preprocess_seconds(),
        trainer.beta_g(),
    );
    println!(
        "{:>5} {:>9} {:>10} {:>10} {:>9} {:>12} {:>8}",
        "epoch", "loss", "train_acc", "test_acc", "wall(s)", "sim 3090 (s)", "β_thre"
    );
    for _ in 0..trainer.cfg.epochs {
        let s = trainer.train_epoch();
        println!(
            "{:>5} {:>9.4} {:>10.4} {:>10.4} {:>9.3} {:>12.6} {:>8.1e}",
            s.epoch, s.loss, s.train_acc, s.test_acc, s.wall_seconds, s.sim_seconds, s.beta_thre
        );
    }
    println!(
        "interleave: {:.1}% of iterations ran fully-connected",
        trainer.full_fraction() * 100.0
    );
}
