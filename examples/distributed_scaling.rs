//! Cluster-aware Graph Parallelism in action: distributed sparse attention
//! over 1–8 simulated GPUs with real all-to-all data movement, verified
//! against the single-device result, plus the α–β simulated times on the
//! paper's two testbeds.
//!
//! ```sh
//! cargo run --release --example distributed_scaling
//! ```

use torchgt::comm::DeviceGroup;
use torchgt::graph::generators::{clustered_power_law, ClusteredConfig};
use torchgt::model::attention;
use torchgt::prelude::*;
use torchgt::runtime::parallel::run_distributed_attention;
use torchgt::sparse::topology_mask;
use torchgt::tensor::init;

fn main() {
    let s = 512;
    let d = 64;
    let heads = 8;
    let (g, _) = clustered_power_law(
        ClusteredConfig { n: s, communities: 8, avg_degree: 12.0, intra_fraction: 0.85 },
        5,
    );
    let mask = topology_mask(&g, true);
    let q = init::normal(s, d, 0.0, 1.0, 1);
    let k = init::normal(s, d, 0.0, 1.0, 2);
    let v = init::normal(s, d, 0.0, 1.0, 3);
    let single = attention::sparse(&q, &k, &v, heads, &mask, None).out;

    println!("sequence {s}, hidden {d}, {heads} heads, mask nnz {}\n", mask.num_arcs());
    println!(
        "{:>4} {:>14} {:>16} {:>22} {:>22}",
        "P", "max |Δ|", "bytes on wire", "sim all-to-all A100", "sim all-to-all 3090x2"
    );
    for p in [1usize, 2, 4, 8] {
        let group = DeviceGroup::new(p);
        let _ = group; // volume measured by a fresh run below
        let dist = run_distributed_attention(p, &q, &k, &v, heads, &mask);
        let max_diff = single
            .data()
            .iter()
            .zip(dist.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // Wire volume: re-run under a tracked group.
        let tracked = DeviceGroup::new(p);
        let s_local = s / p;
        tracked.run(|comm| {
            let r = comm.rank();
            torchgt::runtime::parallel::parallel_sparse_attention(
                &comm,
                &q.slice_rows(r * s_local, (r + 1) * s_local),
                &k.slice_rows(r * s_local, (r + 1) * s_local),
                &v.slice_rows(r * s_local, (r + 1) * s_local),
                heads,
                &mask,
            )
        });
        let bytes = tracked.stats().bytes_sent();
        // Simulated collective time for the paper-scale payload (S = 1M).
        let paper_bytes_per_rank = 4 * (1usize << 20) / p * d * 4;
        let a100 = ClusterTopology::a100((p / 8).max(1)).all_to_all_time(paper_bytes_per_rank);
        let eth = ClusterTopology::rtx3090(2).all_to_all_time(paper_bytes_per_rank);
        println!(
            "{:>4} {:>14.2e} {:>16} {:>20.3}ms {:>20.3}ms",
            p,
            max_diff,
            bytes,
            a100 * 1e3,
            eth * 1e3,
        );
    }
    println!(
        "\nAll-to-all volume per GPU is O(S/P) (paper §III-C): doubling P halves\n\
         the bytes each rank exchanges, which is what keeps the parallelism\n\
         communication-light compared to all-gather's O(S)."
    );
}
