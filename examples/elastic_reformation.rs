//! Elastic Computation Reformation walkthrough: shows the cluster-sparse
//! transfer at each rung of the β_thre ladder (pattern compactness vs edge
//! recall) and the Auto Tuner adapting β_thre during a real training run.
//!
//! ```sh
//! cargo run --release --example elastic_reformation
//! ```

use torchgt::graph::partition::{cluster_order, partition};
use torchgt::prelude::*;
use torchgt::sparse::{access_profile, beta_ladder, reform, ReformConfig};
use torchgt::TorchGtBuilder;

fn main() {
    // A clustered arxiv-like graph, reordered so clusters are contiguous —
    // the layout the kernel level sees (paper Figure 5).
    let dataset = DatasetKind::OgbnArxiv.generate_node(0.01, 13);
    let k = 8;
    let assign = partition(&dataset.graph, k, 1);
    let order = cluster_order(&assign, k);
    let g = dataset.graph.permute(&order.perm);
    let beta_g = g.sparsity();
    let before = access_profile(&g);
    println!(
        "graph: {} nodes, {} arcs, β_G = {:.2e}; topology layout: avg run {:.2}\n",
        g.num_nodes(),
        g.num_arcs(),
        beta_g,
        before.avg_run_len
    );

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "β_thre", "transferred", "sub-blocks", "avg run", "nnz after", "recall"
    );
    for beta in beta_ladder(beta_g) {
        let r = reform(&g, &order, ReformConfig { db: 16, beta_thre: beta });
        let p = r.profile();
        println!(
            "{:>10.2e} {:>8}/{:<3} {:>12} {:>12.2} {:>12} {:>9.1}%",
            beta,
            r.stats.clusters_transferred,
            r.stats.clusters_total,
            r.stats.sub_blocks,
            p.avg_run_len,
            r.stats.nnz_after,
            r.stats.edge_recall * 100.0
        );
    }

    // Auto Tuner trace over a short TorchGT training run.
    println!("\nAuto Tuner trace (elastic transfer during training):");
    let mut trainer = TorchGtBuilder::new(Method::TorchGt)
        .seq_len(400)
        .epochs(12)
        .hidden(32)
        .layers(2)
        .heads(4)
        .lr(2e-3)
        .build_node(&dataset)
        .expect("valid configuration");
    println!("{:>5} {:>9} {:>10}", "epoch", "loss", "β_thre");
    for _ in 0..12 {
        let s = trainer.train_epoch();
        println!("{:>5} {:>9.4} {:>10.2e}", s.epoch, s.loss, s.beta_thre);
    }
}
