//! Graph-level task: classify MalNet-like function-call graphs with the GT
//! model under TorchGT, plus a ZINC-like regression run — the two
//! graph-level workloads of the paper's Table III.
//!
//! ```sh
//! cargo run --release --example graph_classification
//! ```

use torchgt::prelude::*;
use torchgt::{ModelKind, TorchGtBuilder};

/// Drive any trainer through the unified `Trainer` trait, printing one row
/// per epoch. `score` maps `test_acc` to the reported metric (accuracy for
/// classification, MAE for regression).
fn run_epochs(trainer: &mut dyn Trainer, epochs: usize, score: fn(f64) -> f64) {
    for _ in 0..epochs {
        let s = trainer.train_epoch();
        println!(
            "{:>5} {:>9.4} {:>10.4} {:>10.4}",
            s.epoch,
            s.loss,
            s.train_acc,
            score(s.test_acc)
        );
    }
}

fn main() {
    // --- MalNet-like 5-class classification -----------------------------
    let malnet = DatasetKind::MalNet.generate_graphs(40, 0.003, 9);
    let avg_nodes: f64 = malnet
        .samples
        .iter()
        .map(|s| s.graph.num_nodes() as f64)
        .sum::<f64>()
        / malnet.len() as f64;
    println!(
        "MalNet stand-in: {} graphs, avg {:.0} nodes — 5-class classification",
        malnet.len(),
        avg_nodes
    );
    let mut trainer = TorchGtBuilder::new(Method::TorchGt)
        .model(ModelKind::Gt)
        .epochs(6)
        .hidden(32)
        .layers(2)
        .heads(4)
        .lr(2e-3)
        .build_graph(&malnet, 5)
        .expect("valid configuration");
    println!("{:>5} {:>9} {:>10} {:>10}", "epoch", "loss", "train_acc", "test_acc");
    run_epochs(&mut trainer, 6, |acc| acc);

    // --- ZINC-like molecule regression (reported as MAE) ----------------
    let zinc = DatasetKind::Zinc.generate_graphs(60, 1.0, 21);
    println!("\nZINC stand-in: {} molecules — property regression (MAE ↓)", zinc.len());
    let mut trainer = TorchGtBuilder::new(Method::TorchGt)
        .model(ModelKind::Gt)
        .epochs(8)
        .hidden(32)
        .layers(2)
        .heads(4)
        .lr(3e-3)
        .build_graph(&zinc, 1)
        .expect("valid configuration");
    println!("{:>5} {:>9} {:>10} {:>10}", "epoch", "loss", "train_acc", "test_MAE");
    // evaluate() reports negative MAE so "higher is better" holds.
    run_epochs(&mut trainer, 8, |acc| -acc);
}
